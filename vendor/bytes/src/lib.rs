//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset used by the workspace's binary codecs: [`Bytes`]
//! (cheaply cloneable, sliceable, consumable view over shared bytes),
//! [`BytesMut`] (growable builder), and the [`Buf`] / [`BufMut`] traits with
//! big-endian integer accessors, matching the real crate's behaviour for
//! these operations.

#![forbid(unsafe_code)]

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable view over shared bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the readable bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build a [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor; integer reads are big-endian like the real
/// crate. Reads consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Drops `count` bytes from the front.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `count` bytes remain.
    fn advance(&mut self, count: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let value = self.chunk()[0];
        self.advance(1);
        value
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let raw: [u8; 4] = self.chunk()[..4].try_into().expect("4 bytes remain");
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let raw: [u8; 8] = self.chunk()[..8].try_into().expect("8 bytes remain");
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Fills `target` from the front of the cursor.
    fn copy_to_slice(&mut self, target: &mut [u8]) {
        target.copy_from_slice(&self.chunk()[..target.len()]);
        self.advance(target.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end of buffer");
        self.start += count;
    }
}

/// Write access to a growable byte buffer; integer writes are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_slice(b"xy");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 15);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), 42);
        assert_eq!(bytes.remaining(), 2);
        let mut tail = [0u8; 2];
        bytes.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_compare_by_content() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = bytes.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(mid, Bytes::from(vec![2, 3, 4]));
        assert_eq!(bytes.to_vec(), vec![1, 2, 3, 4, 5]);
        assert_eq!(Bytes::from_static(b"abc").len(), 3);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut bytes = Bytes::from(vec![1]);
        bytes.advance(2);
    }
}
