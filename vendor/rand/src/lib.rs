//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this crate reimplements
//! the slice of the rand 0.8 surface the workspace uses: [`RngCore`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64) and
//! [`seq::SliceRandom::choose`]. The generator is deterministic per seed,
//! which is all the simulation and its tests rely on; it is NOT
//! cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps a 64-bit word to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let span = self.end - self.start;
        // Never returns `end`: unit_f64 < 1 and rounding toward `end` would
        // need span * 1.0 which unit_f64 cannot reach.
        self.start + unit_f64(rng.next_u64()) * span
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < span / 2^64, negligible for simulation use.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64. Deterministic per seed; not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// The raw xoshiro256++ state words, for checkpointing the stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] words; the restored
        /// stream continues exactly where the saved one left off. An
        /// all-zero state (a fixed point of xoshiro) is nudged the same way
        /// seeding is.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniform selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element, or `None` when the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0f64).to_bits(),
                b.gen_range(0.0..1.0f64).to_bits()
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        let x: f64 = a.gen_range(0.0..1.0);
        let y: f64 = c.gen_range(0.0..1.0);
        assert_ne!(x.to_bits(), y.to_bits());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen_range(2.5..3.5);
            assert!((2.5..3.5).contains(&f));
            let i: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&i));
            let n: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn unsized_rng_access_works() {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = sample(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
