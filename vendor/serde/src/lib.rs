//! Offline stand-in for `serde`.
//!
//! Provides `Serialize`/`Deserialize` as marker traits together with the
//! matching derives so the workspace compiles without registry access. None
//! of the workspace code performs actual serde serialization today (wire
//! formats are hand-rolled binary codecs), so marker impls are sufficient.
//! Replace the `vendor/serde*` path dependencies with the real crates.io
//! packages to restore full functionality — no source change is needed.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided: the stub
/// never borrows from an input buffer).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
