//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API subset the
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. No statistical
//! analysis or HTML reports: each benchmark runs `sample_size` timed samples
//! and prints min / mean / median to stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_iters: u32,
}

impl Bencher {
    /// Runs `body` repeatedly, recording one timing sample per configured
    /// sample, and keeps the result alive through [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // one untimed warm-up iteration
        black_box(body());
        let samples = self.samples.capacity().max(1);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.per_sample_iters.max(1) {
                black_box(body());
            }
            self.samples
                .push(start.elapsed() / self.per_sample_iters.max(1));
        }
    }
}

fn format_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_and_report(label: &str, sample_size: usize, run: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample_iters: 1,
    };
    run(&mut bencher);
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    if sorted.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    println!(
        "{label:<60} min {:>12}  mean {:>12}  median {:>12}  ({} samples)",
        format_duration(sorted[0]),
        format_duration(mean),
        format_duration(median),
        sorted.len(),
    );
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_and_report(&label, self.sample_size, |bencher| body(bencher));
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_and_report(&label, self.sample_size, |bencher| body(bencher, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("— {name} —");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone closure with the default sample size.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_and_report(&id.id, 10, |bencher| body(bencher));
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group_name:path),+ $(,)?) => {
        fn main() {
            $( $group_name(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_bodies() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
