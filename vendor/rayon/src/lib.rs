//! The build environment has no registry access, so this crate reimplements
//! the subset of `rayon` 1.x the workspace uses: configurable thread pools
//! ([`ThreadPoolBuilder`] / [`ThreadPool::install`]) and order-preserving
//! data-parallel iteration over slices (`par_iter` / `par_iter_mut` with
//! `map`, `for_each` and `collect`).
//!
//! Work is split into one contiguous chunk per thread and executed with
//! `std::thread::scope`, so no unsafe code and no work stealing — results are
//! returned in input order, exactly like upstream rayon's indexed parallel
//! iterators. A pool of one thread (the default on single-core machines)
//! degenerates to an inline sequential loop, which keeps single-threaded
//! callers spawn-free. Swap this for the registry version when network access
//! is available; no source change is required.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::ops::Range;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`] on this thread
    /// (`None` = no pool installed, fall back to available parallelism).
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations on this thread will use: the
/// installed pool's size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|installed| match installed.get() {
        Some(threads) => threads,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Error returned when a thread pool cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoolBuildError {
    reason: String,
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "could not build thread pool: {}", self.reason)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds [`ThreadPool`]s.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration (one thread per
    /// available core).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = one per available core).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A pool of worker threads. Threads are scoped per operation rather than
/// persistent: the pool only records how many ways parallel iterators run
/// inside [`ThreadPool::install`] should split their input.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool installed: parallel iterators inside split
    /// across this pool's thread count.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        INSTALLED_THREADS.with(|installed| {
            let previous = installed.replace(Some(self.threads));
            let result = op();
            installed.set(previous);
            result
        })
    }
}

/// Splits `len` items into at most `parts` contiguous, near-equal ranges.
fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for part in 0..parts {
        let size = base + usize::from(part < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// A source of items that can be split into independent contiguous parts.
trait Splittable: Sized + Send {
    /// The item type handed to worker closures.
    type Item: Send;
    /// Iterator over the items, consumed sequentially within one part.
    type Items: Iterator<Item = Self::Item>;

    /// Number of items.
    fn length(&self) -> usize;
    /// Splits off the first `mid` items.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Sequential iteration over the part.
    fn into_items(self) -> Self::Items;
}

impl<'a, T: Sync> Splittable for &'a [T] {
    type Item = &'a T;
    type Items = std::slice::Iter<'a, T>;

    fn length(&self) -> usize {
        self.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        (&self[..mid], &self[mid..])
    }

    fn into_items(self) -> Self::Items {
        self.iter()
    }
}

impl<'a, T: Send> Splittable for &'a mut [T] {
    type Item = &'a mut T;
    type Items = std::slice::IterMut<'a, T>;

    fn length(&self) -> usize {
        self.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        self.split_at_mut(mid)
    }

    fn into_items(self) -> Self::Items {
        self.iter_mut()
    }
}

/// Internal driver: maps `base`'s items with `f` across the installed thread
/// count, preserving input order.
fn drive<B, F, R>(base: B, f: F) -> Vec<R>
where
    B: Splittable,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    let len = base.length();
    let threads = current_num_threads();
    if threads <= 1 || len <= 1 {
        return base.into_items().map(f).collect();
    }
    let mut parts = Vec::new();
    let mut rest = base;
    let ranges = chunk_ranges(len, threads);
    for range in &ranges[..ranges.len() - 1] {
        let (head, tail) = rest.split_at(range.len());
        parts.push(head);
        rest = tail;
    }
    parts.push(rest);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| scope.spawn(move || part.into_items().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// Order-preserving parallel iterator operations.
pub trait ParallelIterator: Sized {
    /// The item type.
    type Item: Send;

    /// Evaluates the iterator eagerly, returning items in input order (the
    /// internal driver behind [`ParallelIterator::collect`]).
    #[doc(hidden)]
    fn run(self) -> Vec<Self::Item>;

    /// Lazily maps every item with `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync;

    /// Evaluates the iterator and collects the results in input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// Lazy map adapter returned by [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

/// Parallel iterator over `&[T]`.
pub struct Iter<'a, T> {
    slice: &'a [T],
}

/// Parallel iterator over `&mut [T]`.
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        drive(self.slice, |item| item)
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        drive(self.slice, f);
    }
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn run(self) -> Vec<&'a mut T> {
        drive(self.slice, |item| item)
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        drive(self.slice, f);
    }
}

impl<'a, T: Sync, F, R> ParallelIterator for Map<Iter<'a, T>, F>
where
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        drive(self.base.slice, self.f)
    }

    fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        drive(self.base.slice, move |item| g(f(item)));
    }
}

impl<'a, T: Send, F, R> ParallelIterator for Map<IterMut<'a, T>, F>
where
    F: Fn(&'a mut T) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        drive(self.base.slice, self.f)
    }

    fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        drive(self.base.slice, move |item| g(f(item)));
    }
}

/// `par_iter()` for shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// The item type.
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `par_iter_mut()` for mutable slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type.
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// A parallel iterator over mutably borrowed items.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = IterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = IterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { slice: self }
    }
}

/// The traits parallel-iterating code imports.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn chunks_cover_the_range_in_order() {
        for (len, parts) in [(10, 3), (3, 8), (0, 4), (7, 1), (16, 4)] {
            let ranges = chunk_ranges(len, parts);
            assert!(ranges.len() <= parts.max(1));
            let mut expected = 0;
            for range in &ranges {
                assert_eq!(range.start, expected);
                expected = range.end;
            }
            assert_eq!(expected, len);
        }
    }

    #[test]
    fn map_collect_preserves_input_order() {
        let input: Vec<u64> = (0..1_000).collect();
        for threads in [1, 2, 5] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let doubled: Vec<u64> = pool.install(|| input.par_iter().map(|x| x * 2).collect());
            assert_eq!(doubled, (0..1_000).map(|x| x * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn par_iter_mut_updates_every_item() {
        let mut values = vec![1u32; 257];
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| values.par_iter_mut().for_each(|v| *v += 1));
        assert!(values.iter().all(|&v| v == 2));
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        let nested = pool.install(|| {
            let inner = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            inner.install(current_num_threads)
        });
        assert_eq!(nested, 1);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn zero_threads_defaults_to_available_parallelism() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }
}
