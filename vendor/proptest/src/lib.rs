//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`], numeric range strategies, tuple
//! strategies, [`collection::vec`] and [`sample::select`].
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the generated inputs' debug representation so it can be reproduced (case
//! generation is deterministic per test, derived from the test's module
//! path). This keeps failures diagnosable while staying registry-free.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy produced by [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy produced by [`crate::sample::select`].
    pub struct SelectStrategy<T> {
        pub(crate) choices: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for SelectStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.rng.gen_range(0..self.choices.len());
            self.choices[index].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { element, size }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::SelectStrategy;
    use std::fmt::Debug;

    /// Uniform choice among the given values.
    ///
    /// # Panics
    ///
    /// Panics when `choices` is empty.
    pub fn select<T: Clone + Debug>(choices: Vec<T>) -> SelectStrategy<T> {
        assert!(!choices.is_empty(), "select requires at least one choice");
        SelectStrategy { choices }
    }
}

pub mod test_runner {
    //! Test-case execution support used by the [`crate::proptest!`] macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The deterministic generator backing case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        pub(crate) rng: StdRng,
    }

    impl TestRng {
        /// A generator seeded from the test's fully qualified name, so every
        /// run of a given test explores the same cases.
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for byte in test_name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                rng: StdRng::seed_from_u64(seed),
            }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property did not hold; the payload explains why.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from any printable reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self::Fail(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }
}

pub mod prelude {
    //! The names property tests conventionally glob-import.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `fn name(arg in strategy, ...)`
/// items, mirroring the real macro's surface.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "property '{}' failed at case #{case}: {error}\ninputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in 3u32..9,
            xs in crate::collection::vec(0u8..5, 2..6),
            pair in (0i32..4, 0.5f64..1.5),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 5));
            prop_assert!((0..4).contains(&pair.0));
            prop_assert!((0.5..1.5).contains(&pair.1));
        }

        #[test]
        fn select_draws_from_choices(v in crate::sample::select(vec![10u8, 20, 30])) {
            prop_assert!(v == 10 || v == 20 || v == 30);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u16..100) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(dead_code)]
                fn always_fails(x in 0u8..2) {
                    prop_assert!(x > 100, "x too small: {x}");
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("x too small"), "{message}");
    }
}
