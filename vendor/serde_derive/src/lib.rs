//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to the crates registry, so the real
//! serde derive (and its `syn`/`quote` dependency tree) cannot be fetched.
//! The workspace only relies on `Serialize`/`Deserialize` as *marker* traits
//! (no code actually serializes through serde at the moment — the binary
//! codecs are hand-rolled), so the derives here emit empty marker impls.
//!
//! Swapping the `vendor/serde*` path dependencies for the real crates.io
//! packages is all that is needed once network access is available; no source
//! change is required.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the type a derive is attached to.
///
/// Scans the top-level token stream for the `struct`/`enum`/`union` keyword
/// and returns the identifier that follows. Only top-level tokens are
/// inspected, so identifiers inside attributes or doc comments cannot be
/// mistaken for the keyword.
fn derive_target(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find the derive target's name");
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = derive_target(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = derive_target(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
