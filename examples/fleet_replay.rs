//! Multi-tenant replay of **recorded** workloads — the closed loop the
//! ROADMAP's "fleet ingest from live traces" item asked for. Four tenants
//! are driven from recorded [`ArrivalTrace`]s (the workload generator's
//! output), and a fifth from the request log a real closed-loop
//! [`System`] run produced (the SDN-accelerator's `<timestamp, user,
//! group, …>` trace of §IV-A). All five stream through the same
//! source→windower→driver path: timestamps are folded into provisioning
//! slots, gaps become empty slots, and the fleet runs its
//! predict→allocate→bill cycle per slot.
//!
//! ```bash
//! cargo run --release --example fleet_replay
//! ```

use mobile_code_acceleration::cloudsim::{DatacenterConfig, PlacementKind};
use mobile_code_acceleration::core::{System, SystemConfig, TraceLog};
use mobile_code_acceleration::fleet::{
    ArrivalTraceSource, FleetDriver, FleetEngine, RebalancerConfig, RecordSource, TraceLogSource,
};
use mobile_code_acceleration::offload::{TaskPool, TaskSpec, TenantId};
use mobile_code_acceleration::workload::{ArrivalTrace, TenantMix, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const TRACE_TENANTS: u32 = 4;
const USERS_PER_TENANT: usize = 12;
const DURATION_MS: f64 = 20.0 * 60_000.0; // 20 minutes of arrivals
const SLOT_MS: f64 = 60_000.0; // one-minute provisioning slots
const SHARDS: usize = 3;
const SEED: u64 = 20170605;

fn main() {
    let config = SystemConfig::paper_three_groups()
        .with_slot_length_ms(SLOT_MS)
        .with_history_window(64);
    let entry_group = config.groups.lowest().id;

    // an aggressive elastic policy so the short replay visibly migrates:
    // fire on 5 % imbalance once two slots of load signal exist
    let mut engine = FleetEngine::new(config.clone(), SHARDS, SEED).with_rebalancer(
        RebalancerConfig::default()
            .with_ratio(1.05)
            .with_warmup_slots(2),
    );
    let mut driver = {
        engine.add_tenants((0..=TRACE_TENANTS).map(TenantId));
        FleetDriver::new(engine)
    };

    // four tenants replayed from recorded arrival traces, disjoint user-id
    // ranges per tenant (the traces are kept: the mid-replay restore below
    // rebuilds its sources from the same recordings)
    let mut max_slots = 0usize;
    let traces: Vec<ArrivalTrace> = (0..TRACE_TENANTS)
        .map(|tenant| {
            let mut rng = StdRng::seed_from_u64(SEED ^ u64::from(tenant));
            WorkloadGenerator::inter_arrival(
                USERS_PER_TENANT,
                TaskPool::static_load(TaskSpec::paper_static_minimax()),
            )
            .with_user_id_offset(tenant * 1_000)
            .generate(DURATION_MS, &mut rng)
        })
        .collect();
    for (tenant, trace) in traces.iter().enumerate() {
        let tenant = tenant as u32;
        let source = ArrivalTraceSource::new(TenantId(tenant), trace, SLOT_MS, entry_group);
        println!(
            "tenant {tenant}: {} recorded arrivals over {} slots",
            trace.len(),
            source.slot_count(),
        );
        max_slots = max_slots.max(source.slot_count());
        driver
            .add_source(TenantId(tenant), source)
            .expect("trace tenants are onboarded once");
    }

    // the fifth tenant replays a real SDN-accelerator request log: a
    // single-operator closed-loop run records its trace, and the log drives
    // the fleet — TraceLog output wired into per-tenant record streams
    let log: TraceLog = {
        let mut rng = StdRng::seed_from_u64(SEED);
        let workload = WorkloadGenerator::inter_arrival(
            USERS_PER_TENANT,
            TaskPool::static_load(TaskSpec::paper_static_minimax()),
        )
        .with_user_id_offset(TRACE_TENANTS * 1_000)
        .generate(DURATION_MS, &mut rng);
        let report = System::new(config.clone()).run(&workload, &mut rng);
        report.records.into_iter().collect()
    };
    let log_tenant = TenantId(TRACE_TENANTS);
    let source = TraceLogSource::new(log_tenant, &log, SLOT_MS);
    println!(
        "tenant {}: {} logged requests over {} slots (SDN request log)\n",
        log_tenant.0,
        log.len(),
        source.slot_count(),
    );
    max_slots = max_slots.max(source.slot_count());
    driver
        .add_source(log_tenant, source)
        .expect("the log tenant is onboarded once");

    // drive half the replay, checkpoint the whole session — engine state
    // plus every source's resume cursor — and finish on the restored
    // driver, exactly as a crashed-and-restarted process would
    let half = max_slots.div_ceil(2);
    for _ in 0..half {
        driver.step().expect("replay sources stay on their tenants");
    }
    let mut snapshot = Vec::new();
    let start = Instant::now();
    let stats = driver
        .checkpoint(&mut snapshot)
        .expect("checkpointing to memory cannot fail");
    let checkpoint_ms = start.elapsed().as_secs_f64() * 1_000.0;
    let fresh_sources: Vec<(Option<TenantId>, Box<dyn RecordSource>)> = traces
        .iter()
        .enumerate()
        .map(|(tenant, trace)| {
            let tenant = TenantId(tenant as u32);
            let source = ArrivalTraceSource::new(tenant, trace, SLOT_MS, entry_group);
            (Some(tenant), Box::new(source) as Box<dyn RecordSource>)
        })
        .chain(std::iter::once((
            Some(log_tenant),
            Box::new(TraceLogSource::new(log_tenant, &log, SLOT_MS)) as Box<dyn RecordSource>,
        )))
        .collect();
    let start = Instant::now();
    let mut driver = FleetDriver::restore(&mut snapshot.as_slice(), &config, fresh_sources)
        .expect("the checkpoint was just written");
    let restore_ms = start.elapsed().as_secs_f64() * 1_000.0;
    println!(
        "mid-replay checkpoint at slot {half}: {} bytes in {} sections, \
         {checkpoint_ms:.3} ms to write, {restore_ms:.3} ms to restore\n",
        stats.bytes, stats.sections,
    );

    let report = driver
        .run_until_exhausted(max_slots + 1 - half)
        .expect("replay sources stay on their tenants");

    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "tenant", "users/slot", "peak", "accuracy", "cost $"
    );
    for tenant in &report.metrics.per_tenant {
        println!(
            "{:<8} {:>10.1} {:>10} {:>9.1}% {:>10.2}",
            tenant.tenant.to_string(),
            tenant.mean_users(),
            tenant.peak_users,
            tenant.mean_accuracy().unwrap_or(0.0) * 100.0,
            tenant.total_cost,
        );
    }
    println!(
        "\ndrive: {} slots, {} records via {} sources ({} exhausted), \
         {} late, {} dropped, fleet spend ${:.2}",
        report.slots,
        report.records,
        report.total_sources,
        report.exhausted_sources,
        report.late_records,
        report.dropped_records,
        report.metrics.total_cost,
    );
    // the engine instruments itself by default, so the replay reports its
    // own tail latencies: per-slot ingest+tick and the predict stage
    let telemetry = &report.telemetry;
    println!(
        "slot tick latency ({:?} clock): p50 {:.1} us, p99 {:.1} us, p999 {:.1} us over {} slots",
        telemetry.mode,
        telemetry.slot.p50() as f64 / 1_000.0,
        telemetry.slot.p99() as f64 / 1_000.0,
        telemetry.slot.p999() as f64 / 1_000.0,
        telemetry.slot.count(),
    );
    println!(
        "predict stage: p50 {:.1} us, p99 {:.1} us over {} tenant-ticks; \
         shard load ewma {:?}",
        telemetry.stages.predict.p50() as f64 / 1_000.0,
        telemetry.stages.predict.p99() as f64 / 1_000.0,
        telemetry.stages.predict.count(),
        telemetry
            .shards
            .iter()
            .map(|s| (s.load_ewma * 10.0).round() / 10.0)
            .collect::<Vec<_>>(),
    );
    let rebalance = telemetry
        .rebalance
        .as_ref()
        .expect("the replay runs with a rebalancer");
    println!(
        "\nrebalancer: {} checks, {} triggers, {} migrations (last max/mean {:.2})",
        rebalance.checks, rebalance.triggers, rebalance.migrations, rebalance.last_ratio,
    );
    if !rebalance.loads_before.is_empty() {
        println!("{:<8} {:>12} {:>12}", "shard", "load before", "load after");
        for (shard, (before, after)) in rebalance
            .loads_before
            .iter()
            .zip(&rebalance.loads_after)
            .enumerate()
        {
            println!("{shard:<8} {before:>12.1} {after:>12.1}");
        }
    }
    for record in &rebalance.recent {
        println!(
            "  slot {:>3}: tenant {} moved shard {} -> {} (load {:.1})",
            record.slot, record.tenant.0, record.from, record.to, record.load,
        );
    }
    assert_eq!(report.exhausted_sources, report.total_sources);
    assert_eq!(report.late_records + report.dropped_records, 0);
    assert_eq!(telemetry.slot.count(), report.slots as u64);

    // datacenter-in-the-loop: the same small Zipf mix billed against
    // simulated hosts under each placement policy — the bill is identical
    // by construction, SLA and energy diverge (docs/datacenter.md)
    const DC_TENANTS: usize = 8;
    const DC_SLOTS: usize = 24;
    let mix = TenantMix::zipf(DC_TENANTS, 60, 0.8, config.groups.ids(), SEED);
    println!("\ndatacenter billing, {DC_TENANTS}-tenant zipf mix over {DC_SLOTS} slots:");
    println!(
        "{:<12} {:>10} {:>6} {:>9} {:>13} {:>11}",
        "billing", "cost $", "viol", "dropped", "latency ms", "energy wh"
    );
    let mut baseline_cost = None;
    for placement in std::iter::once(None).chain(PlacementKind::ALL.into_iter().map(Some)) {
        let mut dc_config = config.clone();
        if let Some(placement) = placement {
            dc_config = dc_config
                .with_datacenter(DatacenterConfig::paper_default().with_placement(placement));
        }
        let mut engine = FleetEngine::new(dc_config, SHARDS, SEED);
        engine.add_tenants(mix.tenant_ids());
        let mut dc_driver = FleetDriver::new(engine)
            .with_mix(&mix)
            .expect("every tenant is part of the mix");
        let dc_report = dc_driver
            .run(DC_SLOTS)
            .expect("mix sources never misbehave");
        let metrics = &dc_report.metrics;
        match baseline_cost {
            None => baseline_cost = Some(metrics.total_cost),
            Some(cost) => assert_eq!(
                metrics.total_cost.to_bits(),
                cost.to_bits(),
                "placement policy changed the bill"
            ),
        }
        println!(
            "{:<12} {:>10.4} {:>6} {:>9} {:>13.1} {:>11.1}",
            placement.map_or("arithmetic", PlacementKind::label),
            metrics.total_cost,
            metrics.total_sla_violations,
            metrics.total_sla_dropped_users,
            metrics.total_sla_latency_ms,
            metrics.total_energy_wh,
        );
        assert!(dc_driver.engine().placement_health().is_ok());
    }
}
