//! The paper's motivating scenario (§I): a decision-making routine (minimax)
//! that a flagship phone computes easily but a legacy phone or wearable
//! cannot. The example walks through the offload-or-local decision on each
//! device class, then shows the client-side moderator promoting a legacy
//! device through the acceleration groups until the game becomes responsive.
//!
//! ```bash
//! cargo run --example adaptive_game
//! ```

use mobile_code_acceleration::offload::{DecisionEngine, DecisionInput};
use mobile_code_acceleration::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let task = TaskSpec::paper_static_minimax();
    let network = CellularNetwork::paper_default_lte();
    println!(
        "game AI task: {task} ({:.0} work units)\n",
        task.work_units()
    );

    // 1. Should each device offload at all?
    println!("offloading decision per device class (LTE, level-1 cloud):");
    for class in DeviceClass::ALL {
        let device = DeviceProfile::for_class(class);
        let input = DecisionInput {
            work_units: task.work_units(),
            device_speed_factor: device.speed_factor,
            cloud_speed_factor: 1.0,
            network_rtt_ms: network.mean_rtt_ms(),
            payload_bytes: task.state_bytes(),
            uplink_bytes_per_ms: 2_500.0,
            routing_overhead_ms: 150.0,
            device_active_power_mw: device.active_power_mw,
            device_radio_power_mw: device.radio_power_mw,
        };
        let decision = DecisionEngine::default().decide(&input);
        println!(
            "  {class:<10} local {:>6.0} ms, offloaded {:>5.0} ms -> {}",
            input.local_time_ms(),
            input.remote_time_ms(),
            if decision.is_offload() {
                format!("OFFLOAD ({:.1}x faster)", decision.predicted_speedup())
            } else {
                "stay local".to_string()
            }
        );
    }

    // 2. Run the legacy phone through the closed-loop system with a
    //    latency-threshold moderator: whenever a move takes longer than one
    //    second, the device asks for the next acceleration level.
    println!("\nadaptive acceleration for the legacy phone (threshold 1000 ms):");
    let config = SystemConfig::paper_three_groups()
        .with_promotion_policy(PromotionPolicy::ResponseTimeThreshold {
            threshold_ms: 1_000.0,
        })
        .with_slot_length_ms(5.0 * 60_000.0);
    let mut system = System::new(config);
    let workload = WorkloadGenerator::inter_arrival(1, TaskPool::static_load(task))
        .generate(20.0 * 60_000.0, &mut rng);
    let report = system.run(&workload, &mut rng);
    let player = report
        .perception_of(UserId(0))
        .expect("the player issued requests");
    let mut last_group = None;
    for (i, (response, group)) in player.responses.iter().enumerate() {
        if last_group != Some(*group) {
            println!("  -- now served by acceleration group {group} --");
            last_group = Some(*group);
        }
        if i < 6 || last_group == Some(*group) && i % 10 == 0 {
            println!("  move {i:>3}: {response:>6.0} ms");
        }
    }
    println!(
        "\nplayer promoted {} times; mean move latency {:.0} ms; total cloud bill ${:.2}",
        player.promotions,
        player.mean_response_ms(),
        report.total_cost
    );
}
