//! Kill-and-resume smoke for durable fleet sessions: a full-featured fleet
//! (rebalancer firing, datacenter billing on, logical telemetry clock) is
//! driven half way, checkpointed to disk, **dropped** — the simulated
//! crash — and restored into a fresh process-shaped driver that finishes
//! the drive. The resumed session must match an uninterrupted reference
//! run bit for bit: forecasts, metrics, datacenter accounting, ingestion
//! accounting and the logical-clock telemetry snapshot.
//!
//! ```bash
//! cargo run --release --example fleet_checkpoint
//! ```
//!
//! Exits non-zero (assert) on any divergence — CI runs this as the
//! checkpoint gate.

use mobile_code_acceleration::cloudsim::{DatacenterConfig, PlacementKind};
use mobile_code_acceleration::core::SystemConfig;
use mobile_code_acceleration::fleet::{
    FleetDriver, FleetEngine, RebalancerConfig, RecordSource, TelemetryMode, TenantMixSource,
};
use mobile_code_acceleration::offload::TenantId;
use mobile_code_acceleration::workload::TenantMix;
use std::time::Instant;

const SEED: u64 = 20170605;
const TENANTS: usize = 12;
const SLOTS: usize = 32;
const CHECKPOINT_AT: usize = 17; // past the 16-slot window: mid-eviction
const SHARDS: usize = 4;
const THREADS: usize = 2;

fn config() -> SystemConfig {
    SystemConfig::paper_three_groups()
        .with_history_window(16)
        .with_indexed_scan()
        .with_datacenter(DatacenterConfig::paper_default().with_placement(PlacementKind::BestFit))
}

fn mix() -> TenantMix {
    TenantMix::heterogeneous(TENANTS, 12, config().groups.ids(), SEED)
}

fn fresh_driver() -> FleetDriver {
    let mix = mix();
    let mut engine = FleetEngine::new(config(), SHARDS, SEED)
        .with_threads(THREADS)
        .with_telemetry(TelemetryMode::Logical)
        .with_rebalancer(
            RebalancerConfig::default()
                .with_ratio(1.05)
                .with_warmup_slots(2),
        );
    engine.add_tenants(mix.tenant_ids());
    FleetDriver::new(engine)
        .with_mix(&mix)
        .expect("every tenant is part of the mix")
}

fn main() {
    // the uninterrupted reference run
    let reference = {
        let mut driver = fresh_driver();
        driver.run(SLOTS).expect("mix sources never misbehave")
    };
    assert!(
        reference.metrics.total_energy_wh > 0.0,
        "datacenter billing is on"
    );

    // the session that will "crash": drive half way, checkpoint to disk
    let checkpoint_path = std::env::temp_dir().join("mca_fleet_checkpoint.bin");
    let (stats, checkpoint_ms, forecasts_at_kill) = {
        let mut driver = fresh_driver();
        driver.run(CHECKPOINT_AT).expect("pre-crash drive");
        let mut file = std::fs::File::create(&checkpoint_path).expect("create checkpoint file");
        let start = Instant::now();
        let stats = driver.checkpoint(&mut file).expect("checkpoint to disk");
        let checkpoint_ms = start.elapsed().as_secs_f64() * 1_000.0;
        (stats, checkpoint_ms, driver.engine().forecasts())
        // the driver (and its engine, sources, RNG streams) drops here: the
        // process-shaped state is gone, only the file survives
    };
    println!(
        "checkpoint at slot {CHECKPOINT_AT}: {} bytes, {} sections, {:.3} ms -> {}",
        stats.bytes,
        stats.sections,
        checkpoint_ms,
        checkpoint_path.display(),
    );

    // the resumed process: fresh sources over the same mix, cursors loaded
    let mix = mix();
    let sources: Vec<(Option<TenantId>, Box<dyn RecordSource>)> = mix
        .tenant_ids()
        .map(|tenant| {
            let source = TenantMixSource::new(&mix, tenant).expect("tenant is part of the mix");
            (Some(tenant), Box::new(source) as Box<dyn RecordSource>)
        })
        .collect();
    let mut file = std::fs::File::open(&checkpoint_path).expect("open checkpoint file");
    let start = Instant::now();
    let mut resumed =
        FleetDriver::restore(&mut file, &config(), sources).expect("restore from disk");
    let restore_ms = start.elapsed().as_secs_f64() * 1_000.0;
    println!("restore: {restore_ms:.3} ms");
    assert_eq!(
        resumed.engine().forecasts(),
        forecasts_at_kill,
        "the restored engine resumes exactly where the crash left it"
    );

    let report = resumed
        .run(SLOTS - CHECKPOINT_AT)
        .expect("post-restore drive");
    assert_eq!(
        report, reference,
        "resumed forecasts/metrics/accounting must equal the uninterrupted run"
    );
    assert_eq!(
        report.telemetry, reference.telemetry,
        "logical-clock telemetry must equal the uninterrupted run"
    );
    let rebalance = report
        .telemetry
        .rebalance
        .as_ref()
        .expect("the smoke runs with a rebalancer");
    println!(
        "resumed drive: {} slots, {} records, ${:.2} billed, {:.1} wh metered, \
         {} migrations — bit-identical to the uninterrupted run",
        report.slots,
        report.records,
        report.metrics.total_cost,
        report.metrics.total_energy_wh,
        rebalance.migrations,
    );
    std::fs::remove_file(&checkpoint_path).ok();
    println!("kill-and-resume smoke: OK");
}
