//! Allocation-solver scaling: the sparse revised simplex with warm-started
//! branch-and-bound versus the dense cold tableau as the instance-type
//! catalogue grows, plus the fleet's per-tenant allocation memo cache.
//!
//! ```bash
//! cargo run --release --example allocation_scaling
//! ```

use mobile_code_acceleration::core::{SystemConfig, WorkloadForecast};
use mobile_code_acceleration::fleet::TenantShard;
use mobile_code_acceleration::lp::LpBackend;
use mobile_code_acceleration::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const SEED: u64 = 20170605;
const FORECASTS: usize = 24;

/// `groups` acceleration groups, each offering six distinct-price instance
/// types (the `bench_allocation` catalogue).
fn catalogue(groups: u8) -> AccelerationGroups {
    let types = vec![
        InstanceType::T2Nano,
        InstanceType::T2Small,
        InstanceType::T2Large,
        InstanceType::M4_4XLarge,
        InstanceType::M4_10XLarge,
        InstanceType::C4_8XLarge,
    ];
    let assignments: Vec<(AccelerationGroupId, Vec<InstanceType>)> = (0..groups)
        .map(|g| (AccelerationGroupId(g + 1), types.clone()))
        .collect();
    AccelerationGroups::from_assignments(&assignments, 500.0, 65.0)
}

fn forecasts(groups: &AccelerationGroups, rng: &mut StdRng) -> Vec<WorkloadForecast> {
    (0..FORECASTS)
        .map(|_| WorkloadForecast {
            per_group: groups
                .ids()
                .into_iter()
                .map(|id| (id, rng.gen_range(0..2_001)))
                .collect(),
            matched_slot: None,
        })
        .collect()
}

fn main() {
    println!("allocation ILP scaling: revised+warm-started vs dense cold\n");
    println!(
        "{:>6} {:>6} {:>11} {:>11} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "types",
        "groups",
        "dense ms",
        "revised ms",
        "speedup",
        "nodes",
        "pivots",
        "p1 skips",
        "equal"
    );
    for group_count in [1u8, 2, 4, 8] {
        let groups = catalogue(group_count);
        let cap = 20 * group_count as usize;
        let revised = ResourceAllocator::with_policy(groups.clone(), AllocationPolicy::IlpExact)
            .with_account_cap(cap);
        let dense = ResourceAllocator::with_policy(groups.clone(), AllocationPolicy::IlpExact)
            .with_account_cap(cap)
            .with_lp_backend(LpBackend::DenseTableau);
        let mut rng = StdRng::seed_from_u64(SEED ^ u64::from(group_count));
        let fs = forecasts(&groups, &mut rng);

        let mut dense_ms = 0.0;
        let mut revised_ms = 0.0;
        let (mut nodes, mut pivots, mut skips) = (0usize, 0usize, 0usize);
        let mut equal = true;
        for f in &fs {
            let start = Instant::now();
            let d = dense.allocate(f).expect("feasible");
            dense_ms += start.elapsed().as_secs_f64() * 1_000.0;
            let start = Instant::now();
            let r = revised.allocate(f).expect("feasible");
            revised_ms += start.elapsed().as_secs_f64() * 1_000.0;
            equal &= d == r;
            nodes += r.stats.nodes;
            pivots += r.stats.pivots;
            skips += r.stats.phase1_skips;
        }
        let n = fs.len() as f64;
        println!(
            "{:>6} {:>6} {:>11.4} {:>11.4} {:>7.1}x {:>8.1} {:>9.1} {:>9.1} {:>9}",
            6 * u32::from(group_count),
            group_count,
            dense_ms / n,
            revised_ms / n,
            dense_ms / revised_ms,
            nodes as f64 / n,
            pivots as f64 / n,
            skips as f64 / n,
            equal,
        );
    }

    // the fleet layer's allocation memo: a steady tenant re-predicts the
    // same workload vector slot after slot, so only the first slot solves
    println!("\nper-tenant allocation memo (steady tenant, 24 slots):");
    let config = SystemConfig::paper_three_groups();
    let mut shard = TenantShard::new(TenantId(1), &config, SEED);
    for slot in 0..24 {
        let ts = TimeSlot::from_assignments(
            slot,
            (0..40u32).map(|u| (AccelerationGroupId(1 + (u % 3) as u8), UserId(u))),
        );
        shard.tick(ts, (slot + 1) as f64 * config.slot_length_ms);
    }
    let m = shard.metrics();
    println!(
        "  allocations {} | solver runs {} | cache hits {} | hit rate {:.1}% | cached vectors {}",
        m.allocations,
        m.alloc_cache_misses,
        m.alloc_cache_hits,
        100.0 * m.cache_hit_rate().unwrap_or(0.0),
        shard.cached_allocations(),
    );
}
