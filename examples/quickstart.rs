//! Quickstart: run the SDN code-acceleration system end-to-end on a small
//! workload and print what happened.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use mobile_code_acceleration::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // The paper's 8-hour experiment setup: three acceleration groups
    // (t2.nano / t2.large / m4.4xlarge), LTE access, 1/50 promotion
    // probability, 50 concurrent background users per server.
    let config = SystemConfig::paper_three_groups().with_slot_length_ms(5.0 * 60_000.0);
    let mut system = System::new(config);

    // 25 devices repeatedly offloading the static minimax task for 30 minutes.
    let workload = WorkloadGenerator::inter_arrival(
        25,
        TaskPool::static_load(TaskSpec::paper_static_minimax()),
    )
    .generate(30.0 * 60_000.0, &mut rng);
    println!(
        "generated {} offloading requests from {} devices",
        workload.len(),
        workload.distinct_users()
    );

    let report = system.run(&workload, &mut rng);

    println!(
        "mean end-to-end response time: {:.0} ms",
        report.mean_response_ms
    );
    println!(
        "promotions performed by device moderators: {}",
        report.promotions.len()
    );
    println!(
        "users that ended above the entry acceleration group: {:.0}%",
        report.promoted_user_fraction(AccelerationGroupId(1)) * 100.0
    );
    if let Some(accuracy) = report.mean_prediction_accuracy() {
        println!(
            "workload prediction accuracy across slots: {:.1}%",
            accuracy * 100.0
        );
    }
    println!("total cloud bill for the run: ${:.2}", report.total_cost);

    println!("\nper-slot view (actual users per group -> allocated instances):");
    for slot in &report.slots {
        let actual: Vec<String> = slot
            .actual
            .iter()
            .map(|(g, n)| format!("{g}={n}"))
            .collect();
        println!(
            "  slot {:>2}: {:<30} instances={} cost/h=${:.3}",
            slot.index,
            actual.join(" "),
            slot.allocated_instances,
            slot.allocation_cost
        );
    }
}
