//! One huge CloneCloud-style tenant — a single app whose clone population
//! dwarfs every other tenant — served in **user-sharded** mode: the
//! `ShardRouter` splits the population across every shard by user hash, each
//! shard's replica predicts and allocates over its own slice, and the
//! engine combines the slice forecasts into the tenant-wide view. The
//! predictor is configured with the chunked parallel knowledge-base scan
//! (`with_parallel_scan`), which takes over automatically once a replica's
//! history crosses the fan-out threshold, and with the vantage-point metric
//! index (`with_index_policy`), which takes precedence once a replica
//! retains 24 slots and keeps the nearest-slot search sublinear as the
//! knowledge base grows toward its six-month window.
//!
//! ```bash
//! cargo run --release --example huge_tenant
//! ```

use mobile_code_acceleration::core::{IndexPolicy, SystemConfig};
use mobile_code_acceleration::fleet::{FleetDriver, FleetEngine, SlotBatchSource, SlotRecord};
use mobile_code_acceleration::offload::{AccelerationGroupId, TenantId, UserId};

const SHARDS: usize = 4;
const SLOTS: usize = 72;
const POPULATION: u32 = 6_000;
const SEED: u64 = 20170605;

fn main() {
    // Paper defaults except: a raised account cap (one huge tenant needs
    // more than 20 instances), a bounded knowledge base, the chunked
    // parallel scan, and the metric index for the nearest-neighbour search.
    let mut config = SystemConfig::paper_three_groups()
        .with_history_window(4_320) // six months of hourly slots
        .with_parallel_scan(SHARDS)
        .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(24));
    config.account_cap = 5_000;

    let huge = TenantId(0);
    let mut engine = FleetEngine::new(config, SHARDS, SEED).with_threads(SHARDS);
    engine.add_user_sharded_tenant(huge);
    println!("huge tenant: {POPULATION} clones user-sharded over {SHARDS} shards, {SLOTS} slots\n");

    // diurnal ramp with a slowly drifting population window, the shape of
    // the paper's traces — recorded up front as a replayable per-slot batch
    // list and streamed through the unified ingestion driver
    let batches: Vec<Vec<SlotRecord>> = (0..SLOTS)
        .map(|slot| {
            let phase = (slot % 24) as f64 / 24.0 * std::f64::consts::TAU;
            let load = (f64::from(POPULATION) * (1.0 + 0.25 * phase.sin())).round() as u32;
            let drift = slot as u32 * (POPULATION / 200);
            (0..load)
                .map(|u| {
                    SlotRecord::new(
                        huge,
                        AccelerationGroupId((u % 3 + 1) as u8),
                        UserId(drift + u),
                    )
                })
                .collect()
        })
        .collect();

    let mut driver = FleetDriver::new(engine)
        .with_source(huge, SlotBatchSource::new(batches))
        .expect("the huge tenant is onboarded");
    let report = driver
        .run_until_exhausted(SLOTS)
        .expect("the replay source stays on its tenant");

    let metrics = &report.metrics;
    let engine = driver.engine();
    let tenant = metrics.tenant(huge).expect("huge tenant is onboarded");
    println!("rollup over the tenant's {} replicas:", SHARDS);
    println!("  slots ticked              {:>10}", tenant.slots);
    println!("  mean users/slot           {:>10.0}", tenant.mean_users());
    println!(
        "  mean forecast accuracy    {:>10.3}",
        tenant.mean_accuracy().unwrap_or(0.0)
    );
    println!("  allocations               {:>10}", tenant.allocations);
    println!(
        "  mean instances/slot       {:>10.1}",
        tenant.mean_instances()
    );
    println!("  total cost (USD)          {:>10.2}", tenant.total_cost);
    println!(
        "  alloc cache hit/miss/evict{:>6}/{}/{}",
        tenant.alloc_cache_hits, tenant.alloc_cache_misses, tenant.alloc_cache_evictions
    );

    let forecast = engine
        .combined_forecast(huge)
        .expect("every replica has forecast");
    println!("\ncombined next-slot forecast: {} users", forecast.total());
    for (group, users) in &forecast.per_group {
        println!("  {group}: {users}");
    }
}
