//! Characterize a set of cloud instances into acceleration levels exactly the
//! way the paper does in §VI-A: stress each instance with the concurrent-mode
//! simulator, estimate its capacity under a 500 ms response-time target, and
//! group instances with similar capacity into acceleration levels.
//!
//! ```bash
//! cargo run --example characterize_cloud
//! ```

use mobile_code_acceleration::prelude::*;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2017);
    let pool = TaskPool::paper_default();
    let load_levels = [1usize, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];

    println!(
        "benchmarking {} instance types with loads 1..100...\n",
        InstanceType::ALL.len()
    );
    let benchmarks: Vec<InstanceBenchmark> = InstanceType::ALL
        .iter()
        .map(|&ty| {
            let b = InstanceBenchmark::run(ty, &pool, &load_levels, 60_000.0, 500.0, &mut rng);
            println!(
                "{:<12} 1 user: {:>5.0} ms   100 users: {:>6.0} ms   degradation {:>4.1}x   capacity ≈ {:>6} users",
                ty.to_string(),
                b.points.first().map(|p| p.mean_ms).unwrap_or(0.0),
                b.points.last().map(|p| p.mean_ms).unwrap_or(0.0),
                b.degradation_ratio(),
                b.capacity
            );
            b
        })
        .collect();

    let classification = LevelClassification::classify(&benchmarks, 1.5);
    println!("\nacceleration levels under a 500 ms target:");
    for level in &classification.levels {
        let members: Vec<String> = level.members.iter().map(|m| m.to_string()).collect();
        let cost: f64 = level
            .members
            .iter()
            .map(|m| m.spec().cost_per_hour)
            .sum::<f64>()
            / level.members.len() as f64;
        println!(
            "  level {}: {:<28} capacity ≈ {:>6} users/instance, mean price ${:.3}/h",
            level.level,
            members.join(", "),
            level.capacity,
            cost
        );
    }

    let groups = AccelerationGroups::from_classification(&classification);
    println!(
        "\nderived {} acceleration groups; entry group is {} and the ceiling is {}",
        groups.len(),
        groups.lowest().id,
        groups.highest().id
    );
}
