//! Code-acceleration-as-a-service provisioning: plan one day of cloud
//! capacity for a diurnal offloading workload and compare the paper's ILP
//! allocation against greedy and over-provisioning baselines.
//!
//! ```bash
//! cargo run --example caas_provisioning
//! ```

use mca_offload::AccelerationGroupId as Gid;
use mobile_code_acceleration::core::{TimeSlot, WorkloadForecast};
use mobile_code_acceleration::prelude::*;

/// A synthetic diurnal demand curve: users per acceleration group per hour.
fn hourly_demand() -> Vec<(u8, [usize; 3])> {
    (0..24)
        .map(|hour| {
            // night trough, morning ramp, evening peak
            let base = match hour {
                0..=5 => 5,
                6..=9 => 40 + (hour - 6) * 25,
                10..=16 => 120,
                17..=21 => 180,
                _ => 60,
            } as usize;
            // most users sit in group 1, a quarter were promoted to group 2,
            // a tenth to group 3
            (hour as u8, [base, base / 4, base / 10])
        })
        .collect()
}

fn main() {
    let groups = AccelerationGroups::paper_three_groups();
    let policies = [
        ("ILP (paper)", AllocationPolicy::IlpExact),
        ("greedy cheapest", AllocationPolicy::GreedyCheapest),
        ("over-provision", AllocationPolicy::OverProvision),
    ];

    println!("hour  demand(a1/a2/a3)   ILP$   greedy$   overprov$");
    let mut totals = [0.0f64; 3];
    for (hour, demand) in hourly_demand() {
        let forecast = WorkloadForecast {
            per_group: vec![
                (Gid(1), demand[0]),
                (Gid(2), demand[1]),
                (Gid(3), demand[2]),
            ],
            matched_slot: None,
        };
        let mut costs = [0.0f64; 3];
        for (i, (_, policy)) in policies.iter().enumerate() {
            let allocator = ResourceAllocator::with_policy(groups.clone(), *policy);
            let allocation = allocator
                .allocate(&forecast)
                .expect("demand fits the account cap");
            assert!(allocation.covers(&forecast));
            costs[i] = allocation.hourly_cost;
            totals[i] += allocation.hourly_cost;
        }
        println!(
            "{hour:>4}  {:>5}/{:>3}/{:>3}     {:>6.3}  {:>7.3}   {:>8.3}",
            demand[0], demand[1], demand[2], costs[0], costs[1], costs[2]
        );
    }
    println!("\ndaily totals:");
    for (i, (name, _)) in policies.iter().enumerate() {
        println!("  {name:<16} ${:.2}", totals[i]);
    }
    println!(
        "\nThe exact ILP saves {:.1}% over over-provisioning for this day.",
        (1.0 - totals[0] / totals[2]) * 100.0
    );

    // Show how the predictor would have produced these forecasts on-line: the
    // knowledge base holds yesterday's slots and today's demand is matched by
    // nearest-neighbour search.
    let mut predictor = WorkloadPredictor::new(vec![Gid(1), Gid(2), Gid(3)], 3_600_000.0);
    for (hour, demand) in hourly_demand() {
        let mut slot = TimeSlot::new(hour as usize);
        for u in 0..demand[0] {
            slot.assign(Gid(1), UserId(u as u32));
        }
        for u in 0..demand[1] {
            slot.assign(Gid(2), UserId(10_000 + u as u32));
        }
        for u in 0..demand[2] {
            slot.assign(Gid(3), UserId(20_000 + u as u32));
        }
        predictor.observe_slot(slot);
    }
    let evening = predictor
        .predict(&TimeSlot::from_assignments(
            0,
            (0..175).map(|u| (Gid(1), UserId(u as u32))),
        ))
        .expect("history is populated");
    println!(
        "\nnearest-neighbour forecast for a 175-user evening hour: {} users in a1 (matched slot {:?})",
        evening.load_of(Gid(1)),
        evening.matched_slot
    );
}
