//! Fleet scaling: 16 tenants with heterogeneous load shapes (steady / ramp /
//! doubling) served by the sharded multi-tenant engine, with the per-tenant
//! and fleet-wide rollups printed at the end.
//!
//! ```bash
//! cargo run --release --example fleet_scaling
//! ```

use mobile_code_acceleration::core::SystemConfig;
use mobile_code_acceleration::fleet::{FleetDriver, FleetEngine};
use mobile_code_acceleration::workload::{TenantMix, TenantScenario};

const TENANTS: usize = 16;
const SLOTS: usize = 120;
const SHARDS: usize = 8;
const SEED: u64 = 20170605;

fn shape(scenario: &TenantScenario) -> String {
    match scenario {
        TenantScenario::Steady { users } => format!("steady {users}"),
        TenantScenario::Ramp(ramp) => {
            format!("ramp {}->{}", ramp.start_users, ramp.end_users)
        }
        TenantScenario::Doubling {
            start_users,
            doublings,
            ..
        } => format!("doubling {}->{}", start_users, start_users << doublings),
    }
}

fn main() {
    // A week-bounded knowledge base per tenant, otherwise paper defaults.
    let config = SystemConfig::paper_three_groups().with_history_window(168);
    let mix = TenantMix::heterogeneous(TENANTS, 320, config.groups.ids(), SEED);

    let mut engine = FleetEngine::new(config, SHARDS, SEED);
    engine.add_tenants(mix.tenant_ids());
    println!(
        "fleet: {} tenants on {} shards, {} thread(s), {} provisioning slots\n",
        engine.tenants(),
        engine.shard_count(),
        engine.threads(),
        SLOTS,
    );

    // one mix-backed record source per tenant, multiplexed by the driver —
    // the same ingestion path recorded traces and live streams use
    let mut driver = FleetDriver::new(engine)
        .with_mix(&mix)
        .expect("every tenant is part of the mix");
    let report = driver.run(SLOTS).expect("mix sources never misroute");

    let rollup = &report.metrics;
    let engine = driver.engine();
    println!(
        "{:<8} {:<16} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "tenant", "shape", "shard", "users/slot", "peak", "accuracy", "cost $"
    );
    for tenant in &rollup.per_tenant {
        println!(
            "{:<8} {:<16} {:>6} {:>10.1} {:>10} {:>9.1}% {:>10.2}",
            tenant.tenant.to_string(),
            shape(mix.scenario_of(tenant.tenant)),
            engine.shard_of(tenant.tenant),
            tenant.mean_users(),
            tenant.peak_users,
            tenant.mean_accuracy().unwrap_or(0.0) * 100.0,
            tenant.total_cost,
        );
    }

    println!(
        "\nfleet rollup: {} slots, mean accuracy {:.1}%, {} allocations \
         ({} infeasible), peak-user sum {}, total spend ${:.2}",
        rollup.slots,
        rollup.mean_accuracy.unwrap_or(0.0) * 100.0,
        rollup.total_allocations,
        rollup.total_infeasible,
        rollup.peak_user_sum,
        rollup.total_cost,
    );
    println!(
        "ingestion: {} records through {} sources, {} late, {} dropped",
        report.records, report.total_sources, report.late_records, report.dropped_records,
    );
}
