//! Fleet-side telemetry: per-shard stage tracing and the fleet rollup.
//!
//! Every [`crate::FleetEngine`] shard carries a [`ShardTelemetry`]: one
//! [`TelemetryClock`] plus one latency histogram per provisioning stage
//! (windowing → predict → allocate → bill, and the whole shard tick). The
//! engine keeps a matching fleet-level clock for the per-slot ingest
//! latency. Because clocks are *per shard* and stage boundaries are fixed by
//! the deterministic tick loop, a [`TelemetryMode::Logical`] run records
//! bit-identical histograms under any thread count — the determinism suite
//! proves it — while a [`TelemetryMode::Monotonic`] run measures real wall
//! time for benchmarks and dashboards.
//!
//! Nothing here allocates on the hot path: a stage measurement is two clock
//! reads and a counter increment ([`mca_telemetry::LatencyHistogram`]
//! allocates its bucket table once, on the first record), and a disabled
//! shard telemetry is a handful of machine words whose clock reads cost one
//! branch.

use crate::rebalance::RebalanceSnapshot;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use mca_telemetry::{
    LatencyHistogram, LogicalClock, MonotonicClock, Registry, StageTimer, TelemetryClock,
};
use serde::{Deserialize, Serialize};

/// Smoothing factor of the per-shard load and tick-latency EWMAs: each new
/// slot contributes 1/8, the classic RFC 6298 weighting — heavy enough to
/// follow a load shift within a few slots, light enough to ride out one
/// bursty slot.
const EWMA_ALPHA: f64 = 0.125;

/// How an engine's instrumentation measures time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TelemetryMode {
    /// No measurements are taken or recorded; the load accounting
    /// (tick/record counts, load EWMA) still runs.
    Disabled,
    /// Wall-clock monotonic stage timing — the default for real runs.
    #[default]
    Monotonic,
    /// Fixed-quantum logical stage timing: histograms become a deterministic
    /// function of the event counts alone, bit-identical across thread
    /// counts and repeats. What the determinism suite and golden tests use.
    Logical,
}

impl TelemetryMode {
    /// A fresh clock measuring in this mode.
    pub(crate) fn clock(self) -> TelemetryClock {
        match self {
            TelemetryMode::Disabled => TelemetryClock::Disabled,
            TelemetryMode::Monotonic => TelemetryClock::Monotonic(MonotonicClock::new()),
            TelemetryMode::Logical => TelemetryClock::Logical(LogicalClock::default()),
        }
    }
}

/// One latency histogram per stage of the provisioning tick.
///
/// Stage counts obey the tick's own arithmetic, which the bench smoke gate
/// asserts: `windowing` and `predict` record once per tenant-tick, `allocate`
/// once per produced forecast, `bill` once per successful allocation, and
/// `tick` once per shard-slot.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageHistograms {
    /// Building the tenant's observed [`mca_core::TimeSlot`] from the staged
    /// records (the single sort + dedup pass).
    pub windowing: LatencyHistogram,
    /// `observe_and_predict`: folding the slot into the knowledge base and
    /// forecasting the next one.
    pub predict: LatencyHistogram,
    /// Serving the allocation for the forecast (memo-cache hit or solve).
    pub allocate: LatencyHistogram,
    /// Billing and applying the allocation to the instance pool.
    pub bill: LatencyHistogram,
    /// The whole shard tick (drain + every tenant's cycle).
    pub tick: LatencyHistogram,
}

impl StageHistograms {
    /// Folds another set of stage histograms into this one.
    pub fn merge(&mut self, other: &StageHistograms) {
        self.windowing.merge(&other.windowing);
        self.predict.merge(&other.predict);
        self.allocate.merge(&other.allocate);
        self.bill.merge(&other.bill);
        self.tick.merge(&other.tick);
    }

    /// Total stage samples across the five histograms.
    pub fn total_samples(&self) -> u64 {
        self.windowing.count()
            + self.predict.count()
            + self.allocate.count()
            + self.bill.count()
            + self.tick.count()
    }
}

/// The instrumentation state one shard carries through its ticks: a private
/// clock (so logical time is deterministic under any thread schedule), the
/// stage histograms, and the shard's load accounting.
#[derive(Debug, Clone)]
pub struct ShardTelemetry {
    clock: TelemetryClock,
    stages: StageHistograms,
    ticks: u64,
    records: u64,
    load_ewma: f64,
    tick_ewma_ns: f64,
    last_tick_ns: u64,
}

impl ShardTelemetry {
    /// Fresh telemetry measuring in `mode`.
    pub fn new(mode: TelemetryMode) -> Self {
        Self {
            clock: mode.clock(),
            stages: StageHistograms::default(),
            ticks: 0,
            records: 0,
            load_ewma: 0.0,
            tick_ewma_ns: 0.0,
            last_tick_ns: 0,
        }
    }

    /// Telemetry that measures nothing. Construction never allocates, so the
    /// un-instrumented tick path can build one per call for free.
    pub fn disabled() -> Self {
        Self::new(TelemetryMode::Disabled)
    }

    /// Whether stage measurements are being recorded.
    pub fn enabled(&self) -> bool {
        self.clock.enabled()
    }

    /// Starts a stage measurement against the shard's clock.
    pub fn start_stage(&mut self) -> StageTimer {
        StageTimer::start(&mut self.clock)
    }

    /// Stops `timer` and records the windowing stage.
    pub fn end_windowing(&mut self, timer: StageTimer) {
        let elapsed = timer.stop(&mut self.clock);
        if self.enabled() {
            self.stages.windowing.record(elapsed);
        }
    }

    /// Stops `timer` and records the predict stage.
    pub fn end_predict(&mut self, timer: StageTimer) {
        let elapsed = timer.stop(&mut self.clock);
        if self.enabled() {
            self.stages.predict.record(elapsed);
        }
    }

    /// Stops `timer` and records the allocate stage.
    pub fn end_allocate(&mut self, timer: StageTimer) {
        let elapsed = timer.stop(&mut self.clock);
        if self.enabled() {
            self.stages.allocate.record(elapsed);
        }
    }

    /// Stops `timer` and records the billing stage.
    pub fn end_bill(&mut self, timer: StageTimer) {
        let elapsed = timer.stop(&mut self.clock);
        if self.enabled() {
            self.stages.bill.record(elapsed);
        }
    }

    /// Closes one shard tick: records the whole-tick latency and folds
    /// `records` into the shard's load accounting. The load EWMA runs in
    /// every mode (it is a deterministic function of the record counts); the
    /// latency EWMA only when measurements are real.
    pub(crate) fn finish_tick(&mut self, records: usize, timer: StageTimer) {
        let elapsed = timer.stop(&mut self.clock);
        self.ticks += 1;
        self.records += records as u64;
        self.load_ewma = ewma(self.load_ewma, records as f64, self.ticks);
        if self.enabled() {
            self.stages.tick.record(elapsed);
            self.tick_ewma_ns = ewma(self.tick_ewma_ns, elapsed as f64, self.ticks);
            self.last_tick_ns = elapsed;
        }
    }

    /// The shard's stage histograms.
    pub fn stages(&self) -> &StageHistograms {
        &self.stages
    }

    /// Shard ticks closed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Records staged to this shard so far (including unknown-tenant drops —
    /// routing and draining them is work the shard did).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Exponentially-weighted moving average of records per tick — the load
    /// signal a rebalancer would watch.
    pub fn load_ewma(&self) -> f64 {
        self.load_ewma
    }

    /// Exponentially-weighted moving average of the shard tick latency in
    /// nanoseconds (0 while disabled).
    pub fn tick_ewma_ns(&self) -> f64 {
        self.tick_ewma_ns
    }

    /// Latency of the most recent shard tick, ns (0 while disabled). What
    /// the engine's critical-path accounting and the skew bench read per
    /// slot.
    pub fn last_tick_ns(&self) -> u64 {
        self.last_tick_ns
    }

    /// The shard's load snapshot.
    pub(crate) fn load_snapshot(&self, shard: usize, tenants: usize) -> ShardLoad {
        ShardLoad {
            shard,
            tenants,
            ticks: self.ticks,
            records: self.records,
            load_ewma: self.load_ewma,
            tick_ewma_ns: self.tick_ewma_ns,
            tick_p99_ns: self.stages.tick.p99(),
            last_tick_ns: self.last_tick_ns,
        }
    }
}

impl Snapshot for TelemetryMode {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            TelemetryMode::Disabled => 0,
            TelemetryMode::Monotonic => 1,
            TelemetryMode::Logical => 2,
        };
        tag.encode(out);
    }
}

impl Restore for TelemetryMode {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        match u8::decode(cur)? {
            0 => Ok(TelemetryMode::Disabled),
            1 => Ok(TelemetryMode::Monotonic),
            2 => Ok(TelemetryMode::Logical),
            _ => Err(SnapshotError::Malformed {
                context: "telemetry mode tag",
            }),
        }
    }
}

impl Snapshot for StageHistograms {
    fn encode(&self, out: &mut Vec<u8>) {
        self.windowing.encode(out);
        self.predict.encode(out);
        self.allocate.encode(out);
        self.bill.encode(out);
        self.tick.encode(out);
    }
}

impl Restore for StageHistograms {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            windowing: LatencyHistogram::decode(cur)?,
            predict: LatencyHistogram::decode(cur)?,
            allocate: LatencyHistogram::decode(cur)?,
            bill: LatencyHistogram::decode(cur)?,
            tick: LatencyHistogram::decode(cur)?,
        })
    }
}

/// The whole instrumentation state travels on the wire — clock included, so
/// a restored [`TelemetryMode::Logical`] run resumes its logical timeline
/// mid-quantum and stays bit-identical with the uninterrupted run. A
/// monotonic clock restores to a fresh epoch: wall-clock histograms resume
/// *counting* exactly but their future samples measure the new process (they
/// are deliberately outside every determinism comparison).
impl Snapshot for ShardTelemetry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.clock.encode(out);
        self.stages.encode(out);
        self.ticks.encode(out);
        self.records.encode(out);
        self.load_ewma.encode(out);
        self.tick_ewma_ns.encode(out);
        self.last_tick_ns.encode(out);
    }
}

impl Restore for ShardTelemetry {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            clock: TelemetryClock::decode(cur)?,
            stages: StageHistograms::decode(cur)?,
            ticks: u64::decode(cur)?,
            records: u64::decode(cur)?,
            load_ewma: f64::decode(cur)?,
            tick_ewma_ns: f64::decode(cur)?,
            last_tick_ns: u64::decode(cur)?,
        })
    }
}

/// First sample seeds the average; later samples fold in at [`EWMA_ALPHA`].
/// Shared with the per-tenant load EWMA in [`crate::TenantShard`] so both
/// load signals smooth identically.
pub(crate) fn ewma(prev: f64, sample: f64, count: u64) -> f64 {
    if count <= 1 {
        sample
    } else {
        EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * prev
    }
}

/// One shard's load view inside a [`FleetTelemetry`] snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Tenant replicas the shard hosts.
    pub tenants: usize,
    /// Shard ticks closed.
    pub ticks: u64,
    /// Records staged to the shard.
    pub records: u64,
    /// EWMA of records per tick.
    pub load_ewma: f64,
    /// EWMA of the shard tick latency, ns (0 while disabled).
    pub tick_ewma_ns: f64,
    /// p99 of the shard tick latency, ns (0 while disabled).
    pub tick_p99_ns: u64,
    /// Latency of the most recent shard tick, ns (0 while disabled).
    pub last_tick_ns: u64,
}

/// The engine-wide telemetry snapshot: per-slot ingest latency, stage
/// histograms merged over the shards (in shard order, so the merge is
/// deterministic), and every shard's load view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTelemetry {
    /// The mode the engine measured in.
    pub mode: TelemetryMode,
    /// Latency of each full `ingest_batch` slot tick (bucketing + every
    /// shard's parallel tick), measured by the engine's own clock.
    pub slot: LatencyHistogram,
    /// Stage histograms merged across shards.
    pub stages: StageHistograms,
    /// Per-shard load, one entry per shard in shard order.
    pub shards: Vec<ShardLoad>,
    /// Rebalancer activity, when the engine runs one.
    pub rebalance: Option<RebalanceSnapshot>,
    /// Sum over slots of the slowest shard tick of the slot, ns (0 while
    /// stage measurements are disabled). The fleet's serial floor: what the
    /// slot latency would be with one thread per shard.
    pub critical_path_ns: u64,
}

impl FleetTelemetry {
    /// Writes the snapshot's histograms and per-shard gauges into `registry`
    /// under the `fleet_*` namespace.
    pub fn fill_registry(&self, registry: &mut Registry) {
        registry.merge_histogram("fleet_slot_tick_ns", &self.slot);
        registry.merge_histogram("fleet_shard_tick_ns", &self.stages.tick);
        registry.merge_histogram("fleet_stage_windowing_ns", &self.stages.windowing);
        registry.merge_histogram("fleet_stage_predict_ns", &self.stages.predict);
        registry.merge_histogram("fleet_stage_allocate_ns", &self.stages.allocate);
        registry.merge_histogram("fleet_stage_bill_ns", &self.stages.bill);
        for shard in &self.shards {
            registry.set_gauge(
                &format!("fleet_shard_{}_load_ewma", shard.shard),
                shard.load_ewma,
            );
            registry.set_gauge(
                &format!("fleet_shard_{}_tick_ewma_ns", shard.shard),
                shard.tick_ewma_ns,
            );
        }
        registry.add_counter("fleet_critical_path_ns_total", self.critical_path_ns);
        if let Some(rebalance) = &self.rebalance {
            registry.add_counter("fleet_rebalance_checks_total", rebalance.checks);
            registry.add_counter("fleet_rebalance_triggers_total", rebalance.triggers);
            registry.add_counter("fleet_rebalance_migrations_total", rebalance.migrations);
            registry.set_gauge("fleet_rebalance_last_ratio", rebalance.last_ratio);
            for (shard, &load) in rebalance.loads_before.iter().enumerate() {
                registry.set_gauge(&format!("fleet_rebalance_shard_{shard}_load_before"), load);
            }
            for (shard, &load) in rebalance.loads_after.iter().enumerate() {
                registry.set_gauge(&format!("fleet_rebalance_shard_{shard}_load_after"), load);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_counts_load_but_records_no_stage() {
        let mut tel = ShardTelemetry::disabled();
        assert!(!tel.enabled());
        let tick = tel.start_stage();
        let stage = tel.start_stage();
        tel.end_predict(stage);
        tel.finish_tick(10, tick);
        assert_eq!(tel.stages().total_samples(), 0, "nothing recorded");
        assert_eq!(tel.ticks(), 1);
        assert_eq!(tel.records(), 10);
        assert_eq!(tel.load_ewma(), 10.0, "first sample seeds the EWMA");
        assert_eq!(tel.tick_ewma_ns(), 0.0);
    }

    #[test]
    fn logical_telemetry_is_a_pure_function_of_the_event_sequence() {
        let run = || {
            let mut tel = ShardTelemetry::new(TelemetryMode::Logical);
            for slot in 0..5 {
                let tick = tel.start_stage();
                for _ in 0..3 {
                    let t = tel.start_stage();
                    tel.end_predict(t);
                    let t = tel.start_stage();
                    tel.end_allocate(t);
                }
                tel.finish_tick(slot * 2, tick);
            }
            tel
        };
        let a = run();
        let b = run();
        assert_eq!(a.stages(), b.stages());
        assert_eq!(a.load_ewma(), b.load_ewma());
        assert_eq!(a.tick_ewma_ns(), b.tick_ewma_ns());
        assert_eq!(a.stages().predict.count(), 15);
        assert_eq!(a.stages().allocate.count(), 15);
        assert_eq!(a.stages().tick.count(), 5);
        // each stage is exactly one logical quantum
        assert_eq!(a.stages().predict.max(), a.stages().predict.min());
    }

    #[test]
    fn load_ewma_follows_the_classic_alpha() {
        let mut tel = ShardTelemetry::disabled();
        let t = tel.start_stage();
        tel.finish_tick(8, t);
        let t = tel.start_stage();
        tel.finish_tick(16, t);
        let expected = 0.125 * 16.0 + 0.875 * 8.0;
        assert!((tel.load_ewma() - expected).abs() < 1e-12);
    }

    #[test]
    fn fill_registry_exposes_histograms_and_per_shard_gauges() {
        let mut tel = ShardTelemetry::new(TelemetryMode::Logical);
        let tick = tel.start_stage();
        let t = tel.start_stage();
        tel.end_windowing(t);
        tel.finish_tick(4, tick);
        let snapshot = FleetTelemetry {
            mode: TelemetryMode::Logical,
            slot: LatencyHistogram::new(),
            stages: tel.stages().clone(),
            shards: vec![tel.load_snapshot(0, 2)],
            rebalance: None,
            critical_path_ns: 0,
        };
        let mut registry = Registry::new();
        snapshot.fill_registry(&mut registry);
        assert_eq!(
            registry
                .histogram("fleet_stage_windowing_ns")
                .unwrap()
                .count(),
            1
        );
        assert_eq!(registry.gauge("fleet_shard_0_load_ewma"), Some(4.0));
        assert!(registry.gauge("fleet_shard_0_tick_ewma_ns").unwrap() > 0.0);
    }

    #[test]
    fn fill_registry_exposes_rebalancer_activity() {
        let snapshot = FleetTelemetry {
            mode: TelemetryMode::Logical,
            slot: LatencyHistogram::new(),
            stages: StageHistograms::default(),
            shards: Vec::new(),
            rebalance: Some(RebalanceSnapshot {
                checks: 10,
                triggers: 3,
                migrations: 2,
                last_ratio: 1.4,
                loads_before: vec![30.0, 10.0],
                loads_after: vec![20.0, 20.0],
                recent: Vec::new(),
            }),
            critical_path_ns: 7_000,
        };
        let mut registry = Registry::new();
        snapshot.fill_registry(&mut registry);
        assert_eq!(registry.counter("fleet_rebalance_checks_total"), Some(10));
        assert_eq!(registry.counter("fleet_rebalance_triggers_total"), Some(3));
        assert_eq!(
            registry.counter("fleet_rebalance_migrations_total"),
            Some(2)
        );
        assert_eq!(registry.gauge("fleet_rebalance_last_ratio"), Some(1.4));
        assert_eq!(
            registry.gauge("fleet_rebalance_shard_0_load_before"),
            Some(30.0)
        );
        assert_eq!(
            registry.gauge("fleet_rebalance_shard_1_load_after"),
            Some(20.0)
        );
        assert_eq!(
            registry.counter("fleet_critical_path_ns_total"),
            Some(7_000)
        );
    }
}
