//! Typed errors for the fleet engine and the streaming ingestion driver.
//!
//! The pre-driver API reported misuse with `assert!`/`expect` panics deep in
//! the engine (the `tick_mix` user-sharded rejection, the `extract_*` replica
//! lookups). The ingestion redesign surfaces every such condition as a
//! [`FleetError`] returned through [`crate::FleetDriver`] and the engine's
//! fallible methods, so a control plane can handle a misconfigured tenant or
//! source without unwinding the whole fleet.

use mca_cloudsim::PlacementError;
use mca_offload::TenantId;
use std::error::Error;
use std::fmt;

/// Errors produced by the fleet engine and the ingestion driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The tenant is not onboarded on this engine.
    UnknownTenant {
        /// The tenant that was named.
        tenant: TenantId,
    },
    /// The tenant is served in user-sharded mode, but a tenant-sharded
    /// operation was requested (e.g. [`crate::FleetEngine::extract_tenant`]
    /// on a tenant whose history lives in one slice per shard).
    UserSharded {
        /// The user-sharded tenant.
        tenant: TenantId,
    },
    /// The tenant is not served in user-sharded mode, but a user-sharded
    /// operation was requested.
    NotUserSharded {
        /// The tenant.
        tenant: TenantId,
    },
    /// A shard does not host the replica of a user-sharded tenant it is
    /// supposed to (an engine invariant violation surfaced instead of
    /// panicking mid-extraction).
    MissingReplica {
        /// The user-sharded tenant.
        tenant: TenantId,
        /// The shard missing its replica.
        shard: usize,
    },
    /// A hosted tenant is not part of the [`mca_workload::TenantMix`] that
    /// was asked to drive the fleet.
    TenantNotInMix {
        /// The hosted tenant the mix does not define.
        tenant: TenantId,
        /// Number of tenants the mix defines (ids `0..mix_tenants`).
        mix_tenants: usize,
    },
    /// An operation named a shard index the fleet does not have (e.g. a
    /// migration target beyond the shard count).
    InvalidShard {
        /// The shard index that was named.
        shard: usize,
        /// Number of shards the fleet has.
        shards: usize,
    },
    /// A record source is already registered for this tenant.
    DuplicateSource {
        /// The tenant with two sources.
        tenant: TenantId,
    },
    /// A source bound to one tenant produced a record naming another.
    ForeignRecord {
        /// The tenant the source is bound to.
        bound: TenantId,
        /// The tenant the offending record named.
        found: TenantId,
    },
    /// A tenant's datacenter could not place its standing allocation (host
    /// exhaustion). The tick path never panics on this — it counts the
    /// failure in the tenant's metrics and keeps running degraded; the
    /// engine's `placement_health` surfaces it as this typed error.
    Placement {
        /// The tenant whose placement failed.
        tenant: TenantId,
        /// The underlying placement failure.
        error: PlacementError,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant} is not onboarded")
            }
            FleetError::UserSharded { tenant } => write!(
                f,
                "tenant {tenant} is user-sharded; its history is one slice per shard \
                 (use extract_user_sharded_tenant)"
            ),
            FleetError::NotUserSharded { tenant } => {
                write!(f, "tenant {tenant} is not user-sharded")
            }
            FleetError::MissingReplica { tenant, shard } => write!(
                f,
                "shard {shard} does not host a replica of user-sharded tenant {tenant}"
            ),
            FleetError::TenantNotInMix {
                tenant,
                mix_tenants,
            } => write!(
                f,
                "hosted tenant {tenant} is not part of the mix ({mix_tenants} mix tenants)"
            ),
            FleetError::InvalidShard { shard, shards } => write!(
                f,
                "shard {shard} does not exist (the fleet has {shards} shards)"
            ),
            FleetError::DuplicateSource { tenant } => {
                write!(
                    f,
                    "a record source is already registered for tenant {tenant}"
                )
            }
            FleetError::ForeignRecord { bound, found } => write!(
                f,
                "source bound to tenant {bound} produced a record for tenant {found}"
            ),
            FleetError::Placement { tenant, error } => {
                write!(f, "tenant {tenant} placement failed: {error}")
            }
        }
    }
}

impl Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_tenant_and_condition() {
        let e = FleetError::UnknownTenant {
            tenant: TenantId(7),
        };
        assert!(e.to_string().contains("not onboarded"));
        let e = FleetError::ForeignRecord {
            bound: TenantId(1),
            found: TenantId(2),
        };
        let text = e.to_string();
        assert!(text.contains("bound"));
        assert!(text.contains('2'));
        assert!(FleetError::TenantNotInMix {
            tenant: TenantId(9),
            mix_tenants: 4
        }
        .to_string()
        .contains("mix"));
        let text = FleetError::InvalidShard {
            shard: 9,
            shards: 4,
        }
        .to_string();
        assert!(text.contains('9') && text.contains('4'));
        let text = FleetError::Placement {
            tenant: TenantId(3),
            error: PlacementError::NoHostFits {
                instance_type: mca_cloudsim::InstanceType::M4_4XLarge,
                hosts: 1,
            },
        }
        .to_string();
        assert!(text.contains("placement failed") && text.contains("m4.4xlarge"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<FleetError>();
    }
}
