//! Per-tenant accounting and fleet-wide rollups.
//!
//! Every [`crate::TenantShard`] accumulates its own [`TenantMetrics`] as its
//! predict→allocate→bill cycle runs; [`FleetMetrics::aggregate`] folds the
//! per-tenant records (in tenant-id order, so the fold is bitwise
//! reproducible across shard layouts and thread counts) into the fleet-wide
//! view an operator dashboard would show.
//!
//! Everything here is **placement-invariant** by design: a tenant's metrics
//! travel with its [`crate::TenantShard`] through a live migration, and no
//! counter records *where* the work ran — so the rollup is bit-identical
//! under any rebalancing schedule (the determinism suite asserts it).
//! Placement-dependent accounting (migrations performed, trigger ratios,
//! per-shard load) lives in [`crate::FleetTelemetry`] instead, which the
//! [`crate::DriveReport`] equality deliberately excludes.

use mca_offload::TenantId;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};

/// Accounting for one tenant: forecast quality, spend and allocation volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TenantMetrics {
    /// The tenant.
    pub tenant: TenantId,
    /// Slots ticked.
    pub slots: usize,
    /// Slots whose incoming forecast was scored against the actual workload
    /// (every slot after the first).
    pub scored_slots: usize,
    /// Sum of per-slot forecast accuracies over the scored slots.
    pub accuracy_sum: f64,
    /// Accumulated cloud spend, USD (hourly allocation cost × slot length).
    pub total_cost: f64,
    /// Successful allocations applied.
    pub allocations: usize,
    /// Allocations that were infeasible under the account cap.
    pub infeasible_allocations: usize,
    /// Sum of allocated instances over slots (instance-slots).
    pub allocated_instance_slots: usize,
    /// Largest observed per-slot user count.
    pub peak_users: usize,
    /// Sum of observed users over slots (user-slots).
    pub total_user_slots: usize,
    /// Allocations served from the per-tenant memo cache (repeat forecast
    /// workload vectors that skipped the solver).
    pub alloc_cache_hits: usize,
    /// Allocations that required a solver run (first sight of a workload
    /// vector, or a re-solve after the vector was evicted).
    pub alloc_cache_misses: usize,
    /// Memoized workload vectors evicted when the cache reached its cap
    /// (FIFO by insertion order; a high rate flags a tenant whose forecast
    /// churn exceeds the cache capacity).
    pub alloc_cache_evictions: usize,
    /// Branch-and-bound nodes the tenant's ILP solves explored (cache-served
    /// allocations replay the original solve and add nothing).
    pub solver_nodes: usize,
    /// Simplex pivots across the tenant's ILP solves.
    pub solver_pivots: usize,
    /// Solver nodes re-entered from a parent basis without running phase 1.
    pub solver_phase1_skips: usize,
    /// Group-slots whose actual arrivals violated the SLA of the standing
    /// allocation (zero under arithmetic billing).
    pub sla_violations: usize,
    /// Users beyond the admission limit of their serving instances.
    pub sla_dropped_users: usize,
    /// Modeled worst-response latency summed over scored group-slots, ms.
    pub sla_latency_ms: f64,
    /// Energy the tenant's standing placements drew, watt-hours.
    pub energy_wh: f64,
    /// Instances placed onto simulated hosts, summed over slots.
    pub placed_instance_slots: usize,
    /// Placement transactions that failed on host exhaustion.
    pub placement_failures: usize,
}

impl TenantMetrics {
    /// Creates empty accounting for `tenant`.
    pub fn new(tenant: TenantId) -> Self {
        Self {
            tenant,
            ..Self::default()
        }
    }

    /// Mean forecast accuracy over the scored slots, when any were scored.
    pub fn mean_accuracy(&self) -> Option<f64> {
        (self.scored_slots > 0).then(|| self.accuracy_sum / self.scored_slots as f64)
    }

    /// Fraction of allocation requests served from the memo cache, when any
    /// allocation ran.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.alloc_cache_hits + self.alloc_cache_misses;
        (total > 0).then(|| self.alloc_cache_hits as f64 / total as f64)
    }

    /// Folds the accounting of another replica of the **same tenant** into
    /// this one — the rollup path for a user-sharded huge tenant, whose
    /// population is split across shards and served by one replica each.
    /// Counters sum; `slots` takes the maximum (replicas tick the same
    /// provisioning clock); `peak_users` sums the per-replica peaks, an
    /// upper bound on the tenant's true peak (replica peaks may fall in
    /// different slots).
    ///
    /// # Panics
    ///
    /// Panics if `other` belongs to a different tenant.
    pub fn absorb(&mut self, other: &TenantMetrics) {
        assert_eq!(
            self.tenant, other.tenant,
            "absorb merges replicas of one tenant"
        );
        self.slots = self.slots.max(other.slots);
        self.scored_slots += other.scored_slots;
        self.accuracy_sum += other.accuracy_sum;
        self.total_cost += other.total_cost;
        self.allocations += other.allocations;
        self.infeasible_allocations += other.infeasible_allocations;
        self.allocated_instance_slots += other.allocated_instance_slots;
        self.peak_users += other.peak_users;
        self.total_user_slots += other.total_user_slots;
        self.alloc_cache_hits += other.alloc_cache_hits;
        self.alloc_cache_misses += other.alloc_cache_misses;
        self.alloc_cache_evictions += other.alloc_cache_evictions;
        self.solver_nodes += other.solver_nodes;
        self.solver_pivots += other.solver_pivots;
        self.solver_phase1_skips += other.solver_phase1_skips;
        self.sla_violations += other.sla_violations;
        self.sla_dropped_users += other.sla_dropped_users;
        self.sla_latency_ms += other.sla_latency_ms;
        self.energy_wh += other.energy_wh;
        self.placed_instance_slots += other.placed_instance_slots;
        self.placement_failures += other.placement_failures;
    }

    /// Mean allocated instances per slot.
    pub fn mean_instances(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.allocated_instance_slots as f64 / self.slots as f64
        }
    }

    /// Mean observed users per slot.
    pub fn mean_users(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.total_user_slots as f64 / self.slots as f64
        }
    }
}

impl Snapshot for TenantMetrics {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tenant.encode(out);
        self.slots.encode(out);
        self.scored_slots.encode(out);
        self.accuracy_sum.encode(out);
        self.total_cost.encode(out);
        self.allocations.encode(out);
        self.infeasible_allocations.encode(out);
        self.allocated_instance_slots.encode(out);
        self.peak_users.encode(out);
        self.total_user_slots.encode(out);
        self.alloc_cache_hits.encode(out);
        self.alloc_cache_misses.encode(out);
        self.alloc_cache_evictions.encode(out);
        self.solver_nodes.encode(out);
        self.solver_pivots.encode(out);
        self.solver_phase1_skips.encode(out);
        self.sla_violations.encode(out);
        self.sla_dropped_users.encode(out);
        self.sla_latency_ms.encode(out);
        self.energy_wh.encode(out);
        self.placed_instance_slots.encode(out);
        self.placement_failures.encode(out);
    }
}

impl Restore for TenantMetrics {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            tenant: TenantId::decode(cur)?,
            slots: usize::decode(cur)?,
            scored_slots: usize::decode(cur)?,
            accuracy_sum: f64::decode(cur)?,
            total_cost: f64::decode(cur)?,
            allocations: usize::decode(cur)?,
            infeasible_allocations: usize::decode(cur)?,
            allocated_instance_slots: usize::decode(cur)?,
            peak_users: usize::decode(cur)?,
            total_user_slots: usize::decode(cur)?,
            alloc_cache_hits: usize::decode(cur)?,
            alloc_cache_misses: usize::decode(cur)?,
            alloc_cache_evictions: usize::decode(cur)?,
            solver_nodes: usize::decode(cur)?,
            solver_pivots: usize::decode(cur)?,
            solver_phase1_skips: usize::decode(cur)?,
            sla_violations: usize::decode(cur)?,
            sla_dropped_users: usize::decode(cur)?,
            sla_latency_ms: f64::decode(cur)?,
            energy_wh: f64::decode(cur)?,
            placed_instance_slots: usize::decode(cur)?,
            placement_failures: usize::decode(cur)?,
        })
    }
}

/// The fleet-wide rollup over every tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Per-tenant accounting, sorted by tenant id.
    pub per_tenant: Vec<TenantMetrics>,
    /// Number of tenants.
    pub tenants: usize,
    /// Slots ticked (the maximum over tenants; tenants added late have
    /// fewer).
    pub slots: usize,
    /// Total cloud spend across tenants, USD.
    pub total_cost: f64,
    /// Total successful allocations across tenants.
    pub total_allocations: usize,
    /// Total infeasible allocations across tenants.
    pub total_infeasible: usize,
    /// Mean of the tenants' mean forecast accuracies (tenants with no scored
    /// slot are excluded).
    pub mean_accuracy: Option<f64>,
    /// Sum of the tenants' peak per-slot user counts — the fleet's
    /// provisioning head-room requirement if every tenant peaked at once.
    pub peak_user_sum: usize,
    /// Total allocation-cache hits across tenants.
    pub total_cache_hits: usize,
    /// Total allocation-cache misses (solver runs) across tenants.
    pub total_cache_misses: usize,
    /// Total allocation-cache evictions across tenants.
    pub total_cache_evictions: usize,
    /// Total branch-and-bound nodes explored across tenants' ILP solves.
    pub total_solver_nodes: usize,
    /// Total simplex pivots across tenants' ILP solves.
    pub total_solver_pivots: usize,
    /// Total phase-1 skips across tenants' ILP solves.
    pub total_solver_phase1_skips: usize,
    /// Total SLA-violated group-slots across tenants (zero under arithmetic
    /// billing).
    pub total_sla_violations: usize,
    /// Total users dropped beyond admission limits across tenants.
    pub total_sla_dropped_users: usize,
    /// Total modeled worst-response latency across tenants, ms (folded in
    /// tenant-id order, so the float sum is bitwise reproducible).
    pub total_sla_latency_ms: f64,
    /// Total energy metered across tenants, watt-hours (tenant-id order).
    pub total_energy_wh: f64,
    /// Total instances placed onto simulated hosts across tenants.
    pub total_placed_instance_slots: usize,
    /// Total failed placement transactions across tenants.
    pub total_placement_failures: usize,
}

impl FleetMetrics {
    /// Folds per-tenant metrics into the fleet rollup. The input is sorted
    /// by tenant id first so every aggregation order produces the same
    /// floating-point sums.
    pub fn aggregate(mut per_tenant: Vec<TenantMetrics>) -> Self {
        per_tenant.sort_by_key(|m| m.tenant);
        let tenants = per_tenant.len();
        let slots = per_tenant.iter().map(|m| m.slots).max().unwrap_or(0);
        let total_cost = per_tenant.iter().map(|m| m.total_cost).sum();
        let total_allocations = per_tenant.iter().map(|m| m.allocations).sum();
        let total_infeasible = per_tenant.iter().map(|m| m.infeasible_allocations).sum();
        let peak_user_sum = per_tenant.iter().map(|m| m.peak_users).sum();
        let total_cache_hits = per_tenant.iter().map(|m| m.alloc_cache_hits).sum();
        let total_cache_misses = per_tenant.iter().map(|m| m.alloc_cache_misses).sum();
        let total_cache_evictions = per_tenant.iter().map(|m| m.alloc_cache_evictions).sum();
        let total_solver_nodes = per_tenant.iter().map(|m| m.solver_nodes).sum();
        let total_solver_pivots = per_tenant.iter().map(|m| m.solver_pivots).sum();
        let total_solver_phase1_skips = per_tenant.iter().map(|m| m.solver_phase1_skips).sum();
        let total_sla_violations = per_tenant.iter().map(|m| m.sla_violations).sum();
        let total_sla_dropped_users = per_tenant.iter().map(|m| m.sla_dropped_users).sum();
        let total_sla_latency_ms = per_tenant.iter().map(|m| m.sla_latency_ms).sum();
        let total_energy_wh = per_tenant.iter().map(|m| m.energy_wh).sum();
        let total_placed_instance_slots = per_tenant.iter().map(|m| m.placed_instance_slots).sum();
        let total_placement_failures = per_tenant.iter().map(|m| m.placement_failures).sum();
        let accuracies: Vec<f64> = per_tenant
            .iter()
            .filter_map(|m| m.mean_accuracy())
            .collect();
        let mean_accuracy = (!accuracies.is_empty())
            .then(|| accuracies.iter().sum::<f64>() / accuracies.len() as f64);
        Self {
            per_tenant,
            tenants,
            slots,
            total_cost,
            total_allocations,
            total_infeasible,
            mean_accuracy,
            peak_user_sum,
            total_cache_hits,
            total_cache_misses,
            total_cache_evictions,
            total_solver_nodes,
            total_solver_pivots,
            total_solver_phase1_skips,
            total_sla_violations,
            total_sla_dropped_users,
            total_sla_latency_ms,
            total_energy_wh,
            total_placed_instance_slots,
            total_placement_failures,
        }
    }

    /// Fraction of allocation requests across the fleet served from the
    /// per-tenant memo caches, when any allocation ran.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.total_cache_hits + self.total_cache_misses;
        (total > 0).then(|| self.total_cache_hits as f64 / total as f64)
    }

    /// The accounting of one tenant, if it is part of the fleet.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantMetrics> {
        self.per_tenant
            .binary_search_by_key(&tenant, |m| m.tenant)
            .ok()
            .map(|at| &self.per_tenant[at])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(tenant: u32, scored: usize, accuracy_sum: f64, cost: f64) -> TenantMetrics {
        TenantMetrics {
            tenant: TenantId(tenant),
            slots: 10,
            scored_slots: scored,
            accuracy_sum,
            total_cost: cost,
            allocations: 10,
            infeasible_allocations: 1,
            allocated_instance_slots: 30,
            peak_users: 8,
            total_user_slots: 50,
            alloc_cache_hits: 7,
            alloc_cache_misses: 3,
            alloc_cache_evictions: 2,
            solver_nodes: 40,
            solver_pivots: 90,
            solver_phase1_skips: 5,
            sla_violations: 4,
            sla_dropped_users: 6,
            sla_latency_ms: 100.0,
            energy_wh: 20.0,
            placed_instance_slots: 25,
            placement_failures: 1,
        }
    }

    #[test]
    fn aggregation_sorts_and_sums() {
        let rollup = FleetMetrics::aggregate(vec![
            metrics(2, 9, 7.2, 1.0),
            metrics(0, 9, 8.1, 2.0),
            metrics(1, 0, 0.0, 0.5),
        ]);
        assert_eq!(rollup.tenants, 3);
        assert_eq!(rollup.slots, 10);
        assert_eq!(rollup.total_allocations, 30);
        assert_eq!(rollup.total_infeasible, 3);
        assert_eq!(rollup.peak_user_sum, 24);
        assert_eq!(rollup.total_cache_hits, 21);
        assert_eq!(rollup.total_cache_misses, 9);
        assert_eq!(rollup.total_cache_evictions, 6);
        assert_eq!(rollup.total_solver_nodes, 120);
        assert_eq!(rollup.total_solver_pivots, 270);
        assert_eq!(rollup.total_solver_phase1_skips, 15);
        assert_eq!(rollup.total_sla_violations, 12);
        assert_eq!(rollup.total_sla_dropped_users, 18);
        assert!((rollup.total_sla_latency_ms - 300.0).abs() < 1e-12);
        assert!((rollup.total_energy_wh - 60.0).abs() < 1e-12);
        assert_eq!(rollup.total_placed_instance_slots, 75);
        assert_eq!(rollup.total_placement_failures, 3);
        assert!((rollup.cache_hit_rate().unwrap() - 0.7).abs() < 1e-12);
        assert!((rollup.total_cost - 3.5).abs() < 1e-12);
        let ids: Vec<u32> = rollup.per_tenant.iter().map(|m| m.tenant.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // tenant 1 never scored a forecast and is excluded from the mean
        let expected = (7.2 / 9.0 + 8.1 / 9.0) / 2.0;
        assert!((rollup.mean_accuracy.unwrap() - expected).abs() < 1e-12);
        assert_eq!(rollup.tenant(TenantId(2)).unwrap().tenant, TenantId(2));
        assert!(rollup.tenant(TenantId(9)).is_none());
    }

    #[test]
    fn per_tenant_means() {
        let m = metrics(0, 4, 3.0, 0.0);
        assert!((m.mean_accuracy().unwrap() - 0.75).abs() < 1e-12);
        assert!((m.mean_instances() - 3.0).abs() < 1e-12);
        assert!((m.mean_users() - 5.0).abs() < 1e-12);
        assert!((m.cache_hit_rate().unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(TenantMetrics::new(TenantId(1)).mean_accuracy(), None);
        assert_eq!(TenantMetrics::new(TenantId(1)).mean_instances(), 0.0);
        assert_eq!(TenantMetrics::new(TenantId(1)).cache_hit_rate(), None);
    }

    #[test]
    fn absorb_merges_replicas_of_one_tenant() {
        let mut a = metrics(3, 9, 7.2, 1.0);
        let b = metrics(3, 4, 2.0, 0.5);
        a.absorb(&b);
        assert_eq!(a.tenant, TenantId(3));
        assert_eq!(a.slots, 10, "same clock: max, not sum");
        assert_eq!(a.scored_slots, 13);
        assert!((a.accuracy_sum - 9.2).abs() < 1e-12);
        assert!((a.total_cost - 1.5).abs() < 1e-12);
        assert_eq!(a.allocations, 20);
        assert_eq!(a.infeasible_allocations, 2);
        assert_eq!(a.allocated_instance_slots, 60);
        assert_eq!(a.peak_users, 16, "slice peaks sum (upper bound)");
        assert_eq!(a.total_user_slots, 100);
        assert_eq!(a.alloc_cache_hits, 14);
        assert_eq!(a.alloc_cache_misses, 6);
        assert_eq!(a.alloc_cache_evictions, 4);
        assert_eq!(a.solver_nodes, 80);
        assert_eq!(a.solver_pivots, 180);
        assert_eq!(a.solver_phase1_skips, 10);
        assert_eq!(a.sla_violations, 8);
        assert_eq!(a.sla_dropped_users, 12);
        assert!((a.sla_latency_ms - 200.0).abs() < 1e-12);
        assert!((a.energy_wh - 40.0).abs() < 1e-12);
        assert_eq!(a.placed_instance_slots, 50);
        assert_eq!(a.placement_failures, 2);
    }

    #[test]
    #[should_panic(expected = "absorb merges replicas of one tenant")]
    fn absorb_rejects_a_different_tenant() {
        let mut a = metrics(1, 0, 0.0, 0.0);
        a.absorb(&metrics(2, 0, 0.0, 0.0));
    }

    #[test]
    fn empty_fleet_aggregates_to_zero() {
        let rollup = FleetMetrics::aggregate(Vec::new());
        assert_eq!(rollup.tenants, 0);
        assert_eq!(rollup.slots, 0);
        assert_eq!(rollup.mean_accuracy, None);
    }
}
