//! The streaming ingestion driver: one front-end for every workload shape.
//!
//! [`FleetDriver`] owns a [`FleetEngine`] and a set of [`RecordSource`]s.
//! Each [`FleetDriver::step`] pulls one [`SourceBatch`] per live source (in
//! registration order), concatenates the records into the slot's batch and
//! runs the engine's predict→allocate→bill tick — exactly the batch the
//! caller would have hand-built for `tick_slot`, so driver-fed runs are bit-
//! identical to batch-fed ones. Sources that raise their end-of-stream
//! marker stop being polled; misuse (a source for an unknown tenant, two
//! sources for one tenant, a bound source producing another tenant's
//! records) surfaces as a typed [`FleetError`] instead of a panic.

use crate::engine::FleetEngine;
use crate::error::FleetError;
use crate::ingest::SlotRecord;
use crate::metrics::FleetMetrics;
use crate::source::{RecordSource, TenantMixSource};
use crate::telemetry::FleetTelemetry;
use mca_core::{SystemConfig, WorkloadForecast};
use mca_offload::TenantId;
use mca_snapshot::{
    Cursor, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotStats, SnapshotWriter,
};
use mca_workload::TenantMix;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{Read, Write};
use std::rc::Rc;

/// The driver's own checkpoint section, appended after the engine sections.
pub(crate) const SECTION_DRIVER: u16 = 0x0006;

/// One registered source and its driving state.
struct DriverSource {
    /// The tenant the source is bound to (`None` for a shared, multi-tenant
    /// source such as a replay batch list).
    tenant: Option<TenantId>,
    source: Box<dyn RecordSource>,
    exhausted: bool,
}

/// What a drive accomplished: the rollup an operator dashboard would show
/// for the session, plus the ingestion accounting the old batch API had no
/// home for.
///
/// Equality compares the *semantic* outcome — forecasts, metrics and the
/// ingestion accounting — and deliberately ignores the [`FleetTelemetry`]
/// section: under the default monotonic clock two identical runs measure
/// different wall times, and the determinism suite compares reports across
/// telemetry modes.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Slots this driver ticked.
    pub slots: usize,
    /// Every tenant's standing forecast for the next slot, sorted by tenant
    /// id (user-sharded tenants appear once, combined).
    pub forecasts: Vec<(TenantId, Option<WorkloadForecast>)>,
    /// The fleet-wide metrics rollup.
    pub metrics: FleetMetrics,
    /// Records ingested through the driver's sources.
    pub records: usize,
    /// Records sources dropped because they arrived after their slot was
    /// ticked (late events on windower-backed live streams).
    pub late_records: usize,
    /// The late records broken down by tenant (bound sources attribute to
    /// their tenant; shared stream sources attribute by each dropped
    /// record's tag).
    pub late_by_tenant: BTreeMap<TenantId, usize>,
    /// Records the engine dropped because they named an unknown tenant
    /// (engine-lifetime counter; includes pre-driver ticks on the same
    /// engine).
    pub dropped_records: usize,
    /// The dropped records broken down by the unknown tenant they named
    /// (engine-lifetime, like [`DriveReport::dropped_records`]).
    pub dropped_by_tenant: BTreeMap<TenantId, usize>,
    /// Sources that have raised their end-of-stream marker.
    pub exhausted_sources: usize,
    /// Sources registered in total.
    pub total_sources: usize,
    /// The engine's telemetry snapshot: per-slot tick latency, per-stage
    /// histograms and per-shard load. Ignored by `==`.
    pub telemetry: FleetTelemetry,
}

impl PartialEq for DriveReport {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots
            && self.forecasts == other.forecasts
            && self.metrics == other.metrics
            && self.records == other.records
            && self.late_records == other.late_records
            && self.late_by_tenant == other.late_by_tenant
            && self.dropped_records == other.dropped_records
            && self.dropped_by_tenant == other.dropped_by_tenant
            && self.exhausted_sources == other.exhausted_sources
            && self.total_sources == other.total_sources
    }
}

/// A driving session over a [`FleetEngine`]: multiplexes [`RecordSource`]s
/// and advances the provisioning clock slot by slot.
///
/// ```
/// use mca_core::SystemConfig;
/// use mca_fleet::{FleetDriver, FleetEngine};
/// use mca_workload::TenantMix;
///
/// let config = SystemConfig::paper_three_groups().with_history_window(32);
/// let mix = TenantMix::heterogeneous(6, 12, config.groups.ids(), 7);
/// let mut engine = FleetEngine::new(config, 3, 7);
/// engine.add_tenants(mix.tenant_ids());
///
/// let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();
/// let report = driver.run(10).unwrap();
/// assert_eq!(report.slots, 10);
/// assert_eq!(report.metrics.tenants, 6);
/// assert!(report.records > 0);
/// ```
pub struct FleetDriver {
    engine: FleetEngine,
    sources: Vec<DriverSource>,
    /// Tenants with a bound source (duplicate registration guard).
    bound: BTreeSet<TenantId>,
    slots_driven: usize,
    records_ingested: usize,
    late_records: usize,
    late_by_tenant: BTreeMap<TenantId, usize>,
}

impl FleetDriver {
    /// Wraps an engine (empty source set; `step` ticks empty slots until
    /// sources are registered).
    pub fn new(engine: FleetEngine) -> Self {
        Self {
            engine,
            sources: Vec::new(),
            bound: BTreeSet::new(),
            slots_driven: 0,
            records_ingested: 0,
            late_records: 0,
            late_by_tenant: BTreeMap::new(),
        }
    }

    /// Read access to the driven engine.
    pub fn engine(&self) -> &FleetEngine {
        &self.engine
    }

    /// Mutable access to the engine for mid-drive control-plane operations —
    /// explicit migration schedules ([`FleetEngine::migrate_tenant`]),
    /// on-demand rebalance checks ([`FleetEngine::rebalance_now`]). The
    /// driver's own accounting is untouched; ticking the engine directly
    /// from here would desynchronize the two, so stick to control-plane
    /// calls.
    pub fn engine_mut(&mut self) -> &mut FleetEngine {
        &mut self.engine
    }

    /// Hands the engine back (e.g. to extract tenants after a drive).
    pub fn into_engine(self) -> FleetEngine {
        self.engine
    }

    /// Registers a source bound to `tenant`: every record it produces must
    /// name that tenant ([`FleetError::ForeignRecord`] otherwise, checked at
    /// each step).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownTenant`] when the tenant is not onboarded,
    /// [`FleetError::DuplicateSource`] when the tenant already has a source.
    pub fn add_source(
        &mut self,
        tenant: TenantId,
        source: impl RecordSource + 'static,
    ) -> Result<(), FleetError> {
        if self.engine.tenant(tenant).is_none() {
            return Err(FleetError::UnknownTenant { tenant });
        }
        if !self.bound.insert(tenant) {
            return Err(FleetError::DuplicateSource { tenant });
        }
        self.sources.push(DriverSource {
            tenant: Some(tenant),
            source: Box::new(source),
            exhausted: false,
        });
        Ok(())
    }

    /// Builder form of [`FleetDriver::add_source`].
    pub fn with_source(
        mut self,
        tenant: TenantId,
        source: impl RecordSource + 'static,
    ) -> Result<Self, FleetError> {
        self.add_source(tenant, source)?;
        Ok(self)
    }

    /// Registers a shared (multi-tenant) source — e.g. a replayable batch
    /// list or a live record stream whose records span tenants. Records
    /// naming unknown tenants are dropped and counted by the engine.
    pub fn add_shared_source(&mut self, source: impl RecordSource + 'static) {
        self.sources.push(DriverSource {
            tenant: None,
            source: Box::new(source),
            exhausted: false,
        });
    }

    /// Builder form of [`FleetDriver::add_shared_source`].
    pub fn with_shared_source(mut self, source: impl RecordSource + 'static) -> Self {
        self.add_shared_source(source);
        self
    }

    /// Registers a [`TenantMixSource`] for every onboarded tenant — the
    /// driver equivalent of the deprecated `tick_mix`, including for
    /// user-sharded tenants (whose generated records route per user like any
    /// other batch, the configuration `tick_mix` had to reject). The mix is
    /// shared across the per-tenant sources (one allocation), and every
    /// tenant is validated against the mix **before** any source is
    /// registered, so a failed call leaves the driver unchanged.
    ///
    /// # Errors
    ///
    /// [`FleetError::TenantNotInMix`] when a hosted tenant is missing from
    /// the mix, plus the [`FleetDriver::add_source`] errors.
    pub fn add_mix(&mut self, mix: &TenantMix) -> Result<(), FleetError> {
        let shared = Rc::new(mix.clone());
        let tenants = self.engine.tenant_ids();
        let sources: Vec<TenantMixSource> = tenants
            .iter()
            .map(|&tenant| {
                if self.bound.contains(&tenant) {
                    return Err(FleetError::DuplicateSource { tenant });
                }
                TenantMixSource::from_shared(Rc::clone(&shared), tenant)
            })
            .collect::<Result<_, _>>()?;
        for (tenant, source) in tenants.into_iter().zip(sources) {
            self.add_source(tenant, source)?;
        }
        Ok(())
    }

    /// Builder form of [`FleetDriver::add_mix`]. Prefer [`FleetDriver::add_mix`]
    /// when the engine must survive a configuration error — the builder form
    /// consumes (and on error drops) the driver and its engine.
    pub fn with_mix(mut self, mix: &TenantMix) -> Result<Self, FleetError> {
        self.add_mix(mix)?;
        Ok(self)
    }

    /// Number of registered sources.
    pub fn sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of sources that have not yet raised end-of-stream.
    pub fn live_sources(&self) -> usize {
        self.sources.iter().filter(|s| !s.exhausted).count()
    }

    /// Drives one provisioning slot: polls every live source for the slot's
    /// records, ticks the engine on the concatenated batch, and returns
    /// whether any source is still live.
    ///
    /// The slot always ticks, even on error: a bound source producing
    /// another tenant's records is **quarantined** — its whole batch is
    /// discarded, it stops being polled — and the remaining sources' records
    /// still drive the slot. Every source is therefore polled exactly once
    /// per slot and stays in lockstep with the provisioning clock (stateful
    /// sources never desynchronize on the error path).
    ///
    /// # Errors
    ///
    /// [`FleetError::ForeignRecord`] (after the slot ticked) naming the
    /// first quarantined source's tenants.
    pub fn step(&mut self) -> Result<bool, FleetError> {
        let slot = self.engine.slot_index();
        let mut batch: Vec<SlotRecord> = Vec::new();
        let mut records = 0usize;
        let mut late = 0usize;
        let mut late_by_tenant: BTreeMap<TenantId, usize> = BTreeMap::new();
        let mut first_error: Option<FleetError> = None;
        for entry in &mut self.sources {
            if entry.exhausted {
                continue;
            }
            let produced = entry.source.next_slot(slot);
            late += produced.late;
            match entry.tenant {
                // a bound source's events are all its tenant's, so even late
                // events a source does not break down are attributable
                Some(bound) if produced.late > 0 => {
                    *late_by_tenant.entry(bound).or_insert(0) += produced.late;
                }
                None => {
                    for (&tenant, &count) in &produced.late_by_tenant {
                        *late_by_tenant.entry(tenant).or_insert(0) += count;
                    }
                }
                _ => {}
            }
            if let Some(bound) = entry.tenant {
                if let Some(foreign) = produced.records.iter().find(|r| r.tenant != bound) {
                    entry.exhausted = true;
                    first_error.get_or_insert(FleetError::ForeignRecord {
                        bound,
                        found: foreign.tenant,
                    });
                    continue;
                }
            }
            records += produced.records.len();
            if produced.exhausted {
                entry.exhausted = true;
            }
            if batch.is_empty() {
                // the common single-source slot moves its batch, no copy
                batch = produced.records;
            } else {
                batch.extend(produced.records);
            }
        }
        self.engine.ingest_batch(&batch);
        self.records_ingested += records;
        self.late_records += late;
        for (tenant, count) in late_by_tenant {
            *self.late_by_tenant.entry(tenant).or_insert(0) += count;
        }
        self.slots_driven += 1;
        match first_error {
            Some(error) => Err(error),
            None => Ok(self.sources.iter().any(|s| !s.exhausted)),
        }
    }

    /// Drives exactly `n_slots` slots and reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FleetDriver::step`] error.
    pub fn run(&mut self, n_slots: usize) -> Result<DriveReport, FleetError> {
        for _ in 0..n_slots {
            self.step()?;
        }
        Ok(self.report())
    }

    /// Drives until every source has raised end-of-stream, bounded by
    /// `max_slots` (unbounded sources — mixes, open streams — never
    /// exhaust, so the cap keeps the session finite). Reports either way.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FleetDriver::step`] error.
    pub fn run_until_exhausted(&mut self, max_slots: usize) -> Result<DriveReport, FleetError> {
        for _ in 0..max_slots {
            if self.live_sources() == 0 {
                break;
            }
            self.step()?;
        }
        Ok(self.report())
    }

    /// Writes a durable checkpoint of the whole driving session: every
    /// engine section ([`FleetEngine::checkpoint`]) plus a driver section
    /// carrying the ingestion accounting and one resume cursor per
    /// registered source (replay anchors, RNG stream words, buffered
    /// windower slots, exhaustion flags), in registration order.
    ///
    /// Like the engine's, the checkpoint is taken **between slots** — after
    /// a [`FleetDriver::step`] returns. A driver restored from these bytes
    /// with the same configuration and equivalent sources continues the
    /// session bit for bit.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError::Io`] from the sink.
    pub fn checkpoint(&mut self, out: &mut impl Write) -> Result<SnapshotStats, SnapshotError> {
        let mut writer = SnapshotWriter::new(out)?;
        self.engine.write_sections(&mut writer)?;
        let mut body = Vec::new();
        self.slots_driven.encode(&mut body);
        self.records_ingested.encode(&mut body);
        self.late_records.encode(&mut body);
        self.late_by_tenant.encode(&mut body);
        self.sources.len().encode(&mut body);
        let mut cursor = Vec::new();
        for entry in &self.sources {
            entry.tenant.encode(&mut body);
            entry.exhausted.encode(&mut body);
            cursor.clear();
            entry.source.save_cursor(&mut cursor);
            cursor.encode(&mut body);
        }
        writer.section(SECTION_DRIVER, &body)?;
        let stats = writer.finish()?;
        self.engine.note_checkpoint(&stats);
        Ok(stats)
    }

    /// Rebuilds a driving session from [`FleetDriver::checkpoint`] bytes.
    ///
    /// The caller supplies the shared configuration (as for
    /// [`FleetEngine::restore`]) and one **freshly constructed** source per
    /// checkpointed source, in registration order, each paired with the
    /// tenant it was bound to (`None` for shared sources). Sources are
    /// rebuilt from the same underlying data the originals were — the same
    /// trace, mix or channel — and this function loads each one's resume
    /// cursor so the stream continues exactly where the checkpoint left it.
    ///
    /// # Errors
    ///
    /// Every [`FleetEngine::restore`] error, plus [`SnapshotError::Malformed`]
    /// when the supplied sources disagree with the checkpoint: wrong count,
    /// a different tenant binding, a cursor the source rejects, a bound
    /// tenant the engine does not host, or two sources bound to one tenant.
    pub fn restore(
        source: &mut impl Read,
        config: &SystemConfig,
        sources: Vec<(Option<TenantId>, Box<dyn RecordSource>)>,
    ) -> Result<Self, SnapshotError> {
        let mut reader = SnapshotReader::new(source)?;
        let mut engine = FleetEngine::read_sections(&mut reader, config)?;
        let body = reader.section(SECTION_DRIVER)?;
        let mut cur = Cursor::new(&body);
        let slots_driven = usize::decode(&mut cur)?;
        let records_ingested = usize::decode(&mut cur)?;
        let late_records = usize::decode(&mut cur)?;
        let late_by_tenant = BTreeMap::<TenantId, usize>::decode(&mut cur)?;
        let source_count = usize::decode(&mut cur)?;
        if source_count != sources.len() {
            return Err(SnapshotError::Malformed {
                context: "restore sources out of step with the checkpoint",
            });
        }
        let mut bound = BTreeSet::new();
        let mut restored: Vec<DriverSource> = Vec::with_capacity(source_count.min(4096));
        for (tenant, mut src) in sources {
            let checkpointed = Option::<TenantId>::decode(&mut cur)?;
            if checkpointed != tenant {
                return Err(SnapshotError::Malformed {
                    context: "restore source bound to a different tenant than the checkpoint",
                });
            }
            let exhausted = bool::decode(&mut cur)?;
            let cursor_bytes = Vec::<u8>::decode(&mut cur)?;
            let mut source_cur = Cursor::new(&cursor_bytes);
            src.load_cursor(&mut source_cur)?;
            if !source_cur.is_empty() {
                return Err(SnapshotError::Malformed {
                    context: "trailing bytes in a source cursor",
                });
            }
            if let Some(tenant) = tenant {
                if engine.tenant(tenant).is_none() {
                    return Err(SnapshotError::Malformed {
                        context: "restore source bound to a tenant the engine does not host",
                    });
                }
                if !bound.insert(tenant) {
                    return Err(SnapshotError::Malformed {
                        context: "two restore sources bound to one tenant",
                    });
                }
            }
            restored.push(DriverSource {
                tenant,
                source: src,
                exhausted,
            });
        }
        if !cur.is_empty() {
            return Err(SnapshotError::Malformed {
                context: "trailing bytes in the driver section",
            });
        }
        let stats = reader.finish()?;
        engine.note_restore(&stats);
        Ok(Self {
            engine,
            sources: restored,
            bound,
            slots_driven,
            records_ingested,
            late_records,
            late_by_tenant,
        })
    }

    /// The session report as of now (forecasts, rollup, ingestion
    /// accounting).
    pub fn report(&self) -> DriveReport {
        DriveReport {
            slots: self.slots_driven,
            forecasts: self.engine.forecasts(),
            metrics: self.engine.metrics(),
            records: self.records_ingested,
            late_records: self.late_records,
            late_by_tenant: self.late_by_tenant.clone(),
            dropped_records: self.engine.dropped_records(),
            dropped_by_tenant: self.engine.dropped_by_tenant().clone(),
            exhausted_sources: self.sources.iter().filter(|s| s.exhausted).count(),
            total_sources: self.sources.len(),
            telemetry: self.engine.telemetry(),
        }
    }
}

impl fmt::Debug for FleetDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetDriver")
            .field("tenants", &self.engine.tenants())
            .field("sources", &self.sources.len())
            .field("live_sources", &self.live_sources())
            .field("slots_driven", &self.slots_driven)
            .field("records_ingested", &self.records_ingested)
            .finish()
    }
}
