//! Shard routing: which shard owns which tenant (or user).
//!
//! Routing must be a pure function of the router's state — any front-end
//! instance, any ingest thread and any replay must agree on the owning shard
//! without coordination. Ids are mixed through SplitMix64 before the modulo
//! so that sequentially assigned tenant ids (0, 1, 2, …) spread over shards
//! instead of landing on consecutive ones.
//!
//! The hash fixes each tenant's **home** shard, but placement is allowed to
//! diverge from it: the router carries an indirection table of per-tenant
//! overrides ([`ShardRouter::place`]) so the rebalancer can move a hot
//! tenant off its home shard without breaking record routing — every lookup
//! goes through [`ShardRouter::shard_of_tenant`], which consults the
//! overrides first. An empty table keeps the lookup on the pure-hash fast
//! path, and placing a tenant back on its home shard removes its entry, so
//! a fleet that never rebalances pays nothing. User-hash routing
//! ([`ShardRouter::shard_of_user`]) is deliberately *not* overridable: a
//! user-sharded tenant has one replica per shard and its records route by
//! user, so there is no single placement to move.

use mca_offload::{TenantId, UserId};
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes tenant and user ids onto a fixed number of shards, with an
/// indirection table for tenants whose placement has diverged from the
/// hash.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    shards: usize,
    /// Per-tenant placement overrides; tenants absent from the table live on
    /// their hash home shard.
    overrides: BTreeMap<TenantId, usize>,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        Self {
            shards,
            overrides: BTreeMap::new(),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The tenant's **home** shard: the pure hash placement, independent of
    /// any override.
    pub fn home_shard_of_tenant(&self, tenant: TenantId) -> usize {
        (splitmix64(u64::from(tenant.0)) % self.shards as u64) as usize
    }

    /// The shard owning `tenant`: the override when one stands, the hash
    /// home otherwise.
    pub fn shard_of_tenant(&self, tenant: TenantId) -> usize {
        if self.overrides.is_empty() {
            return self.home_shard_of_tenant(tenant);
        }
        match self.overrides.get(&tenant) {
            Some(&shard) => shard,
            None => self.home_shard_of_tenant(tenant),
        }
    }

    /// Places `tenant` on `shard`, overriding the hash. Placing a tenant
    /// back on its home shard removes the override, so the table only holds
    /// genuine divergences.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn place(&mut self, tenant: TenantId, shard: usize) {
        assert!(
            shard < self.shards,
            "shard {shard} is out of range for {} shards",
            self.shards
        );
        if shard == self.home_shard_of_tenant(tenant) {
            self.overrides.remove(&tenant);
        } else {
            self.overrides.insert(tenant, shard);
        }
    }

    /// Whether `tenant` currently lives away from its hash home.
    pub fn is_displaced(&self, tenant: TenantId) -> bool {
        self.overrides.contains_key(&tenant)
    }

    /// Number of tenants placed away from their hash home.
    pub fn displaced_tenants(&self) -> usize {
        self.overrides.len()
    }

    /// The shard a bare user id hashes to — the per-user sharding mode for
    /// scaling a *single* huge tenant, where each shard predicts over its
    /// own slice of the user population. Never overridden: user-sharded
    /// tenants keep one replica per shard.
    pub fn shard_of_user(&self, user: UserId) -> usize {
        (splitmix64(u64::from(user.0) ^ 0xA076_1D64_78BD_642F) % self.shards as u64) as usize
    }
}

impl Snapshot for ShardRouter {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shards.encode(out);
        self.overrides.encode(out);
    }
}

impl Restore for ShardRouter {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let shards = usize::decode(cur)?;
        if shards == 0 {
            return Err(SnapshotError::Malformed {
                context: "router over zero shards",
            });
        }
        let overrides = BTreeMap::<TenantId, usize>::decode(cur)?;
        if overrides.values().any(|&shard| shard >= shards) {
            return Err(SnapshotError::Malformed {
                context: "router override onto a missing shard",
            });
        }
        Ok(Self { shards, overrides })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let router = ShardRouter::new(7);
        for t in 0..200u32 {
            let shard = router.shard_of_tenant(TenantId(t));
            assert!(shard < 7);
            assert_eq!(shard, router.shard_of_tenant(TenantId(t)), "stable");
            assert_eq!(shard, router.home_shard_of_tenant(TenantId(t)));
        }
        for u in 0..200u32 {
            assert!(router.shard_of_user(UserId(u)) < 7);
        }
    }

    #[test]
    fn sequential_tenants_spread_over_shards() {
        let router = ShardRouter::new(8);
        let mut counts = [0usize; 8];
        for t in 0..64u32 {
            counts[router.shard_of_tenant(TenantId(t))] += 1;
        }
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        assert!(occupied >= 6, "64 tenants should occupy most of 8 shards");
        assert!(counts.iter().all(|&c| c <= 16), "no pathological pile-up");
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        assert_eq!(router.shard_of_tenant(TenantId(42)), 0);
        assert_eq!(router.shard_of_user(UserId(42)), 0);
    }

    #[test]
    fn overrides_divert_one_tenant_and_leave_the_rest_on_their_home() {
        let mut router = ShardRouter::new(5);
        let tenant = TenantId(3);
        let home = router.home_shard_of_tenant(tenant);
        let away = (home + 1) % 5;
        router.place(tenant, away);
        assert_eq!(router.shard_of_tenant(tenant), away);
        assert!(router.is_displaced(tenant));
        assert_eq!(router.displaced_tenants(), 1);
        assert_eq!(router.home_shard_of_tenant(tenant), home, "home unchanged");
        for t in 0..50u32 {
            if TenantId(t) != tenant {
                assert_eq!(
                    router.shard_of_tenant(TenantId(t)),
                    router.home_shard_of_tenant(TenantId(t)),
                    "tenant {t} must stay on its home shard"
                );
            }
        }
    }

    #[test]
    fn placing_a_tenant_back_home_clears_its_override() {
        let mut router = ShardRouter::new(4);
        let tenant = TenantId(9);
        let home = router.home_shard_of_tenant(tenant);
        router.place(tenant, (home + 2) % 4);
        assert!(router.is_displaced(tenant));
        router.place(tenant, home);
        assert!(!router.is_displaced(tenant));
        assert_eq!(router.displaced_tenants(), 0);
        assert_eq!(router.shard_of_tenant(tenant), home);
    }

    #[test]
    fn user_routing_ignores_tenant_overrides() {
        let mut router = ShardRouter::new(6);
        let before: Vec<usize> = (0..100u32)
            .map(|u| router.shard_of_user(UserId(u)))
            .collect();
        router.place(TenantId(1), 0);
        router.place(TenantId(2), 5);
        let after: Vec<usize> = (0..100u32)
            .map(|u| router.shard_of_user(UserId(u)))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn placing_on_a_missing_shard_panics() {
        let mut router = ShardRouter::new(2);
        router.place(TenantId(1), 2);
    }
}
