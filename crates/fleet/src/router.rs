//! Shard routing: which shard owns which tenant (or user).
//!
//! Routing must be a pure function of the id — any front-end instance, any
//! ingest thread and any replay must agree on the owning shard without
//! coordination. Ids are mixed through SplitMix64 before the modulo so that
//! sequentially assigned tenant ids (0, 1, 2, …) spread over shards instead
//! of landing on consecutive ones.

use mca_offload::{TenantId, UserId};
use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes tenant and user ids onto a fixed number of shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        Self { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `tenant`.
    pub fn shard_of_tenant(&self, tenant: TenantId) -> usize {
        (splitmix64(u64::from(tenant.0)) % self.shards as u64) as usize
    }

    /// The shard a bare user id hashes to — the per-user sharding mode for
    /// scaling a *single* huge tenant, where each shard predicts over its
    /// own slice of the user population.
    pub fn shard_of_user(&self, user: UserId) -> usize {
        (splitmix64(u64::from(user.0) ^ 0xA076_1D64_78BD_642F) % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let router = ShardRouter::new(7);
        for t in 0..200u32 {
            let shard = router.shard_of_tenant(TenantId(t));
            assert!(shard < 7);
            assert_eq!(shard, router.shard_of_tenant(TenantId(t)), "stable");
        }
        for u in 0..200u32 {
            assert!(router.shard_of_user(UserId(u)) < 7);
        }
    }

    #[test]
    fn sequential_tenants_spread_over_shards() {
        let router = ShardRouter::new(8);
        let mut counts = [0usize; 8];
        for t in 0..64u32 {
            counts[router.shard_of_tenant(TenantId(t))] += 1;
        }
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        assert!(occupied >= 6, "64 tenants should occupy most of 8 shards");
        assert!(counts.iter().all(|&c| c <= 16), "no pathological pile-up");
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let router = ShardRouter::new(1);
        assert_eq!(router.shard_of_tenant(TenantId(42)), 0);
        assert_eq!(router.shard_of_user(UserId(42)), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
