//! The sharded fleet engine: many tenants, one provisioning clock.
//!
//! [`FleetEngine`] owns `N` shards, each holding the [`TenantShard`]s the
//! [`ShardRouter`] hashes onto it. Every provisioning slot the engine
//! ingests one batch of arrival records, buckets it by shard, and runs every
//! shard's predict→allocate→bill cycle **in parallel** over a rayon thread
//! pool. Three properties make the parallel tick safe and reproducible:
//!
//! * shards share no state — each tenant's knowledge base, allocator, pool
//!   and RNG stream live in exactly one shard,
//! * per-tenant RNG streams are seeded from `(fleet seed, tenant id)` alone,
//!   so thread scheduling cannot perturb any tenant's draws, and
//! * the nearest-neighbour tie-break (first minimum in chronological order)
//!   is deterministic inside each predictor, so per-tenant forecasts are
//!   bit-identical to running that tenant alone, whatever the shard layout
//!   or thread count.

use crate::ingest::{bucket_by_shard, SlotRecord};
use crate::metrics::FleetMetrics;
use crate::router::ShardRouter;
use crate::shard::TenantShard;
use mca_core::{SlotHistory, SystemConfig, TimeSlotBuilder, WorkloadForecast};
use mca_offload::TenantId;
use mca_workload::TenantMix;
use rayon::prelude::*;

/// One worker partition: the tenants a shard index owns, plus the staging
/// buffer the engine fills before a parallel tick.
#[derive(Debug)]
struct Shard {
    /// The shard's tenants, sorted by tenant id.
    tenants: Vec<TenantShard>,
    /// Records staged for the next tick.
    inbox: Vec<SlotRecord>,
}

impl Shard {
    /// Consumes the inbox: builds each tenant's slot with one sort + dedup
    /// pass and runs the tenant's provisioning tick. Returns the number of
    /// records that named a tenant this shard does not host.
    fn tick_inbox(&mut self, slot_index: usize, now_ms: f64) -> usize {
        let mut builders: Vec<TimeSlotBuilder> = self
            .tenants
            .iter()
            .map(|_| TimeSlotBuilder::new(slot_index))
            .collect();
        let mut unknown = 0usize;
        for record in self.inbox.drain(..) {
            match self
                .tenants
                .binary_search_by_key(&record.tenant, TenantShard::id)
            {
                Ok(at) => builders[at].assign(record.group, record.user),
                Err(_) => unknown += 1,
            }
        }
        for (tenant, builder) in self.tenants.iter_mut().zip(builders) {
            tenant.tick(builder.build(), now_ms);
        }
        unknown
    }

    /// Generates each tenant's slot from the mix — drawing churn from the
    /// tenant's own RNG stream — and runs the provisioning tick.
    fn tick_mix(&mut self, mix: &TenantMix, slot_index: usize, now_ms: f64) {
        for tenant in &mut self.tenants {
            let id = tenant.id();
            let records = mix.slot_records(id, slot_index, tenant.rng_mut());
            let mut builder = TimeSlotBuilder::with_capacity(slot_index, records.len());
            builder.extend(records);
            tenant.tick(builder.build(), now_ms);
        }
    }
}

/// The multi-tenant sharded prediction/allocation engine.
#[derive(Debug)]
pub struct FleetEngine {
    config: SystemConfig,
    seed: u64,
    router: ShardRouter,
    shards: Vec<Shard>,
    pool: rayon::ThreadPool,
    threads: usize,
    slot_index: usize,
    dropped_records: usize,
}

impl FleetEngine {
    /// Creates an engine with `shards` empty shards over the shared system
    /// configuration. The thread pool defaults to the machine's available
    /// parallelism; see [`FleetEngine::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: SystemConfig, shards: usize, seed: u64) -> Self {
        let router = ShardRouter::new(shards);
        let shards = (0..shards)
            .map(|_| Shard {
                tenants: Vec::new(),
                inbox: Vec::new(),
            })
            .collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .build()
            .expect("thread pool construction cannot fail");
        let threads = pool.current_num_threads();
        Self {
            config,
            seed,
            router,
            shards,
            pool,
            threads,
            slot_index: 0,
            dropped_records: 0,
        }
    }

    /// Overrides the tick's thread count (1 = fully sequential). Forecasts
    /// and metrics are independent of this setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        self.threads = self.pool.current_num_threads();
        self
    }

    /// The shared system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tick's thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of onboarded tenants.
    pub fn tenants(&self) -> usize {
        self.shards.iter().map(|s| s.tenants.len()).sum()
    }

    /// Index of the next slot to tick.
    pub fn slot_index(&self) -> usize {
        self.slot_index
    }

    /// Records dropped so far because they named an unknown tenant.
    pub fn dropped_records(&self) -> usize {
        self.dropped_records
    }

    /// The shard index hosting `tenant`.
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        self.router.shard_of_tenant(tenant)
    }

    /// Onboards a tenant: a fresh [`TenantShard`] is placed on the shard the
    /// router assigns. Onboarding mid-run is allowed — the tenant simply has
    /// no history yet.
    ///
    /// # Panics
    ///
    /// Panics if the tenant is already onboarded.
    pub fn add_tenant(&mut self, tenant: TenantId) {
        let shard = &mut self.shards[self.router.shard_of_tenant(tenant)];
        match shard.tenants.binary_search_by_key(&tenant, TenantShard::id) {
            Ok(_) => panic!("tenant {tenant} is already onboarded"),
            Err(at) => shard
                .tenants
                .insert(at, TenantShard::new(tenant, &self.config, self.seed)),
        }
    }

    /// Onboards every tenant of the iterator.
    pub fn add_tenants(&mut self, tenants: impl IntoIterator<Item = TenantId>) {
        for tenant in tenants {
            self.add_tenant(tenant);
        }
    }

    /// Offboards `tenant`, handing its slot history out (shard hand-off: the
    /// knowledge base moves without copying and can seed another engine or
    /// shard). Returns `None` when the tenant is unknown.
    pub fn extract_tenant(&mut self, tenant: TenantId) -> Option<SlotHistory> {
        let now_ms = self.slot_index as f64 * self.config.slot_length_ms;
        let shard = &mut self.shards[self.router.shard_of_tenant(tenant)];
        let at = shard
            .tenants
            .binary_search_by_key(&tenant, TenantShard::id)
            .ok()?;
        let mut state = shard.tenants.remove(at);
        Some(state.decommission(now_ms))
    }

    /// Ticks one provisioning slot on a batch of arrival records: buckets
    /// the batch by shard (one router pass), then runs every shard's
    /// predict→allocate→bill cycle in parallel. Records naming unknown
    /// tenants are counted in [`FleetEngine::dropped_records`].
    pub fn tick_slot(&mut self, records: &[SlotRecord]) {
        let slot_index = self.slot_index;
        let now_ms = (slot_index + 1) as f64 * self.config.slot_length_ms;
        let buckets = bucket_by_shard(records, &self.router);
        for (shard, bucket) in self.shards.iter_mut().zip(buckets) {
            shard.inbox = bucket;
        }
        let shards = &mut self.shards;
        let dropped: usize = self
            .pool
            .install(|| {
                shards
                    .par_iter_mut()
                    .map(|shard| shard.tick_inbox(slot_index, now_ms))
                    .collect::<Vec<usize>>()
            })
            .into_iter()
            .sum();
        self.dropped_records += dropped;
        self.slot_index += 1;
    }

    /// Ticks one provisioning slot generated from a [`TenantMix`]: each
    /// shard draws its tenants' records from their private RNG streams and
    /// ticks, all in parallel.
    ///
    /// # Panics
    ///
    /// Panics if a hosted tenant is not part of the mix.
    pub fn tick_mix(&mut self, mix: &TenantMix) {
        let slot_index = self.slot_index;
        let now_ms = (slot_index + 1) as f64 * self.config.slot_length_ms;
        let shards = &mut self.shards;
        self.pool.install(|| {
            shards
                .par_iter_mut()
                .for_each(|shard| shard.tick_mix(mix, slot_index, now_ms));
        });
        self.slot_index += 1;
    }

    /// Every tenant's standing forecast for the next slot, sorted by tenant
    /// id.
    pub fn forecasts(&self) -> Vec<(TenantId, Option<WorkloadForecast>)> {
        let mut forecasts: Vec<(TenantId, Option<WorkloadForecast>)> = self
            .shards
            .iter()
            .flat_map(|s| s.tenants.iter())
            .map(|t| (t.id(), t.forecast().cloned()))
            .collect();
        forecasts.sort_by_key(|(id, _)| *id);
        forecasts
    }

    /// Read access to one tenant's provisioning state.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantShard> {
        let shard = &self.shards[self.router.shard_of_tenant(tenant)];
        shard
            .tenants
            .binary_search_by_key(&tenant, TenantShard::id)
            .ok()
            .map(|at| &shard.tenants[at])
    }

    /// Aggregates every tenant's accounting into the fleet rollup.
    pub fn metrics(&self) -> FleetMetrics {
        FleetMetrics::aggregate(
            self.shards
                .iter()
                .flat_map(|s| s.tenants.iter())
                .map(|t| t.metrics().clone())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::{AccelerationGroupId, UserId};

    fn config() -> SystemConfig {
        SystemConfig::paper_three_groups().with_history_window(32)
    }

    fn records(tenants: u32, users: u32) -> Vec<SlotRecord> {
        // interleave tenants, the way concurrent arrivals reach a front-end
        (0..users)
            .flat_map(|u| {
                (0..tenants).map(move |t| {
                    SlotRecord::new(
                        TenantId(t),
                        AccelerationGroupId((u % 3 + 1) as u8),
                        UserId(t * 1000 + u),
                    )
                })
            })
            .collect()
    }

    #[test]
    fn tick_slot_serves_every_tenant_and_advances_the_clock() {
        let mut engine = FleetEngine::new(config(), 4, 1);
        engine.add_tenants((0..6).map(TenantId));
        assert_eq!(engine.tenants(), 6);
        assert_eq!(engine.shard_count(), 4);

        engine.tick_slot(&records(6, 8));
        engine.tick_slot(&records(6, 8));
        assert_eq!(engine.slot_index(), 2);
        assert_eq!(engine.dropped_records(), 0);

        let metrics = engine.metrics();
        assert_eq!(metrics.tenants, 6);
        assert_eq!(metrics.slots, 2);
        assert_eq!(metrics.total_allocations, 12, "one per tenant per slot");
        assert!(metrics.total_cost > 0.0);
        // identical consecutive slots score perfect accuracy
        assert!((metrics.mean_accuracy.unwrap() - 1.0).abs() < 1e-12);
        let forecasts = engine.forecasts();
        assert_eq!(forecasts.len(), 6);
        assert!(forecasts.iter().all(|(_, f)| f.is_some()));
    }

    #[test]
    fn unknown_tenant_records_are_counted_not_served() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_tenant(TenantId(0));
        let mut batch = records(1, 4);
        batch.push(SlotRecord::new(
            TenantId(99),
            AccelerationGroupId(1),
            UserId(1),
        ));
        engine.tick_slot(&batch);
        assert_eq!(engine.dropped_records(), 1);
        assert_eq!(engine.metrics().tenants, 1);
    }

    #[test]
    fn extract_tenant_hands_off_its_history() {
        let mut engine = FleetEngine::new(config(), 3, 9);
        engine.add_tenants((0..4).map(TenantId));
        for _ in 0..3 {
            engine.tick_slot(&records(4, 5));
        }
        let history = engine.extract_tenant(TenantId(2)).expect("tenant exists");
        assert_eq!(history.len(), 3);
        assert_eq!(engine.tenants(), 3);
        assert!(engine.tenant(TenantId(2)).is_none());
        assert!(engine.extract_tenant(TenantId(2)).is_none());
        // the remaining tenants keep ticking
        engine.tick_slot(&records(4, 5));
        assert_eq!(engine.dropped_records(), 5, "tenant 2's records now drop");
    }

    #[test]
    #[should_panic(expected = "already onboarded")]
    fn double_onboarding_panics() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_tenant(TenantId(1));
        engine.add_tenant(TenantId(1));
    }
}
