//! The sharded fleet engine: many tenants, one provisioning clock.
//!
//! [`FleetEngine`] owns `N` shards, each holding the [`TenantShard`]s the
//! [`ShardRouter`] hashes onto it. Every provisioning slot the engine
//! ingests one batch of arrival records, buckets it by shard, and runs every
//! shard's predict→allocate→bill cycle **in parallel** over a rayon thread
//! pool. Three properties make the parallel tick safe and reproducible:
//!
//! * shards share no state — each tenant's knowledge base, allocator, pool
//!   and RNG stream live in exactly one shard,
//! * per-tenant RNG streams are seeded from `(fleet seed, tenant id)` alone,
//!   so thread scheduling cannot perturb any tenant's draws, and
//! * the nearest-neighbour tie-break (first minimum in chronological order)
//!   is deterministic inside each predictor, so per-tenant forecasts are
//!   bit-identical to running that tenant alone, whatever the shard layout
//!   or thread count.

use crate::error::FleetError;
use crate::ingest::{bucket_by_shard, SlotRecord};
use crate::metrics::{FleetMetrics, TenantMetrics};
use crate::rebalance::{MigrationRecord, Rebalancer, RebalancerConfig};
use crate::router::ShardRouter;
use crate::shard::TenantShard;
use crate::telemetry::{FleetTelemetry, ShardTelemetry, StageHistograms, TelemetryMode};
use mca_core::{
    PredictorStatsSnapshot, SlotHistory, SystemConfig, TimeSlotBuilder, WorkloadForecast,
};
use mca_offload::TenantId;
use mca_snapshot::{
    Cursor, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotStats, SnapshotWriter,
};
use mca_telemetry::{LatencyHistogram, Registry, StageTimer, TelemetryClock};
use mca_workload::TenantMix;
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};

/// Wire-section tags of the engine checkpoint stream, in stream order. One
/// `SHARD` section follows per shard; the driver appends its own sections
/// after the engine's (see `FleetDriver::checkpoint`).
pub(crate) const SECTION_META: u16 = 0x0001;
pub(crate) const SECTION_ROUTER: u16 = 0x0002;
pub(crate) const SECTION_ENGINE: u16 = 0x0003;
pub(crate) const SECTION_REBALANCER: u16 = 0x0004;
pub(crate) const SECTION_SHARD: u16 = 0x0005;

/// One worker partition: the tenants a shard index owns, plus the staging
/// buffer the engine fills before a parallel tick.
#[derive(Debug)]
struct Shard {
    /// The shard's tenants, sorted by tenant id.
    tenants: Vec<TenantShard>,
    /// Records staged for the next tick.
    inbox: Vec<SlotRecord>,
    /// The shard's private instrumentation state: its own clock (so logical
    /// timestamps are deterministic under any thread schedule), stage
    /// histograms and load accounting.
    telemetry: ShardTelemetry,
}

impl Shard {
    /// Consumes the inbox: builds each tenant's slot with one sort + dedup
    /// pass and runs the tenant's provisioning tick, timing the windowing
    /// and per-tenant stages against the shard's telemetry. Returns how many
    /// records named each tenant this shard does not host.
    fn tick_inbox(&mut self, slot_index: usize, now_ms: f64) -> BTreeMap<TenantId, usize> {
        let Shard {
            tenants,
            inbox,
            telemetry,
        } = self;
        let tick_timer = telemetry.start_stage();
        let staged = inbox.len();
        let mut builders: Vec<TimeSlotBuilder> = tenants
            .iter()
            .map(|_| TimeSlotBuilder::new(slot_index))
            .collect();
        let mut unknown: BTreeMap<TenantId, usize> = BTreeMap::new();
        for record in inbox.drain(..) {
            match tenants.binary_search_by_key(&record.tenant, TenantShard::id) {
                Ok(at) => builders[at].assign(record.group, record.user),
                Err(_) => *unknown.entry(record.tenant).or_insert(0) += 1,
            }
        }
        for (tenant, builder) in tenants.iter_mut().zip(builders) {
            let timer = telemetry.start_stage();
            let slot = builder.build();
            telemetry.end_windowing(timer);
            tenant.tick_instrumented(slot, now_ms, telemetry);
        }
        telemetry.finish_tick(staged, tick_timer);
        unknown
    }
}

/// The multi-tenant sharded prediction/allocation engine.
#[derive(Debug)]
pub struct FleetEngine {
    config: SystemConfig,
    seed: u64,
    router: ShardRouter,
    shards: Vec<Shard>,
    pool: rayon::ThreadPool,
    threads: usize,
    slot_index: usize,
    dropped_records: usize,
    /// Dropped records broken down by the unknown tenant they named.
    dropped_by_tenant: BTreeMap<TenantId, usize>,
    /// Tenants whose population is split across *every* shard by user hash
    /// (one replica per shard) — the scaling mode for one huge tenant.
    user_sharded: BTreeSet<TenantId>,
    /// How stage and slot latencies are measured.
    telemetry_mode: TelemetryMode,
    /// The engine-level clock timing each full slot tick.
    clock: TelemetryClock,
    /// Latency histogram over full `ingest_batch` slot ticks.
    slot_hist: LatencyHistogram,
    /// The between-slots rebalancing policy, when one is configured.
    rebalancer: Option<Rebalancer>,
    /// Sum over slots of the slowest shard tick of the slot — the fleet's
    /// serial floor (0 while stage measurements are disabled).
    critical_path_ns: u64,
    /// Checkpoint bytes written by this engine (`fleet_snapshot_*` family).
    snapshot_bytes_written: u64,
    /// Checkpoint bytes this engine was restored from.
    snapshot_bytes_read: u64,
    /// Checkpoint sections written plus read.
    snapshot_sections: u64,
    /// Restores this engine went through (0 or 1; the drive history before a
    /// restore lives in the checkpoint's own counters).
    snapshot_restores: u64,
}

impl FleetEngine {
    /// Creates an engine with `shards` empty shards over the shared system
    /// configuration. The thread pool defaults to the machine's available
    /// parallelism; see [`FleetEngine::with_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: SystemConfig, shards: usize, seed: u64) -> Self {
        let mode = TelemetryMode::default();
        let router = ShardRouter::new(shards);
        let shards = (0..shards)
            .map(|_| Shard {
                tenants: Vec::new(),
                inbox: Vec::new(),
                telemetry: ShardTelemetry::new(mode),
            })
            .collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .build()
            .expect("thread pool construction cannot fail");
        let threads = pool.current_num_threads();
        Self {
            config,
            seed,
            router,
            shards,
            pool,
            threads,
            slot_index: 0,
            dropped_records: 0,
            dropped_by_tenant: BTreeMap::new(),
            user_sharded: BTreeSet::new(),
            telemetry_mode: mode,
            clock: mode.clock(),
            slot_hist: LatencyHistogram::new(),
            rebalancer: None,
            critical_path_ns: 0,
            snapshot_bytes_written: 0,
            snapshot_bytes_read: 0,
            snapshot_sections: 0,
            snapshot_restores: 0,
        }
    }

    /// Overrides the tick's thread count (1 = fully sequential). Forecasts
    /// and metrics are independent of this setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        self.threads = self.pool.current_num_threads();
        self
    }

    /// Switches how stage and slot latencies are measured, resetting every
    /// clock and histogram (typically called right after construction).
    /// Forecasts and metrics are bit-identical in every mode: measurement
    /// flows through per-shard clocks and touches no tenant state.
    pub fn with_telemetry(mut self, mode: TelemetryMode) -> Self {
        self.telemetry_mode = mode;
        self.clock = mode.clock();
        self.slot_hist.clear();
        self.critical_path_ns = 0;
        for shard in &mut self.shards {
            shard.telemetry = ShardTelemetry::new(mode);
        }
        self
    }

    /// Enables between-slots hot-shard rebalancing under `config`: before
    /// each due slot the engine evaluates the per-shard load view (every
    /// hosted tenant's users-per-tick EWMA) and live-migrates tenants chosen
    /// by the policy, carrying their history, index, RNG stream, allocation
    /// memo cache and metrics intact. Forecasts and [`FleetMetrics`] are
    /// bit-identical with rebalancing on or off — the policy reads only
    /// deterministic load counts and migrations move state without mutating
    /// it.
    pub fn with_rebalancer(mut self, config: RebalancerConfig) -> Self {
        self.rebalancer = Some(Rebalancer::new(config));
        self
    }

    /// The active telemetry mode.
    pub fn telemetry_mode(&self) -> TelemetryMode {
        self.telemetry_mode
    }

    /// The shared system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tick's thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of onboarded tenants (a user-sharded tenant counts once, not
    /// once per replica).
    pub fn tenants(&self) -> usize {
        let tenant_sharded: usize = self
            .shards
            .iter()
            .map(|s| {
                s.tenants
                    .iter()
                    .filter(|t| !self.user_sharded.contains(&t.id()))
                    .count()
            })
            .sum();
        tenant_sharded + self.user_sharded.len()
    }

    /// The tenants served in user-sharded (huge tenant) mode.
    pub fn user_sharded_tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.user_sharded.iter().copied()
    }

    /// Every onboarded tenant id, sorted (a user-sharded tenant appears
    /// once, not once per replica).
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = self
            .shards
            .iter()
            .flat_map(|s| s.tenants.iter().map(TenantShard::id))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Index of the next slot to tick.
    pub fn slot_index(&self) -> usize {
        self.slot_index
    }

    /// Records dropped so far because they named an unknown tenant.
    pub fn dropped_records(&self) -> usize {
        self.dropped_records
    }

    /// Dropped records broken down by the unknown tenant they named, sorted
    /// by tenant id.
    pub fn dropped_by_tenant(&self) -> &BTreeMap<TenantId, usize> {
        &self.dropped_by_tenant
    }

    /// The shard index hosting `tenant`.
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        self.router.shard_of_tenant(tenant)
    }

    /// Onboards a tenant: a fresh [`TenantShard`] is placed on the shard the
    /// router assigns. Onboarding mid-run is allowed — the tenant simply has
    /// no history yet.
    ///
    /// # Panics
    ///
    /// Panics if the tenant is already onboarded.
    pub fn add_tenant(&mut self, tenant: TenantId) {
        let shard = &mut self.shards[self.router.shard_of_tenant(tenant)];
        match shard.tenants.binary_search_by_key(&tenant, TenantShard::id) {
            Ok(_) => panic!("tenant {tenant} is already onboarded"),
            Err(at) => shard
                .tenants
                .insert(at, TenantShard::new(tenant, &self.config, self.seed)),
        }
    }

    /// Onboards every tenant of the iterator.
    pub fn add_tenants(&mut self, tenants: impl IntoIterator<Item = TenantId>) {
        for tenant in tenants {
            self.add_tenant(tenant);
        }
    }

    /// Onboards one **huge** tenant in user-sharded mode — the reserved
    /// [`ShardRouter::shard_of_user`] scaling path for a CloneCloud-style
    /// deployment whose single app serves more users than one predictor can
    /// scan. Every shard receives a replica [`TenantShard`]; each replica
    /// predicts and allocates over its own hash-slice of the population, so
    /// the per-slot scan shrinks by the shard count while the combined
    /// forecast ([`FleetEngine::combined_forecast`]) still covers the whole
    /// tenant. Replicas share the tenant's stream seed, which is harmless on
    /// the batched ingest path (it never draws from the RNG).
    ///
    /// # Panics
    ///
    /// Panics if the tenant is already onboarded in either mode.
    pub fn add_user_sharded_tenant(&mut self, tenant: TenantId) {
        for shard in &mut self.shards {
            match shard.tenants.binary_search_by_key(&tenant, TenantShard::id) {
                Ok(_) => panic!("tenant {tenant} is already onboarded"),
                Err(at) => shard
                    .tenants
                    .insert(at, TenantShard::new(tenant, &self.config, self.seed)),
            }
        }
        self.user_sharded.insert(tenant);
    }

    /// Offboards `tenant`, handing its slot history out (shard hand-off: the
    /// knowledge base moves without copying and can seed another engine or
    /// shard).
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownTenant`] when the tenant is not onboarded;
    /// [`FleetError::UserSharded`] when it is served in user-sharded mode —
    /// it has one history per shard, handed out by
    /// [`FleetEngine::extract_user_sharded_tenant`].
    pub fn extract_tenant(&mut self, tenant: TenantId) -> Result<SlotHistory, FleetError> {
        if self.user_sharded.contains(&tenant) {
            return Err(FleetError::UserSharded { tenant });
        }
        let now_ms = self.slot_index as f64 * self.config.slot_length_ms;
        let shard = &mut self.shards[self.router.shard_of_tenant(tenant)];
        let at = shard
            .tenants
            .binary_search_by_key(&tenant, TenantShard::id)
            .map_err(|_| FleetError::UnknownTenant { tenant })?;
        let mut state = shard.tenants.remove(at);
        Ok(state.decommission(now_ms))
    }

    /// Offboards a user-sharded tenant: every replica is decommissioned and
    /// its slice history handed out, in shard order.
    ///
    /// # Errors
    ///
    /// [`FleetError::NotUserSharded`] when the tenant is not served in
    /// user-sharded mode; [`FleetError::MissingReplica`] when a shard has
    /// lost its replica (an engine invariant violation — the engine is left
    /// untouched).
    pub fn extract_user_sharded_tenant(
        &mut self,
        tenant: TenantId,
    ) -> Result<Vec<SlotHistory>, FleetError> {
        if !self.user_sharded.contains(&tenant) {
            return Err(FleetError::NotUserSharded { tenant });
        }
        // validate every replica before touching anything, so an invariant
        // violation surfaces without a half-extracted tenant
        let positions: Vec<usize> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                shard
                    .tenants
                    .binary_search_by_key(&tenant, TenantShard::id)
                    .map_err(|_| FleetError::MissingReplica {
                        tenant,
                        shard: index,
                    })
            })
            .collect::<Result<_, _>>()?;
        self.user_sharded.remove(&tenant);
        let now_ms = self.slot_index as f64 * self.config.slot_length_ms;
        let mut histories = Vec::with_capacity(self.shards.len());
        for (shard, at) in self.shards.iter_mut().zip(positions) {
            let mut state = shard.tenants.remove(at);
            histories.push(state.decommission(now_ms));
        }
        Ok(histories)
    }

    /// Runs the rebalancer's periodic check when one is configured and due,
    /// applying the migrations it plans. Control-plane work between slots:
    /// runs before the slot timer starts, so the slot latency histogram
    /// keeps measuring the data path alone.
    fn maybe_rebalance(&mut self) {
        let due = match &self.rebalancer {
            Some(rebalancer) => rebalancer.due(self.slot_index),
            None => return,
        };
        if due {
            self.run_rebalance_check();
        }
    }

    /// Builds the load view, runs one rebalance check and applies the
    /// planned migrations.
    fn run_rebalance_check(&mut self) -> Vec<MigrationRecord> {
        let slot = self.slot_index;
        let mut loads: Vec<f64> = Vec::with_capacity(self.shards.len());
        let mut movable: Vec<Vec<(TenantId, f64)>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut total = 0.0;
            let mut tenants = Vec::new();
            for tenant in &shard.tenants {
                // user-sharded replicas contribute load but cannot move:
                // their records route by user hash, not by placement
                total += tenant.load_ewma();
                if !self.user_sharded.contains(&tenant.id()) {
                    tenants.push((tenant.id(), tenant.load_ewma()));
                }
            }
            loads.push(total);
            movable.push(tenants);
        }
        let rebalancer = self
            .rebalancer
            .as_mut()
            .expect("callers check a rebalancer is configured");
        let moves = rebalancer.check(slot, &mut loads, &mut movable);
        for record in &moves {
            self.move_tenant_between_shards(record.tenant, record.from, record.to);
        }
        moves
    }

    /// Runs one rebalance check immediately, regardless of warmup or check
    /// interval (the trigger still decides whether anything moves). Returns
    /// the migrations performed, or `None` when no rebalancer is configured.
    pub fn rebalance_now(&mut self) -> Option<Vec<MigrationRecord>> {
        self.rebalancer.as_ref()?;
        Some(self.run_rebalance_check())
    }

    /// Live-migrates `tenant` from `from` to `to`: the whole [`TenantShard`]
    /// moves — slot history, nearest-slot index, RNG stream, standing
    /// forecast, warm allocation memo cache, instance pool and metrics — and
    /// the router's indirection table is updated so subsequent records
    /// follow.
    fn move_tenant_between_shards(&mut self, tenant: TenantId, from: usize, to: usize) {
        let at = self.shards[from]
            .tenants
            .binary_search_by_key(&tenant, TenantShard::id)
            .expect("the migration source hosts the tenant");
        let state = self.shards[from].tenants.remove(at);
        let destination = &mut self.shards[to];
        let at = destination
            .tenants
            .binary_search_by_key(&tenant, TenantShard::id)
            .expect_err("the migration destination does not already host the tenant");
        destination.tenants.insert(at, state);
        self.router.place(tenant, to);
    }

    /// Explicitly live-migrates `tenant` onto shard `to`, independent of any
    /// rebalancer (migration schedules in tests and operational drains use
    /// this). Migrating a tenant onto the shard it already occupies is a
    /// no-op. Forecasts and metrics are unaffected: the tenant's state moves
    /// intact and the router's indirection table keeps its records routing
    /// to it.
    ///
    /// # Errors
    ///
    /// [`FleetError::UserSharded`] when the tenant is served in user-sharded
    /// mode (its replicas route by user hash — there is no single placement
    /// to move); [`FleetError::InvalidShard`] when `to` is out of range;
    /// [`FleetError::UnknownTenant`] when the tenant is not onboarded.
    pub fn migrate_tenant(&mut self, tenant: TenantId, to: usize) -> Result<(), FleetError> {
        if self.user_sharded.contains(&tenant) {
            return Err(FleetError::UserSharded { tenant });
        }
        if to >= self.shards.len() {
            return Err(FleetError::InvalidShard {
                shard: to,
                shards: self.shards.len(),
            });
        }
        let from = self.router.shard_of_tenant(tenant);
        self.shards[from]
            .tenants
            .binary_search_by_key(&tenant, TenantShard::id)
            .map_err(|_| FleetError::UnknownTenant { tenant })?;
        if from != to {
            self.move_tenant_between_shards(tenant, from, to);
        }
        Ok(())
    }

    /// Number of tenants currently placed away from their hash home shard.
    pub fn displaced_tenants(&self) -> usize {
        self.router.displaced_tenants()
    }

    /// Ticks one provisioning slot on a batch of arrival records: buckets
    /// the batch by shard (one router pass), then runs every shard's
    /// predict→allocate→bill cycle in parallel. Records naming unknown
    /// tenants are counted in [`FleetEngine::dropped_records`]. This is the
    /// single ingestion primitive every front-end funnels into. When a
    /// rebalancer is configured its periodic check runs first, between
    /// slots.
    pub(crate) fn ingest_batch(&mut self, records: &[SlotRecord]) {
        self.maybe_rebalance();
        let timer = StageTimer::start(&mut self.clock);
        let slot_index = self.slot_index;
        let now_ms = (slot_index + 1) as f64 * self.config.slot_length_ms;
        let buckets = bucket_by_shard(records, &self.router, &self.user_sharded);
        for (shard, bucket) in self.shards.iter_mut().zip(buckets) {
            shard.inbox = bucket;
        }
        let shards = &mut self.shards;
        let dropped_per_shard: Vec<BTreeMap<TenantId, usize>> = self.pool.install(|| {
            shards
                .par_iter_mut()
                .map(|shard| shard.tick_inbox(slot_index, now_ms))
                .collect()
        });
        // merged in shard order, so the fold is deterministic
        for dropped in dropped_per_shard {
            for (tenant, count) in dropped {
                self.dropped_records += count;
                *self.dropped_by_tenant.entry(tenant).or_insert(0) += count;
            }
        }
        if self.clock.enabled() {
            let slowest = self
                .shards
                .iter()
                .map(|s| s.telemetry.last_tick_ns())
                .max()
                .unwrap_or(0);
            self.critical_path_ns += slowest;
        }
        self.slot_index += 1;
        let elapsed = timer.stop(&mut self.clock);
        if self.clock.enabled() {
            self.slot_hist.record(elapsed);
        }
    }

    /// Ticks one provisioning slot on a hand-built batch of arrival
    /// records.
    #[deprecated(
        note = "drive the engine through `mca_fleet::FleetDriver` (a `SlotBatchSource` replays \
                hand-built batches); this shim runs the identical ingest"
    )]
    pub fn tick_slot(&mut self, records: &[SlotRecord]) {
        self.ingest_batch(records);
    }

    /// Ticks one provisioning slot generated from a [`TenantMix`]: every
    /// tenant's records are drawn from its private RNG stream (in tenant-id
    /// order within each shard, streams independent) and routed through the
    /// ordinary batch ingest — so user-sharded tenants are served
    /// per-record like any other batch, a configuration the old
    /// generate-inside-the-shard path had to reject.
    ///
    /// For a user-sharded tenant the generation stream lives with the
    /// replica on shard 0 (replica RNGs are never consumed by batched
    /// ingest, so the other replicas' streams staying untouched is
    /// harmless).
    ///
    /// # Errors
    ///
    /// [`FleetError::TenantNotInMix`] when a hosted tenant is not part of
    /// the mix (checked before any stream is advanced).
    pub fn try_tick_mix(&mut self, mix: &TenantMix) -> Result<(), FleetError> {
        for shard in &self.shards {
            for tenant in &shard.tenants {
                if tenant.id().0 as usize >= mix.tenants() {
                    return Err(FleetError::TenantNotInMix {
                        tenant: tenant.id(),
                        mix_tenants: mix.tenants(),
                    });
                }
            }
        }
        let slot_index = self.slot_index;
        let mut batch: Vec<SlotRecord> = Vec::new();
        let mut generated: BTreeSet<TenantId> = BTreeSet::new();
        for shard in &mut self.shards {
            for tenant in &mut shard.tenants {
                let id = tenant.id();
                if self.user_sharded.contains(&id) && !generated.insert(id) {
                    continue;
                }
                batch.extend(
                    mix.slot_records(id, slot_index, tenant.rng_mut())
                        .into_iter()
                        .map(|(group, user)| SlotRecord::new(id, group, user)),
                );
            }
        }
        self.ingest_batch(&batch);
        Ok(())
    }

    /// Ticks one provisioning slot generated from a [`TenantMix`].
    ///
    /// # Panics
    ///
    /// Panics if a hosted tenant is not part of the mix.
    #[deprecated(
        note = "drive the engine through `mca_fleet::FleetDriver::with_mix` (or call \
                `try_tick_mix` for the typed-error form)"
    )]
    pub fn tick_mix(&mut self, mix: &TenantMix) {
        if let Err(error) = self.try_tick_mix(mix) {
            panic!("tick_mix: {error}");
        }
    }

    /// Every tenant's standing forecast for the next slot, sorted by tenant
    /// id. A user-sharded tenant appears once, with the combined forecast of
    /// its replicas.
    pub fn forecasts(&self) -> Vec<(TenantId, Option<WorkloadForecast>)> {
        let mut forecasts: Vec<(TenantId, Option<WorkloadForecast>)> = self
            .shards
            .iter()
            .flat_map(|s| s.tenants.iter())
            .filter(|t| !self.user_sharded.contains(&t.id()))
            .map(|t| (t.id(), t.forecast().cloned()))
            .collect();
        for &tenant in &self.user_sharded {
            forecasts.push((tenant, self.combined_forecast(tenant)));
        }
        forecasts.sort_by_key(|(id, _)| *id);
        forecasts
    }

    /// The standing forecast for `tenant` across the whole fleet: for a
    /// tenant-sharded tenant this is its shard's forecast; for a
    /// user-sharded tenant the replicas' per-group loads are summed (slice
    /// forecasts are independent nearest-slot matches, so the combined
    /// forecast carries no single `matched_slot`). `None` when the tenant is
    /// unknown or no replica has forecast yet.
    pub fn combined_forecast(&self, tenant: TenantId) -> Option<WorkloadForecast> {
        if !self.user_sharded.contains(&tenant) {
            return self.tenant(tenant).and_then(|t| t.forecast().cloned());
        }
        let mut per_group: Vec<(mca_offload::AccelerationGroupId, usize)> = self
            .config
            .groups
            .ids()
            .into_iter()
            .map(|g| (g, 0))
            .collect();
        let mut any = false;
        for shard in &self.shards {
            // every shard hosts a replica of a user-sharded tenant; a missing
            // one is skipped rather than panicking so the reporting path
            // (forecasts / DriveReport) can never unwind the fleet
            let Ok(at) = shard.tenants.binary_search_by_key(&tenant, TenantShard::id) else {
                continue;
            };
            if let Some(forecast) = shard.tenants[at].forecast() {
                any = true;
                for (group, load) in &forecast.per_group {
                    if let Some(entry) = per_group.iter_mut().find(|(g, _)| g == group) {
                        entry.1 += load;
                    }
                }
            }
        }
        any.then_some(WorkloadForecast {
            per_group,
            matched_slot: None,
        })
    }

    /// Read access to one tenant's provisioning state.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantShard> {
        let shard = &self.shards[self.router.shard_of_tenant(tenant)];
        shard
            .tenants
            .binary_search_by_key(&tenant, TenantShard::id)
            .ok()
            .map(|at| &shard.tenants[at])
    }

    /// Aggregates every tenant's accounting into the fleet rollup. The
    /// replicas of a user-sharded tenant fold into one per-tenant record
    /// first ([`TenantMetrics::absorb`], in shard order — deterministic), so
    /// the rollup sees each tenant exactly once.
    pub fn metrics(&self) -> FleetMetrics {
        let mut per_tenant: Vec<TenantMetrics> = Vec::new();
        let mut merged: BTreeMap<TenantId, TenantMetrics> = BTreeMap::new();
        for shard in &self.shards {
            for tenant in &shard.tenants {
                if self.user_sharded.contains(&tenant.id()) {
                    merged
                        .entry(tenant.id())
                        .and_modify(|m| m.absorb(tenant.metrics()))
                        .or_insert_with(|| tenant.metrics().clone());
                } else {
                    per_tenant.push(tenant.metrics().clone());
                }
            }
        }
        per_tenant.extend(merged.into_values());
        FleetMetrics::aggregate(per_tenant)
    }

    /// The engine-wide telemetry snapshot: per-slot ingest latency, stage
    /// histograms merged over shards (in shard order) and every shard's load
    /// view. Cheap relative to a tick — clones of mostly-small histograms —
    /// but intended for end-of-run reporting, not the per-slot hot path.
    pub fn telemetry(&self) -> FleetTelemetry {
        let mut stages = StageHistograms::default();
        let mut shard_loads = Vec::with_capacity(self.shards.len());
        for (index, shard) in self.shards.iter().enumerate() {
            stages.merge(shard.telemetry.stages());
            shard_loads.push(shard.telemetry.load_snapshot(index, shard.tenants.len()));
        }
        FleetTelemetry {
            mode: self.telemetry_mode,
            slot: self.slot_hist.clone(),
            stages,
            shards: shard_loads,
            rebalance: self.rebalancer.as_ref().map(Rebalancer::snapshot),
            critical_path_ns: self.critical_path_ns,
        }
    }

    /// Latency of each shard's most recent tick, ns, in shard order (all 0
    /// while stage measurements are disabled). What the skew bench samples
    /// per slot to project multicore speedups from a single-threaded
    /// measured run.
    pub fn last_shard_tick_ns(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.telemetry.last_tick_ns())
            .collect()
    }

    /// Assembles the full metrics registry for exposition
    /// ([`mca_telemetry::prometheus_text`] / [`mca_telemetry::json_snapshot`]):
    /// the telemetry histograms and per-shard gauges, the fleet accounting
    /// counters, the summed solver work and the summed predictor scan
    /// statistics.
    pub fn telemetry_registry(&self) -> Registry {
        let mut registry = Registry::new();
        self.telemetry().fill_registry(&mut registry);

        let metrics = self.metrics();
        registry.add_counter("fleet_slots_total", self.slot_index as u64);
        let staged: u64 = self.shards.iter().map(|s| s.telemetry.records()).sum();
        registry.add_counter("fleet_records_total", staged);
        registry.add_counter("fleet_dropped_records_total", self.dropped_records as u64);
        registry.add_counter("fleet_allocations_total", metrics.total_allocations as u64);
        registry.add_counter(
            "fleet_infeasible_allocations_total",
            metrics.total_infeasible as u64,
        );
        registry.add_counter(
            "fleet_alloc_cache_hits_total",
            metrics.total_cache_hits as u64,
        );
        registry.add_counter(
            "fleet_alloc_cache_misses_total",
            metrics.total_cache_misses as u64,
        );
        registry.add_counter(
            "fleet_alloc_cache_evictions_total",
            metrics.total_cache_evictions as u64,
        );
        registry.add_counter(
            "fleet_solver_nodes_total",
            metrics.total_solver_nodes as u64,
        );
        registry.add_counter(
            "fleet_solver_pivots_total",
            metrics.total_solver_pivots as u64,
        );
        registry.add_counter(
            "fleet_solver_phase1_skips_total",
            metrics.total_solver_phase1_skips as u64,
        );
        if let Some(accuracy) = metrics.mean_accuracy {
            registry.set_gauge("fleet_mean_accuracy", accuracy);
        }
        registry.add_counter(
            "fleet_sla_violations_total",
            metrics.total_sla_violations as u64,
        );
        registry.add_counter(
            "fleet_sla_dropped_users_total",
            metrics.total_sla_dropped_users as u64,
        );
        registry.set_gauge("fleet_sla_latency_ms_total", metrics.total_sla_latency_ms);
        registry.set_gauge("fleet_energy_wh_total", metrics.total_energy_wh);
        registry.add_counter(
            "fleet_placement_placed_total",
            metrics.total_placed_instance_slots as u64,
        );
        registry.add_counter(
            "fleet_placement_failures_total",
            metrics.total_placement_failures as u64,
        );

        let predictor = self.predictor_stats();
        registry.add_counter("predictor_queries_total", predictor.queries);
        registry.add_counter(
            "predictor_fast_predictions_total",
            predictor.fast_predictions,
        );
        registry.add_counter("predictor_rings_walked_total", predictor.rings_walked);
        registry.add_counter(
            "predictor_candidates_bounded_total",
            predictor.candidates_bounded,
        );
        registry.add_counter(
            "predictor_candidates_evaluated_total",
            predictor.candidates_evaluated,
        );
        registry.add_counter("predictor_scratch_grows_total", predictor.scratch_grows);
        registry.add_counter("predictor_index_builds_total", predictor.index_builds);
        registry.add_counter("predictor_index_rebuilds_total", predictor.index_rebuilds);

        registry.add_counter(
            "fleet_snapshot_bytes_written_total",
            self.snapshot_bytes_written,
        );
        registry.add_counter("fleet_snapshot_bytes_read_total", self.snapshot_bytes_read);
        registry.add_counter("fleet_snapshot_sections_total", self.snapshot_sections);
        registry.add_counter("fleet_snapshot_restores_total", self.snapshot_restores);
        registry
    }

    /// Checks every tenant's standing datacenter placement and surfaces the
    /// first failure as a typed [`FleetError::Placement`] (tenants scanned
    /// in shard order, then tenant-id order — deterministic). Host
    /// exhaustion never panics the tick path: the failing tenant keeps
    /// running degraded (placement cleared, failures counted in its
    /// metrics), and a control plane polls this to decide whether to grow
    /// the host fleet or shed the tenant. Always `Ok` under arithmetic
    /// billing.
    ///
    /// # Errors
    ///
    /// [`FleetError::Placement`] naming the first tenant whose allocation
    /// found no host.
    pub fn placement_health(&self) -> Result<(), FleetError> {
        for shard in &self.shards {
            for tenant in &shard.tenants {
                if let Some(error) = tenant.placement_error() {
                    return Err(FleetError::Placement {
                        tenant: tenant.id(),
                        error: *error,
                    });
                }
            }
        }
        Ok(())
    }

    /// The summed scan statistics of every hosted predictor (replicas of a
    /// user-sharded tenant each contribute their own scans).
    pub fn predictor_stats(&self) -> PredictorStatsSnapshot {
        let mut total = PredictorStatsSnapshot::default();
        for shard in &self.shards {
            for tenant in &shard.tenants {
                total.merge(&tenant.predictor().stats());
            }
        }
        total
    }

    /// Writes a durable checkpoint of the engine to `out`: a versioned,
    /// CRC-guarded section stream carrying the router's indirection table,
    /// the rebalancer, every shard's telemetry and every tenant's full tick
    /// state (knowledge base, index, RNG stream words, memo cache in FIFO
    /// order, standing forecast, pool, billing backend and metrics). An
    /// engine restored from these bytes with the same [`SystemConfig`] and
    /// driven over the same records produces bit-identical forecasts,
    /// [`FleetMetrics`] and logical-clock telemetry at any thread count.
    ///
    /// Checkpoints are taken **between slots** — after an ingest returns and
    /// before the next one — so shard inboxes are empty by construction and
    /// never travel on the wire. The [`SystemConfig`] itself is not
    /// serialized; restore receives it from the caller, the same way
    /// [`FleetEngine::new`] does.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError::Io`] from the sink.
    pub fn checkpoint(&mut self, out: &mut impl Write) -> Result<SnapshotStats, SnapshotError> {
        let mut writer = SnapshotWriter::new(out)?;
        self.write_sections(&mut writer)?;
        let stats = writer.finish()?;
        self.note_checkpoint(&stats);
        Ok(stats)
    }

    /// Writes the engine's sections into an already-open writer — the shared
    /// body of [`FleetEngine::checkpoint`] and the driver checkpoint, which
    /// appends its own cursor section before finishing the stream.
    pub(crate) fn write_sections<W: Write>(
        &self,
        writer: &mut SnapshotWriter<W>,
    ) -> Result<(), SnapshotError> {
        debug_assert!(
            self.shards.iter().all(|s| s.inbox.is_empty()),
            "checkpoints are taken between slots"
        );
        let mut meta = Vec::new();
        self.seed.encode(&mut meta);
        self.threads.encode(&mut meta);
        self.slot_index.encode(&mut meta);
        self.shards.len().encode(&mut meta);
        // a fingerprint of the configuration the checkpoint was taken under,
        // so restore can reject a disagreeing one instead of mis-resuming
        self.config.slot_length_ms.encode(&mut meta);
        self.config.groups.ids().encode(&mut meta);
        writer.section(SECTION_META, &meta)?;
        writer.encode_section(SECTION_ROUTER, &self.router)?;
        let mut engine = Vec::new();
        self.dropped_records.encode(&mut engine);
        self.dropped_by_tenant.encode(&mut engine);
        self.user_sharded.encode(&mut engine);
        self.telemetry_mode.encode(&mut engine);
        self.clock.encode(&mut engine);
        self.slot_hist.encode(&mut engine);
        self.critical_path_ns.encode(&mut engine);
        writer.section(SECTION_ENGINE, &engine)?;
        writer.encode_section(SECTION_REBALANCER, &self.rebalancer)?;
        let mut buf = Vec::new();
        for shard in &self.shards {
            buf.clear();
            shard.telemetry.encode(&mut buf);
            shard.tenants.len().encode(&mut buf);
            for tenant in &shard.tenants {
                tenant.encode_state(&mut buf);
            }
            writer.section(SECTION_SHARD, &buf)?;
        }
        Ok(())
    }

    /// Credits a finished checkpoint to the engine's snapshot counters.
    pub(crate) fn note_checkpoint(&mut self, stats: &SnapshotStats) {
        self.snapshot_bytes_written += stats.bytes;
        self.snapshot_sections += u64::from(stats.sections);
    }

    /// Credits a finished restore to the engine's snapshot counters.
    pub(crate) fn note_restore(&mut self, stats: &SnapshotStats) {
        self.snapshot_bytes_read = stats.bytes;
        self.snapshot_sections = u64::from(stats.sections);
        self.snapshot_restores = 1;
    }

    /// Rebuilds an engine from [`FleetEngine::checkpoint`] bytes and the
    /// shared system configuration. The restored engine resumes at the
    /// checkpoint's slot index with the checkpoint's thread count; driving
    /// it over the remaining records reproduces the uninterrupted run bit
    /// for bit (wall-clock telemetry excepted — monotonic clocks restart at
    /// a fresh epoch).
    ///
    /// # Errors
    ///
    /// Every corruption is a typed [`SnapshotError`]: truncation, a flipped
    /// byte (CRC), a wrong or future format version, a configuration that
    /// disagrees with the checkpoint's fingerprint, or internally
    /// inconsistent state (a tenant on the wrong shard, an unsorted shard,
    /// a router override out of range).
    pub fn restore(source: &mut impl Read, config: &SystemConfig) -> Result<Self, SnapshotError> {
        let mut reader = SnapshotReader::new(source)?;
        let mut engine = Self::read_sections(&mut reader, config)?;
        let stats = reader.finish()?;
        engine.note_restore(&stats);
        Ok(engine)
    }

    /// Reads the engine's sections from an already-open reader — the shared
    /// body of [`FleetEngine::restore`] and the driver restore, which reads
    /// its own cursor section before finishing the stream. Snapshot counters
    /// are left zeroed; the caller credits them via
    /// [`FleetEngine::note_restore`] once the stream is finished.
    pub(crate) fn read_sections<R: Read>(
        reader: &mut SnapshotReader<R>,
        config: &SystemConfig,
    ) -> Result<Self, SnapshotError> {
        let meta = reader.section(SECTION_META)?;
        let mut cur = Cursor::new(&meta);
        let seed = u64::decode(&mut cur)?;
        let threads = usize::decode(&mut cur)?;
        let slot_index = usize::decode(&mut cur)?;
        let shard_count = usize::decode(&mut cur)?;
        let slot_length_ms = f64::decode(&mut cur)?;
        let group_ids = Vec::<mca_offload::AccelerationGroupId>::decode(&mut cur)?;
        if !cur.is_empty() {
            return Err(SnapshotError::Malformed {
                context: "trailing bytes in the meta section",
            });
        }
        if shard_count == 0 {
            return Err(SnapshotError::Malformed {
                context: "engine with no shards",
            });
        }
        if slot_length_ms.to_bits() != config.slot_length_ms.to_bits()
            || group_ids != config.groups.ids()
        {
            return Err(SnapshotError::Malformed {
                context: "restore configuration disagrees with the checkpoint",
            });
        }
        let router: ShardRouter = reader.decode_section(SECTION_ROUTER)?;
        if router.shards() != shard_count {
            return Err(SnapshotError::Malformed {
                context: "router shard count out of step with the engine",
            });
        }
        let engine = reader.section(SECTION_ENGINE)?;
        let mut cur = Cursor::new(&engine);
        let dropped_records = usize::decode(&mut cur)?;
        let dropped_by_tenant = BTreeMap::<TenantId, usize>::decode(&mut cur)?;
        let user_sharded = BTreeSet::<TenantId>::decode(&mut cur)?;
        let telemetry_mode = TelemetryMode::decode(&mut cur)?;
        let clock = TelemetryClock::decode(&mut cur)?;
        let slot_hist = LatencyHistogram::decode(&mut cur)?;
        let critical_path_ns = u64::decode(&mut cur)?;
        if !cur.is_empty() {
            return Err(SnapshotError::Malformed {
                context: "trailing bytes in the engine section",
            });
        }
        let rebalancer: Option<Rebalancer> = reader.decode_section(SECTION_REBALANCER)?;
        let mut shards = Vec::with_capacity(shard_count.min(4096));
        for index in 0..shard_count {
            let payload = reader.section(SECTION_SHARD)?;
            let mut cur = Cursor::new(&payload);
            let telemetry = ShardTelemetry::decode(&mut cur)?;
            let tenant_count = usize::decode(&mut cur)?;
            let mut tenants = Vec::with_capacity(tenant_count.min(4096));
            for _ in 0..tenant_count {
                tenants.push(TenantShard::decode_state(&mut cur, config)?);
            }
            if !cur.is_empty() {
                return Err(SnapshotError::Malformed {
                    context: "trailing bytes in a shard section",
                });
            }
            if tenants.windows(2).any(|pair| pair[0].id() >= pair[1].id()) {
                return Err(SnapshotError::Malformed {
                    context: "shard tenants out of id order",
                });
            }
            // every tenant-sharded tenant must sit where the restored router
            // routes it; user-sharded replicas live on every shard by design
            if tenants.iter().any(|tenant| {
                !user_sharded.contains(&tenant.id()) && router.shard_of_tenant(tenant.id()) != index
            }) {
                return Err(SnapshotError::Malformed {
                    context: "tenant hosted away from its routed shard",
                });
            }
            shards.push(Shard {
                tenants,
                inbox: Vec::new(),
                telemetry,
            });
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("thread pool construction cannot fail");
        let threads = pool.current_num_threads();
        Ok(Self {
            config: config.clone(),
            seed,
            router,
            shards,
            pool,
            threads,
            slot_index,
            dropped_records,
            dropped_by_tenant,
            user_sharded,
            telemetry_mode,
            clock,
            slot_hist,
            rebalancer,
            critical_path_ns,
            snapshot_bytes_written: 0,
            snapshot_bytes_read: 0,
            snapshot_sections: 0,
            snapshot_restores: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    // the deprecated tick_slot/tick_mix shims are exercised on purpose: they
    // must stay bit-identical to the ingest paths they wrap
    #![allow(deprecated)]

    use super::*;
    use mca_offload::{AccelerationGroupId, UserId};

    fn config() -> SystemConfig {
        SystemConfig::paper_three_groups().with_history_window(32)
    }

    fn records(tenants: u32, users: u32) -> Vec<SlotRecord> {
        // interleave tenants, the way concurrent arrivals reach a front-end
        (0..users)
            .flat_map(|u| {
                (0..tenants).map(move |t| {
                    SlotRecord::new(
                        TenantId(t),
                        AccelerationGroupId((u % 3 + 1) as u8),
                        UserId(t * 1000 + u),
                    )
                })
            })
            .collect()
    }

    #[test]
    fn tick_slot_serves_every_tenant_and_advances_the_clock() {
        let mut engine = FleetEngine::new(config(), 4, 1);
        engine.add_tenants((0..6).map(TenantId));
        assert_eq!(engine.tenants(), 6);
        assert_eq!(engine.shard_count(), 4);

        engine.tick_slot(&records(6, 8));
        engine.tick_slot(&records(6, 8));
        assert_eq!(engine.slot_index(), 2);
        assert_eq!(engine.dropped_records(), 0);

        let metrics = engine.metrics();
        assert_eq!(metrics.tenants, 6);
        assert_eq!(metrics.slots, 2);
        assert_eq!(metrics.total_allocations, 12, "one per tenant per slot");
        assert!(metrics.total_cost > 0.0);
        // identical consecutive slots score perfect accuracy
        assert!((metrics.mean_accuracy.unwrap() - 1.0).abs() < 1e-12);
        let forecasts = engine.forecasts();
        assert_eq!(forecasts.len(), 6);
        assert!(forecasts.iter().all(|(_, f)| f.is_some()));
    }

    #[test]
    fn unknown_tenant_records_are_counted_not_served() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_tenant(TenantId(0));
        let mut batch = records(1, 4);
        batch.push(SlotRecord::new(
            TenantId(99),
            AccelerationGroupId(1),
            UserId(1),
        ));
        engine.tick_slot(&batch);
        assert_eq!(engine.dropped_records(), 1);
        assert_eq!(engine.dropped_by_tenant().get(&TenantId(99)), Some(&1));
        assert_eq!(engine.metrics().tenants, 1);
    }

    #[test]
    fn stage_histogram_counts_follow_the_tick_arithmetic() {
        let mut engine = FleetEngine::new(config(), 2, 1).with_telemetry(TelemetryMode::Logical);
        engine.add_tenants((0..3).map(TenantId));
        for _ in 0..4 {
            engine.tick_slot(&records(3, 6));
        }
        let telemetry = engine.telemetry();
        let metrics = engine.metrics();
        assert_eq!(telemetry.mode, TelemetryMode::Logical);
        assert_eq!(telemetry.slot.count(), 4, "one sample per slot tick");
        assert_eq!(telemetry.stages.tick.count(), 2 * 4, "one per shard-slot");
        assert_eq!(
            telemetry.stages.windowing.count(),
            3 * 4,
            "one per tenant-tick"
        );
        assert_eq!(telemetry.stages.predict.count(), 3 * 4);
        assert_eq!(
            telemetry.stages.allocate.count() as usize,
            metrics.total_allocations + metrics.total_infeasible,
            "one per produced forecast"
        );
        assert_eq!(
            telemetry.stages.bill.count() as usize,
            metrics.total_allocations,
            "one per successful allocation"
        );
        assert_eq!(telemetry.shards.len(), 2);
        let staged: u64 = telemetry.shards.iter().map(|s| s.records).sum();
        assert_eq!(staged, 4 * 18, "every record lands on exactly one shard");
        assert_eq!(telemetry.shards.iter().map(|s| s.tenants).sum::<usize>(), 3);
        assert!(telemetry.shards.iter().all(|s| s.ticks == 4));
    }

    #[test]
    fn disabled_telemetry_records_nothing_but_still_counts_load() {
        let mut engine = FleetEngine::new(config(), 2, 1).with_telemetry(TelemetryMode::Disabled);
        engine.add_tenants((0..2).map(TenantId));
        engine.tick_slot(&records(2, 5));
        let telemetry = engine.telemetry();
        assert_eq!(telemetry.slot.count(), 0);
        assert_eq!(telemetry.stages.total_samples(), 0);
        let staged: u64 = telemetry.shards.iter().map(|s| s.records).sum();
        assert_eq!(staged, 10, "load accounting runs in every mode");
        assert!(telemetry.shards.iter().any(|s| s.load_ewma > 0.0));
    }

    #[test]
    fn telemetry_registry_exposes_counters_gauges_and_histograms() {
        let mut engine = FleetEngine::new(config(), 2, 1).with_telemetry(TelemetryMode::Logical);
        engine.add_tenants((0..3).map(TenantId));
        for _ in 0..3 {
            engine.tick_slot(&records(3, 4));
        }
        let metrics = engine.metrics();
        let registry = engine.telemetry_registry();
        assert_eq!(registry.counter("fleet_slots_total"), Some(3));
        assert_eq!(registry.counter("fleet_records_total"), Some(3 * 12));
        assert_eq!(
            registry.counter("fleet_allocations_total"),
            Some(metrics.total_allocations as u64)
        );
        assert_eq!(
            registry.counter("fleet_alloc_cache_misses_total"),
            Some(metrics.total_cache_misses as u64)
        );
        assert!(
            registry.counter("fleet_solver_nodes_total").unwrap() > 0,
            "the ILP solves did measurable work"
        );
        let queries = registry.counter("predictor_queries_total").unwrap();
        let fast = registry
            .counter("predictor_fast_predictions_total")
            .unwrap();
        assert_eq!(
            queries + fast,
            3 * 3,
            "every tenant-tick predicted, by scan or by fast path"
        );
        assert!(registry.gauge("fleet_mean_accuracy").is_some());
        assert!(registry.gauge("fleet_shard_0_load_ewma").is_some());
        assert_eq!(registry.histogram("fleet_slot_tick_ns").unwrap().count(), 3);
        // both exposition formats serialize the registry, and the JSON
        // snapshot round-trips through the bundled parser
        let text = mca_telemetry::prometheus_text(&registry);
        assert!(text.contains("fleet_slot_tick_ns"));
        let snapshot = mca_telemetry::json_snapshot(&registry);
        let parsed = mca_telemetry::json::parse(&snapshot).expect("snapshot is valid JSON");
        assert_eq!(
            parsed.get("version").and_then(|v| v.as_u64()),
            Some(mca_telemetry::SNAPSHOT_VERSION)
        );
    }

    #[test]
    fn datacenter_registry_families_and_placement_health() {
        use mca_cloudsim::{DatacenterConfig, PlacementKind};
        // arithmetic engines expose the new families at zero and stay healthy
        let mut plain = FleetEngine::new(config(), 2, 1);
        plain.add_tenants((0..2).map(TenantId));
        plain.tick_slot(&records(2, 4));
        let registry = plain.telemetry_registry();
        assert_eq!(registry.counter("fleet_sla_violations_total"), Some(0));
        assert_eq!(registry.counter("fleet_placement_placed_total"), Some(0));
        assert_eq!(registry.gauge("fleet_energy_wh_total"), Some(0.0));
        assert!(plain.placement_health().is_ok());

        // a datacenter engine populates the families from its rollups
        let dc_config = config().with_datacenter(
            DatacenterConfig::paper_default().with_placement(PlacementKind::BestFit),
        );
        let mut engine = FleetEngine::new(dc_config, 2, 1);
        engine.add_tenants((0..2).map(TenantId));
        for _ in 0..3 {
            engine.tick_slot(&records(2, 4));
        }
        let metrics = engine.metrics();
        assert!(metrics.total_placed_instance_slots > 0);
        assert!(metrics.total_energy_wh > 0.0);
        assert_eq!(metrics.total_placement_failures, 0);
        let registry = engine.telemetry_registry();
        assert_eq!(
            registry.counter("fleet_placement_placed_total"),
            Some(metrics.total_placed_instance_slots as u64)
        );
        assert_eq!(
            registry.counter("fleet_sla_violations_total"),
            Some(metrics.total_sla_violations as u64)
        );
        assert_eq!(
            registry.gauge("fleet_energy_wh_total"),
            Some(metrics.total_energy_wh)
        );
        assert!(engine.placement_health().is_ok());

        // starved hosts: placements fail, ticks keep running, health reports it
        let starved =
            config().with_datacenter(DatacenterConfig::paper_default().with_hosts(1, 1, 0.5));
        let mut engine = FleetEngine::new(starved, 2, 1);
        engine.add_tenants((0..2).map(TenantId));
        engine.tick_slot(&records(2, 4));
        let err = engine.placement_health().unwrap_err();
        assert!(matches!(err, FleetError::Placement { .. }));
        assert!(err.to_string().contains("placement failed"));
        assert!(engine.metrics().total_placement_failures > 0);
    }

    #[test]
    fn extract_tenant_hands_off_its_history() {
        let mut engine = FleetEngine::new(config(), 3, 9);
        engine.add_tenants((0..4).map(TenantId));
        for _ in 0..3 {
            engine.tick_slot(&records(4, 5));
        }
        let history = engine.extract_tenant(TenantId(2)).expect("tenant exists");
        assert_eq!(history.len(), 3);
        assert_eq!(engine.tenants(), 3);
        assert!(engine.tenant(TenantId(2)).is_none());
        assert_eq!(
            engine.extract_tenant(TenantId(2)).unwrap_err(),
            FleetError::UnknownTenant {
                tenant: TenantId(2)
            }
        );
        // the remaining tenants keep ticking
        engine.tick_slot(&records(4, 5));
        assert_eq!(engine.dropped_records(), 5, "tenant 2's records now drop");
    }

    #[test]
    #[should_panic(expected = "already onboarded")]
    fn double_onboarding_panics() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_tenant(TenantId(1));
        engine.add_tenant(TenantId(1));
    }

    /// A batch for one tenant with `users` distinct users spread over the
    /// three groups, with ids offset by `drift` so consecutive slots overlap.
    fn huge_tenant_batch(tenant: TenantId, users: u32, drift: u32) -> Vec<SlotRecord> {
        (0..users)
            .map(|u| {
                SlotRecord::new(
                    tenant,
                    AccelerationGroupId((u % 3 + 1) as u8),
                    UserId(u + drift),
                )
            })
            .collect()
    }

    #[test]
    fn user_sharded_tenant_splits_its_population_and_combines_forecasts() {
        let mut engine = FleetEngine::new(config(), 4, 1);
        engine.add_user_sharded_tenant(TenantId(0));
        assert_eq!(engine.tenants(), 1, "replicas count once");
        assert_eq!(
            engine.user_sharded_tenants().collect::<Vec<_>>(),
            vec![TenantId(0)]
        );

        let batch = huge_tenant_batch(TenantId(0), 64, 0);
        engine.tick_slot(&batch);
        engine.tick_slot(&batch);
        assert_eq!(engine.dropped_records(), 0, "every shard hosts a replica");

        let metrics = engine.metrics();
        assert_eq!(metrics.tenants, 1);
        let tenant = metrics.tenant(TenantId(0)).unwrap();
        assert_eq!(tenant.slots, 2);
        assert_eq!(tenant.total_user_slots, 2 * 64, "no user lost in routing");

        // identical consecutive slots: every replica matches its own slice,
        // so the combined forecast covers the whole population
        let combined = engine.combined_forecast(TenantId(0)).unwrap();
        assert_eq!(combined.total(), 64);
        assert_eq!(combined.matched_slot, None, "slice matches are independent");
        let forecasts = engine.forecasts();
        assert_eq!(forecasts.len(), 1);
        assert_eq!(forecasts[0].1.as_ref().unwrap(), &combined);
    }

    #[test]
    fn single_shard_user_sharding_equals_tenant_sharding() {
        // on one shard the single replica sees the whole population, so the
        // user-sharded engine must reproduce the tenant-sharded one exactly
        let mut by_user = FleetEngine::new(config(), 1, 7);
        by_user.add_user_sharded_tenant(TenantId(3));
        let mut by_tenant = FleetEngine::new(config(), 1, 7);
        by_tenant.add_tenant(TenantId(3));
        for i in 0..5u32 {
            let batch = huge_tenant_batch(TenantId(3), 20 + i, i);
            by_user.tick_slot(&batch);
            by_tenant.tick_slot(&batch);
        }
        assert_eq!(by_user.metrics(), by_tenant.metrics());
        let combined = by_user.combined_forecast(TenantId(3)).unwrap();
        let plain = by_tenant.combined_forecast(TenantId(3)).unwrap();
        assert_eq!(combined.per_group, plain.per_group);
    }

    #[test]
    fn user_sharded_runs_are_deterministic_across_threads_and_repeats() {
        let run = |threads: usize| {
            let mut engine = FleetEngine::new(config(), 6, 11).with_threads(threads);
            engine.add_user_sharded_tenant(TenantId(7));
            engine.add_tenant(TenantId(1));
            for i in 0..6u32 {
                let mut batch = huge_tenant_batch(TenantId(7), 40, i);
                batch.extend(huge_tenant_batch(TenantId(1), 8, 0));
                engine.tick_slot(&batch);
            }
            (engine.metrics(), engine.forecasts())
        };
        let baseline = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn extract_user_sharded_tenant_hands_off_every_slice() {
        let mut engine = FleetEngine::new(config(), 3, 9);
        engine.add_user_sharded_tenant(TenantId(2));
        for i in 0..3u32 {
            engine.tick_slot(&huge_tenant_batch(TenantId(2), 30, i));
        }
        let histories = engine.extract_user_sharded_tenant(TenantId(2)).unwrap();
        assert_eq!(histories.len(), 3, "one slice history per shard");
        assert!(histories.iter().all(|h| h.len() == 3));
        // the population is conserved across the slices, slot by slot
        for slot in 0..3 {
            let users: usize = histories
                .iter()
                .map(|h| h.slots()[slot].total_users())
                .sum();
            assert_eq!(users, 30, "slot {slot}");
        }
        assert_eq!(engine.tenants(), 0);
        assert_eq!(
            engine.extract_user_sharded_tenant(TenantId(2)).unwrap_err(),
            FleetError::NotUserSharded {
                tenant: TenantId(2)
            }
        );
        assert!(engine.combined_forecast(TenantId(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "already onboarded")]
    fn user_sharding_an_onboarded_tenant_panics() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_tenant(TenantId(1));
        engine.add_user_sharded_tenant(TenantId(1));
    }

    #[test]
    fn extracting_a_user_sharded_tenant_by_tenant_path_is_a_typed_error() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_user_sharded_tenant(TenantId(1));
        assert_eq!(
            engine.extract_tenant(TenantId(1)).unwrap_err(),
            FleetError::UserSharded {
                tenant: TenantId(1)
            }
        );
        // the tenant is untouched by the failed extraction
        assert_eq!(engine.tenants(), 1);
    }

    #[test]
    fn tenant_ids_lists_every_tenant_once() {
        let mut engine = FleetEngine::new(config(), 3, 1);
        engine.add_tenants([TenantId(4), TenantId(1)]);
        engine.add_user_sharded_tenant(TenantId(2));
        assert_eq!(
            engine.tenant_ids(),
            vec![TenantId(1), TenantId(2), TenantId(4)]
        );
    }

    #[test]
    fn migrate_tenant_carries_state_and_keeps_metrics_placement_invariant() {
        let mut migrated = FleetEngine::new(config(), 3, 9);
        migrated.add_tenants((0..4).map(TenantId));
        let mut control = FleetEngine::new(config(), 3, 9);
        control.add_tenants((0..4).map(TenantId));
        for _ in 0..3 {
            migrated.tick_slot(&records(4, 5));
            control.tick_slot(&records(4, 5));
        }
        let tenant = TenantId(2);
        let home = migrated.shard_of(tenant);
        let (forecast, history_len, cached) = {
            let before = migrated.tenant(tenant).unwrap();
            (
                before.forecast().cloned(),
                before.predictor().history().len(),
                before.cached_allocations(),
            )
        };
        assert!(forecast.is_some() && history_len == 3 && cached > 0);

        let away = (home + 1) % 3;
        migrated.migrate_tenant(tenant, away).unwrap();
        assert_eq!(migrated.shard_of(tenant), away);
        assert_eq!(migrated.displaced_tenants(), 1);
        let after = migrated.tenant(tenant).unwrap();
        assert_eq!(after.forecast().cloned(), forecast, "forecast survives");
        assert_eq!(after.predictor().history().len(), history_len);
        assert_eq!(after.cached_allocations(), cached, "warm cache survives");

        for _ in 0..3 {
            migrated.tick_slot(&records(4, 5));
            control.tick_slot(&records(4, 5));
        }
        assert_eq!(migrated.dropped_records(), 0, "records follow the move");
        assert_eq!(migrated.metrics(), control.metrics());
        assert_eq!(migrated.forecasts(), control.forecasts());
    }

    #[test]
    fn migrate_tenant_rejects_bad_targets() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_tenant(TenantId(0));
        engine.add_user_sharded_tenant(TenantId(1));
        assert_eq!(
            engine.migrate_tenant(TenantId(1), 0).unwrap_err(),
            FleetError::UserSharded {
                tenant: TenantId(1)
            }
        );
        assert_eq!(
            engine.migrate_tenant(TenantId(0), 5).unwrap_err(),
            FleetError::InvalidShard {
                shard: 5,
                shards: 2
            }
        );
        assert_eq!(
            engine.migrate_tenant(TenantId(9), 1).unwrap_err(),
            FleetError::UnknownTenant {
                tenant: TenantId(9)
            }
        );
        let home = engine.shard_of(TenantId(0));
        engine.migrate_tenant(TenantId(0), home).unwrap();
        assert_eq!(engine.displaced_tenants(), 0, "migrating home is a no-op");
    }

    #[test]
    fn rebalance_now_moves_load_off_the_hot_shard() {
        let mut engine = FleetEngine::new(config(), 2, 1).with_rebalancer(
            RebalancerConfig::default()
                .with_ratio(1.0)
                .with_max_moves_per_check(2),
        );
        // pin the skew by construction: three heavy tenants on shard 0,
        // three light ones on shard 1, whichever ids hash there
        let on_zero: Vec<TenantId> = (0..60u32)
            .map(TenantId)
            .filter(|&t| engine.shard_of(t) == 0)
            .take(3)
            .collect();
        let on_one: Vec<TenantId> = (0..60u32)
            .map(TenantId)
            .filter(|&t| engine.shard_of(t) == 1)
            .take(3)
            .collect();
        engine.add_tenants(on_zero.iter().chain(&on_one).copied());
        let batch = || {
            let mut records = Vec::new();
            for &t in &on_zero {
                for u in 0..40u32 {
                    records.push(SlotRecord::new(
                        t,
                        AccelerationGroupId((u % 3 + 1) as u8),
                        UserId(t.0 * 1000 + u),
                    ));
                }
            }
            for &t in &on_one {
                for u in 0..2u32 {
                    records.push(SlotRecord::new(
                        t,
                        AccelerationGroupId(1),
                        UserId(t.0 * 1000 + u),
                    ));
                }
            }
            records
        };
        // four slots stay inside the default warmup: no automatic check yet
        for _ in 0..4 {
            engine.tick_slot(&batch());
        }

        let forecasts_before = engine.forecasts();
        let moves = engine.rebalance_now().expect("a rebalancer is configured");
        assert!(!moves.is_empty(), "the 120:6 skew must trigger a move");
        assert!(moves.iter().all(|m| m.from == 0 && m.to == 1));
        assert!(engine.displaced_tenants() > 0);
        assert_eq!(
            engine.forecasts(),
            forecasts_before,
            "rebalancing moves state without mutating it"
        );
        let snapshot = engine.telemetry().rebalance.unwrap();
        assert_eq!(snapshot.checks, 1);
        assert_eq!(snapshot.triggers, 1);
        assert_eq!(snapshot.migrations, moves.len() as u64);
        assert!(snapshot.last_ratio > 1.0);
        assert!(snapshot.loads_before[0] > snapshot.loads_after[0]);

        // records keep finding their tenants after the move
        engine.tick_slot(&batch());
        assert_eq!(engine.dropped_records(), 0);
        assert!(engine.telemetry().critical_path_ns > 0);
    }

    #[test]
    fn try_tick_mix_errors_when_a_hosted_tenant_is_missing_from_the_mix() {
        let mut engine = FleetEngine::new(config(), 2, 1);
        engine.add_tenants([TenantId(0), TenantId(5)]);
        let mix = mca_workload::TenantMix::heterogeneous(2, 4, config().groups.ids(), 1);
        assert_eq!(
            engine.try_tick_mix(&mix).unwrap_err(),
            FleetError::TenantNotInMix {
                tenant: TenantId(5),
                mix_tenants: 2
            }
        );
        assert_eq!(engine.slot_index(), 0, "the failed tick did not advance");
    }

    #[test]
    fn try_tick_mix_drives_user_sharded_tenants_through_the_batch_path() {
        // the configuration the old generate-inside-the-shard tick_mix had
        // to reject: a user-sharded tenant driven from a mix. Routing the
        // generated records through the batch ingest must match generating
        // the same records by hand and feeding them to the ingest directly.
        let mix = mca_workload::TenantMix::heterogeneous(2, 16, config().groups.ids(), 3);
        let seed = 3; // fleet seed == mix seed: shard streams are canonical

        let mut via_mix = FleetEngine::new(config(), 3, seed);
        via_mix.add_user_sharded_tenant(TenantId(0));
        via_mix.add_tenant(TenantId(1));

        let mut via_batches = FleetEngine::new(config(), 3, seed);
        via_batches.add_user_sharded_tenant(TenantId(0));
        via_batches.add_tenant(TenantId(1));

        let mut streams: Vec<_> = mix.tenant_ids().map(|t| mix.stream_for(t)).collect();
        for slot in 0..6 {
            via_mix
                .try_tick_mix(&mix)
                .expect("both tenants are in the mix");
            let mut batch = Vec::new();
            for tenant in mix.tenant_ids() {
                batch.extend(
                    mix.slot_records(tenant, slot, &mut streams[tenant.0 as usize])
                        .into_iter()
                        .map(|(g, u)| SlotRecord::new(tenant, g, u)),
                );
            }
            via_batches.tick_slot(&batch);
        }
        assert_eq!(via_mix.metrics(), via_batches.metrics());
        assert_eq!(via_mix.forecasts(), via_batches.forecasts());
        assert_eq!(via_mix.dropped_records(), 0);
    }
}
