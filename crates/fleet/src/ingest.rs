//! Batched slot ingest.
//!
//! The front-end hands the fleet one flat batch of `(tenant, group, user)`
//! records per provisioning slot, in arrival order — which interleaves
//! tenants and user ids arbitrarily. Feeding such a stream through
//! [`mca_core::TimeSlot::assign`] pays an ordered insert per record
//! (`O(n)` per out-of-order user); the fleet instead buckets the batch by
//! shard with one [`crate::ShardRouter`] pass and lets every shard build
//! each tenant's slot through [`mca_core::TimeSlotBuilder`] — a single
//! sort + dedup pass per tenant, identical in result to the per-record
//! path.

use crate::router::ShardRouter;
use mca_offload::{AccelerationGroupId, TenantId, UserId};
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One observed assignment: `user` of `tenant` was active in `group` during
/// the current slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// The tenant the user belongs to.
    pub tenant: TenantId,
    /// The acceleration group that served the user.
    pub group: AccelerationGroupId,
    /// The user.
    pub user: UserId,
}

impl SlotRecord {
    /// Convenience constructor.
    pub fn new(tenant: TenantId, group: AccelerationGroupId, user: UserId) -> Self {
        Self {
            tenant,
            group,
            user,
        }
    }
}

impl Snapshot for SlotRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tenant.encode(out);
        self.group.encode(out);
        self.user.encode(out);
    }
}

impl Restore for SlotRecord {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            tenant: TenantId::decode(cur)?,
            group: AccelerationGroupId::decode(cur)?,
            user: UserId::decode(cur)?,
        })
    }
}

/// Buckets a flat arrival-order batch into one vector per shard, preserving
/// the batch's relative order within each bucket (one linear pass).
///
/// Tenants listed in `user_sharded` are the fleet's *huge* tenants — one
/// CloneCloud-style app with a user population too large for a single
/// predictor — and their records route by **user** hash
/// ([`ShardRouter::shard_of_user`]) instead of tenant hash, so every shard
/// serves its own slice of that tenant's population. All other tenants
/// route whole, exactly as before.
pub fn bucket_by_shard(
    records: &[SlotRecord],
    router: &ShardRouter,
    user_sharded: &BTreeSet<TenantId>,
) -> Vec<Vec<SlotRecord>> {
    let mut buckets: Vec<Vec<SlotRecord>> = vec![Vec::new(); router.shards()];
    for &record in records {
        let shard = if user_sharded.contains(&record.tenant) {
            router.shard_of_user(record.user)
        } else {
            router.shard_of_tenant(record.tenant)
        };
        buckets[shard].push(record);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_routes_every_record_and_keeps_relative_order() {
        let router = ShardRouter::new(4);
        let records: Vec<SlotRecord> = (0..100u32)
            .map(|i| {
                SlotRecord::new(
                    TenantId(i % 7),
                    AccelerationGroupId((i % 3 + 1) as u8),
                    UserId(i),
                )
            })
            .collect();
        let buckets = bucket_by_shard(&records, &router, &BTreeSet::new());
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        for (shard, bucket) in buckets.iter().enumerate() {
            // every record landed on its tenant's shard …
            assert!(bucket
                .iter()
                .all(|r| router.shard_of_tenant(r.tenant) == shard));
            // … and user ids of one tenant stay in batch order
            for tenant in 0..7u32 {
                let users: Vec<u32> = bucket
                    .iter()
                    .filter(|r| r.tenant == TenantId(tenant))
                    .map(|r| r.user.0)
                    .collect();
                assert!(users.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn user_sharded_tenants_route_by_user_and_others_by_tenant() {
        let router = ShardRouter::new(5);
        let huge = TenantId(3);
        let records: Vec<SlotRecord> = (0..200u32)
            .map(|i| SlotRecord::new(TenantId(i % 4), AccelerationGroupId(1), UserId(i)))
            .collect();
        let user_sharded: BTreeSet<TenantId> = [huge].into();
        let buckets = bucket_by_shard(&records, &router, &user_sharded);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 200);
        for (shard, bucket) in buckets.iter().enumerate() {
            for r in bucket {
                if r.tenant == huge {
                    assert_eq!(router.shard_of_user(r.user), shard);
                } else {
                    assert_eq!(router.shard_of_tenant(r.tenant), shard);
                }
            }
        }
        // the huge tenant's population actually spreads over several shards
        let occupied = buckets
            .iter()
            .filter(|b| b.iter().any(|r| r.tenant == huge))
            .count();
        assert!(occupied >= 3, "50 users should land on most of 5 shards");
    }
}
