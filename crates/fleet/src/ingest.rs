//! Batched slot ingest.
//!
//! The front-end hands the fleet one flat batch of `(tenant, group, user)`
//! records per provisioning slot, in arrival order — which interleaves
//! tenants and user ids arbitrarily. Feeding such a stream through
//! [`mca_core::TimeSlot::assign`] pays an ordered insert per record
//! (`O(n)` per out-of-order user); the fleet instead buckets the batch by
//! shard with one [`crate::ShardRouter`] pass and lets every shard build
//! each tenant's slot through [`mca_core::TimeSlotBuilder`] — a single
//! sort + dedup pass per tenant, identical in result to the per-record
//! path.

use crate::router::ShardRouter;
use mca_offload::{AccelerationGroupId, TenantId, UserId};
use serde::{Deserialize, Serialize};

/// One observed assignment: `user` of `tenant` was active in `group` during
/// the current slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRecord {
    /// The tenant the user belongs to.
    pub tenant: TenantId,
    /// The acceleration group that served the user.
    pub group: AccelerationGroupId,
    /// The user.
    pub user: UserId,
}

impl SlotRecord {
    /// Convenience constructor.
    pub fn new(tenant: TenantId, group: AccelerationGroupId, user: UserId) -> Self {
        Self {
            tenant,
            group,
            user,
        }
    }
}

/// Buckets a flat arrival-order batch into one vector per shard, preserving
/// the batch's relative order within each bucket (one linear pass).
pub fn bucket_by_shard(records: &[SlotRecord], router: &ShardRouter) -> Vec<Vec<SlotRecord>> {
    let mut buckets: Vec<Vec<SlotRecord>> = vec![Vec::new(); router.shards()];
    for &record in records {
        buckets[router.shard_of_tenant(record.tenant)].push(record);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_routes_every_record_and_keeps_relative_order() {
        let router = ShardRouter::new(4);
        let records: Vec<SlotRecord> = (0..100u32)
            .map(|i| {
                SlotRecord::new(
                    TenantId(i % 7),
                    AccelerationGroupId((i % 3 + 1) as u8),
                    UserId(i),
                )
            })
            .collect();
        let buckets = bucket_by_shard(&records, &router);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 100);
        for (shard, bucket) in buckets.iter().enumerate() {
            // every record landed on its tenant's shard …
            assert!(bucket
                .iter()
                .all(|r| router.shard_of_tenant(r.tenant) == shard));
            // … and user ids of one tenant stay in batch order
            for tenant in 0..7u32 {
                let users: Vec<u32> = bucket
                    .iter()
                    .filter(|r| r.tenant == TenantId(tenant))
                    .map(|r| r.user.0)
                    .collect();
                assert!(users.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
