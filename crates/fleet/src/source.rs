//! Record sources: the unified streaming ingestion surface.
//!
//! Every workload shape the fleet can consume — a recorded [`ArrivalTrace`],
//! an SDN-accelerator [`TraceLog`], a synthetic [`TenantMix`], a replayable
//! batch list, a live push stream — is exposed as one trait:
//! [`RecordSource`], a pull-based stream of per-slot [`SourceBatch`]es. The
//! [`crate::FleetDriver`] multiplexes many sources and drives the engine's
//! predict→allocate→bill cycle slot by slot, so recorded, synthetic and live
//! workloads all travel the **same** ingestion path (and user-sharded
//! tenants, which the old `tick_mix` generation path had to reject, are
//! routed per record like any other batch).
//!
//! Timestamped sources fold their events into slot batches with
//! [`mca_core::SlotWindower`]: out-of-order events within a slot are
//! tolerated, gaps yield empty slots, boundary events deterministically open
//! the later slot, and events arriving after their slot was ticked are
//! dropped and surfaced as `late` counts in the [`crate::DriveReport`].

use crate::error::FleetError;
use crate::ingest::SlotRecord;
use mca_core::{SlotWindower, TraceLog};
use mca_offload::{AccelerationGroupId, TenantId};
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use mca_workload::{ArrivalTrace, TenantMix};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// What one source produced for one provisioning slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceBatch {
    /// The slot's records (tenant-tagged; any order — slots are built with a
    /// single sort + dedup downstream).
    pub records: Vec<SlotRecord>,
    /// End-of-stream marker: `true` when the source will never produce
    /// another record. The driver stops polling an exhausted source.
    pub exhausted: bool,
    /// Events this source dropped since the previous slot because they
    /// arrived after their slot had already been ticked.
    pub late: usize,
    /// The late events broken down by the tenant each dropped record named
    /// (sums to [`SourceBatch::late`] — every dropped record carries a
    /// tenant tag).
    pub late_by_tenant: BTreeMap<TenantId, usize>,
}

impl SourceBatch {
    /// A batch from a still-live source.
    pub fn live(records: Vec<SlotRecord>) -> Self {
        Self {
            records,
            ..Self::default()
        }
    }

    /// An empty end-of-stream batch.
    pub fn end_of_stream() -> Self {
        Self {
            exhausted: true,
            ..Self::default()
        }
    }
}

/// A source-agnostic stream of per-slot record batches.
///
/// `slot` is the engine's global slot index; the driver calls `next_slot`
/// with consecutive indices starting from the engine's clock at
/// registration. Implementations must be deterministic in the slot sequence
/// alone so a replay reproduces the run bit for bit.
///
/// ```
/// use mca_core::SystemConfig;
/// use mca_fleet::{FleetDriver, FleetEngine, RecordSource, SlotRecord, SourceBatch};
/// use mca_offload::{AccelerationGroupId, TenantId, UserId};
///
/// /// Three users of tenant 0, every slot, for four slots.
/// struct Steady;
/// impl RecordSource for Steady {
///     fn next_slot(&mut self, slot: usize) -> SourceBatch {
///         let records = (0..3)
///             .map(|u| SlotRecord::new(TenantId(0), AccelerationGroupId(1), UserId(u)))
///             .collect();
///         SourceBatch { records, exhausted: slot + 1 >= 4, ..SourceBatch::default() }
///     }
/// }
///
/// let mut engine = FleetEngine::new(SystemConfig::paper_three_groups(), 2, 1);
/// engine.add_tenant(TenantId(0));
/// let mut driver = FleetDriver::new(engine)
///     .with_source(TenantId(0), Steady)
///     .unwrap();
/// let report = driver.run(4).unwrap();
/// assert_eq!(report.metrics.slots, 4);
/// assert_eq!(report.records, 12);
/// ```
pub trait RecordSource {
    /// Produces the records of provisioning slot `slot`.
    fn next_slot(&mut self, slot: usize) -> SourceBatch;

    /// Serializes the source's **resume cursor**: the minimal mutable state
    /// a freshly constructed source over the same underlying data needs to
    /// continue this stream exactly where it stands — a replay anchor, RNG
    /// stream words, buffered windower slots. Sources that are pure
    /// functions of the slot index (the default) write nothing.
    fn save_cursor(&self, _out: &mut Vec<u8>) {}

    /// Restores the cursor written by [`RecordSource::save_cursor`] into a
    /// freshly constructed source over the **same underlying data**. The
    /// default accepts only an empty cursor (the driver rejects trailing
    /// bytes after the load).
    ///
    /// # Errors
    ///
    /// A typed [`SnapshotError`] on truncation or on a cursor that
    /// disagrees with the source it is loaded into.
    fn load_cursor(&mut self, _cur: &mut Cursor<'_>) -> Result<(), SnapshotError> {
        Ok(())
    }
}

/// Drains a windower of tenant-tagged records into per-slot batches.
fn drain_windower(mut windower: SlotWindower<SlotRecord>) -> Vec<Vec<SlotRecord>> {
    let mut slots = Vec::new();
    while !windower.is_drained() {
        slots.push(windower.take_next());
    }
    slots
}

/// A precomputed per-slot batch list, **anchored at the first slot it is
/// polled for**: recording slot `i` is served at engine slot `base + i`, so
/// a replay source registered on a pre-ticked engine replays from its own
/// beginning instead of silently losing its head. All replay-shaped sources
/// share this, so they agree on the mid-run-registration contract.
#[derive(Debug, Clone)]
struct ReplaySlots {
    slots: Vec<Vec<SlotRecord>>,
    /// The engine slot the recording's slot 0 was served at (fixed by the
    /// first poll, so replays are deterministic in the slot sequence).
    base: Option<usize>,
}

impl ReplaySlots {
    fn new(slots: Vec<Vec<SlotRecord>>) -> Self {
        Self { slots, base: None }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn next_slot(&mut self, slot: usize) -> SourceBatch {
        let base = *self.base.get_or_insert(slot);
        let index = slot.saturating_sub(base);
        SourceBatch {
            records: self.slots.get(index).cloned().unwrap_or_default(),
            exhausted: index + 1 >= self.slots.len(),
            ..SourceBatch::default()
        }
    }

    /// The cursor is the replay anchor; the slot list itself is rebuilt by
    /// the caller from the original recording, so only its length travels —
    /// as a fingerprint the load can check the replacement against.
    fn save_cursor(&self, out: &mut Vec<u8>) {
        self.slots.len().encode(out);
        self.base.encode(out);
    }

    fn load_cursor(&mut self, cur: &mut Cursor<'_>) -> Result<(), SnapshotError> {
        let len = usize::decode(cur)?;
        if len != self.slots.len() {
            return Err(SnapshotError::Malformed {
                context: "replay source length disagrees with the checkpoint",
            });
        }
        self.base = Option::<usize>::decode(cur)?;
        Ok(())
    }
}

/// A [`RecordSource`] replaying a recorded [`ArrivalTrace`] for one tenant.
///
/// Arrivals carry no acceleration group (routing happens downstream of the
/// trace), so every arrival is attributed to `group` — typically the
/// configuration's entry group, where un-promoted users start. Timestamps
/// are windowed into slots of `slot_length_ms` with the shared boundary and
/// gap semantics of [`SlotWindower`]. Replays anchor at the first slot the
/// driver polls, so nothing is lost when the source joins a pre-ticked
/// engine.
#[derive(Debug, Clone)]
pub struct ArrivalTraceSource {
    slots: ReplaySlots,
}

impl ArrivalTraceSource {
    /// Windows `trace` into per-slot batches for `tenant`.
    pub fn new(
        tenant: TenantId,
        trace: &ArrivalTrace,
        slot_length_ms: f64,
        group: AccelerationGroupId,
    ) -> Self {
        let mut windower = SlotWindower::new(slot_length_ms);
        for arrival in trace.iter() {
            windower.push(
                arrival.time_ms,
                SlotRecord::new(tenant, group, arrival.user),
            );
        }
        Self {
            slots: ReplaySlots::new(drain_windower(windower)),
        }
    }

    /// Number of slots the trace spans (0 for an empty trace).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl RecordSource for ArrivalTraceSource {
    fn next_slot(&mut self, slot: usize) -> SourceBatch {
        self.slots.next_slot(slot)
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        self.slots.save_cursor(out);
    }

    fn load_cursor(&mut self, cur: &mut Cursor<'_>) -> Result<(), SnapshotError> {
        self.slots.load_cursor(cur)
    }
}

/// A [`RecordSource`] replaying an SDN-accelerator request log
/// ([`TraceLog`]) for one tenant — the end-to-end path from a recorded
/// `<timestamp, user, group, …>` trace (§IV-A) into the multi-tenant
/// engine. Each record keeps the acceleration group that actually served
/// it. Replays anchor at the first slot the driver polls.
#[derive(Debug, Clone)]
pub struct TraceLogSource {
    slots: ReplaySlots,
}

impl TraceLogSource {
    /// Windows `log` into per-slot batches for `tenant`.
    pub fn new(tenant: TenantId, log: &TraceLog, slot_length_ms: f64) -> Self {
        let mut windower = SlotWindower::new(slot_length_ms);
        for (time_ms, group, user) in log.assignments() {
            windower.push(time_ms, SlotRecord::new(tenant, group, user));
        }
        Self {
            slots: ReplaySlots::new(drain_windower(windower)),
        }
    }

    /// Number of slots the log spans (0 for an empty log).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl RecordSource for TraceLogSource {
    fn next_slot(&mut self, slot: usize) -> SourceBatch {
        self.slots.next_slot(slot)
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        self.slots.save_cursor(out);
    }

    fn load_cursor(&mut self, cur: &mut Cursor<'_>) -> Result<(), SnapshotError> {
        self.slots.load_cursor(cur)
    }
}

/// A [`RecordSource`] generating one tenant's synthetic workload from a
/// [`TenantMix`], drawing churn from the tenant's canonical stream
/// ([`TenantMix::stream_for`]). Never exhausts.
///
/// Because the generated records travel the ordinary per-record batch path,
/// a mix-backed source drives **user-sharded** tenants correctly (each
/// record routes to its user's shard) — the configuration the old
/// generation-inside-the-shard `tick_mix` path had to reject.
#[derive(Debug, Clone)]
pub struct TenantMixSource {
    /// Shared, not cloned per tenant: a fleet-wide `with_mix` registers one
    /// source per tenant over one mix.
    mix: Rc<TenantMix>,
    tenant: TenantId,
    rng: StdRng,
}

impl TenantMixSource {
    /// Creates the source for `tenant`, seeding the tenant's canonical
    /// stream from the mix.
    ///
    /// # Errors
    ///
    /// [`FleetError::TenantNotInMix`] when the mix does not define `tenant`.
    pub fn new(mix: &TenantMix, tenant: TenantId) -> Result<Self, FleetError> {
        Self::from_shared(Rc::new(mix.clone()), tenant)
    }

    /// Like [`TenantMixSource::new`], but sharing one mix allocation across
    /// many per-tenant sources (what [`crate::FleetDriver::with_mix`] uses).
    pub fn from_shared(mix: Rc<TenantMix>, tenant: TenantId) -> Result<Self, FleetError> {
        if tenant.0 as usize >= mix.tenants() {
            return Err(FleetError::TenantNotInMix {
                tenant,
                mix_tenants: mix.tenants(),
            });
        }
        let rng = mix.stream_for(tenant);
        Ok(Self { mix, tenant, rng })
    }
}

impl RecordSource for TenantMixSource {
    fn next_slot(&mut self, slot: usize) -> SourceBatch {
        let records = self
            .mix
            .slot_records(self.tenant, slot, &mut self.rng)
            .into_iter()
            .map(|(group, user)| SlotRecord::new(self.tenant, group, user))
            .collect();
        SourceBatch::live(records)
    }

    /// The cursor is the tenant's RNG stream position (the mix itself is
    /// immutable shared data the caller reconstructs).
    fn save_cursor(&self, out: &mut Vec<u8>) {
        self.tenant.encode(out);
        self.rng.state().encode(out);
    }

    fn load_cursor(&mut self, cur: &mut Cursor<'_>) -> Result<(), SnapshotError> {
        let tenant = TenantId::decode(cur)?;
        if tenant != self.tenant {
            return Err(SnapshotError::Malformed {
                context: "mix source cursor belongs to another tenant",
            });
        }
        self.rng = StdRng::from_state(<[u64; 4]>::decode(cur)?);
        Ok(())
    }
}

/// Shared queue behind [`SlotBatchSource`].
#[derive(Debug, Default)]
struct BatchQueue {
    batches: VecDeque<Vec<SlotRecord>>,
    closed: bool,
}

/// A [`RecordSource`] serving pre-bucketed per-slot record batches — the
/// replay shape (`Vec<Vec<SlotRecord>>`, anchored at the first slot
/// polled) and, through [`SlotBatchSource::channel`], a push-fed live lane:
/// a front-end holds the [`SlotBatchHandle`] and enqueues each slot's batch
/// as it closes, while the driver drains the queue one batch per tick.
/// Batches may span many tenants; a slot with no queued batch yields an
/// empty batch (the stream is live but idle).
#[derive(Debug)]
pub struct SlotBatchSource {
    inner: BatchInner,
}

/// The two serving modes of [`SlotBatchSource`].
#[derive(Debug)]
enum BatchInner {
    /// Closed recording, indexed by slot relative to the first poll.
    Replay(ReplaySlots),
    /// Open push-fed lane, drained one batch per tick.
    Live(Rc<RefCell<BatchQueue>>),
}

/// The producer half of [`SlotBatchSource::channel`].
#[derive(Debug, Clone)]
pub struct SlotBatchHandle {
    queue: Rc<RefCell<BatchQueue>>,
}

impl SlotBatchHandle {
    /// Enqueues the next slot's records.
    pub fn push_slot(&self, records: Vec<SlotRecord>) {
        self.queue.borrow_mut().batches.push_back(records);
    }

    /// Marks the stream finished: once the queue drains, the source reports
    /// end-of-stream.
    pub fn close(&self) {
        self.queue.borrow_mut().closed = true;
    }
}

impl SlotBatchSource {
    /// A closed, replayable source over a recorded batch list: recording
    /// slot `i` serves at the `i`-th slot the driver polls (anchored at the
    /// first poll), and the stream ends with the last batch.
    pub fn new(batches: Vec<Vec<SlotRecord>>) -> Self {
        Self {
            inner: BatchInner::Replay(ReplaySlots::new(batches)),
        }
    }

    /// An open live lane: the returned handle feeds batches in, the source
    /// hands them to the driver one slot at a time.
    pub fn channel() -> (SlotBatchHandle, Self) {
        let queue = Rc::new(RefCell::new(BatchQueue::default()));
        (
            SlotBatchHandle {
                queue: Rc::clone(&queue),
            },
            Self {
                inner: BatchInner::Live(queue),
            },
        )
    }
}

impl RecordSource for SlotBatchSource {
    fn next_slot(&mut self, slot: usize) -> SourceBatch {
        match &mut self.inner {
            BatchInner::Replay(slots) => slots.next_slot(slot),
            BatchInner::Live(queue) => {
                let mut queue = queue.borrow_mut();
                let records = queue.batches.pop_front().unwrap_or_default();
                SourceBatch {
                    records,
                    exhausted: queue.closed && queue.batches.is_empty(),
                    ..SourceBatch::default()
                }
            }
        }
    }

    /// A replay lane saves its anchor; a live lane saves the queued batches
    /// themselves (they exist nowhere else — the producer already moved on).
    fn save_cursor(&self, out: &mut Vec<u8>) {
        match &self.inner {
            BatchInner::Replay(slots) => {
                0u8.encode(out);
                slots.save_cursor(out);
            }
            BatchInner::Live(queue) => {
                1u8.encode(out);
                let queue = queue.borrow();
                queue.batches.encode(out);
                queue.closed.encode(out);
            }
        }
    }

    fn load_cursor(&mut self, cur: &mut Cursor<'_>) -> Result<(), SnapshotError> {
        let mode = u8::decode(cur)?;
        match (&mut self.inner, mode) {
            (BatchInner::Replay(slots), 0) => slots.load_cursor(cur),
            (BatchInner::Live(queue), 1) => {
                let batches = VecDeque::<Vec<SlotRecord>>::decode(cur)?;
                let closed = bool::decode(cur)?;
                let mut queue = queue.borrow_mut();
                queue.batches = batches;
                queue.closed = closed;
                Ok(())
            }
            _ => Err(SnapshotError::Malformed {
                context: "slot batch source mode disagrees with the checkpoint",
            }),
        }
    }
}

/// Shared state behind [`StreamSource`].
#[derive(Debug)]
struct StreamQueue {
    windower: SlotWindower<SlotRecord>,
    closed: bool,
    /// Late events already surfaced in an earlier [`SourceBatch`].
    reported_late: usize,
    /// Per-tenant breakdown of late events not yet surfaced (every dropped
    /// record names its tenant, so attribution is exact).
    pending_late_by_tenant: BTreeMap<TenantId, usize>,
}

/// A [`RecordSource`] over a **live record stream**: timestamped records are
/// pushed through a [`StreamHandle`] as they happen (in any order within a
/// slot), and the source windows them into the slot the driver is ticking.
/// Records arriving after their slot was ticked are dropped and surfaced as
/// `late` counts.
#[derive(Debug)]
pub struct StreamSource {
    queue: Rc<RefCell<StreamQueue>>,
}

/// The producer half of [`StreamSource::channel`].
#[derive(Debug, Clone)]
pub struct StreamHandle {
    queue: Rc<RefCell<StreamQueue>>,
}

impl StreamHandle {
    /// Pushes one timestamped record. Returns `false` when the record's slot
    /// was already ticked (it is dropped and counted late against the
    /// record's tenant).
    pub fn push(&self, time_ms: f64, record: SlotRecord) -> bool {
        let tenant = record.tenant;
        let mut queue = self.queue.borrow_mut();
        let accepted = queue.windower.push(time_ms, record);
        if !accepted {
            *queue.pending_late_by_tenant.entry(tenant).or_insert(0) += 1;
        }
        accepted
    }

    /// Marks the stream finished: once the buffered slots drain, the source
    /// reports end-of-stream.
    pub fn close(&self) {
        self.queue.borrow_mut().closed = true;
    }
}

impl StreamSource {
    /// An open live stream over slots of `slot_length_ms`.
    pub fn channel(slot_length_ms: f64) -> (StreamHandle, Self) {
        let queue = Rc::new(RefCell::new(StreamQueue {
            windower: SlotWindower::new(slot_length_ms),
            closed: false,
            reported_late: 0,
            pending_late_by_tenant: BTreeMap::new(),
        }));
        (
            StreamHandle {
                queue: Rc::clone(&queue),
            },
            Self { queue },
        )
    }
}

impl RecordSource for StreamSource {
    /// The cursor is the whole windower — buffered slots, clock, late
    /// accounting — plus the stream's close flag: records pushed but not
    /// yet ticked exist nowhere else.
    fn save_cursor(&self, out: &mut Vec<u8>) {
        let queue = self.queue.borrow();
        let (slot_length_ms, pending, next_slot, late_events) = queue.windower.parts();
        slot_length_ms.encode(out);
        pending.encode(out);
        next_slot.encode(out);
        late_events.encode(out);
        queue.closed.encode(out);
        queue.reported_late.encode(out);
        queue.pending_late_by_tenant.encode(out);
    }

    fn load_cursor(&mut self, cur: &mut Cursor<'_>) -> Result<(), SnapshotError> {
        let slot_length_ms = f64::decode(cur)?;
        let pending = BTreeMap::<usize, Vec<SlotRecord>>::decode(cur)?;
        let next_slot = usize::decode(cur)?;
        let late_events = usize::decode(cur)?;
        let closed = bool::decode(cur)?;
        let reported_late = usize::decode(cur)?;
        let pending_late_by_tenant = BTreeMap::<TenantId, usize>::decode(cur)?;
        if reported_late > late_events {
            return Err(SnapshotError::Malformed {
                context: "stream source reported more late events than it saw",
            });
        }
        let mut queue = self.queue.borrow_mut();
        if slot_length_ms.to_bits() != queue.windower.parts().0.to_bits() {
            return Err(SnapshotError::Malformed {
                context: "stream source slot length disagrees with the checkpoint",
            });
        }
        queue.windower = SlotWindower::from_parts(slot_length_ms, pending, next_slot, late_events)
            .ok_or(SnapshotError::Malformed {
                context: "stream source windower state is inconsistent",
            })?;
        queue.closed = closed;
        queue.reported_late = reported_late;
        queue.pending_late_by_tenant = pending_late_by_tenant;
        Ok(())
    }

    fn next_slot(&mut self, slot: usize) -> SourceBatch {
        let mut queue = self.queue.borrow_mut();
        // fold every buffered slot up to the requested one into this batch
        // (they are the same provisioning slot from the driver's viewpoint
        // when the source was registered mid-run)
        let mut records = Vec::new();
        while queue.windower.next_slot() <= slot {
            records.extend(queue.windower.take_next());
        }
        let late = queue.windower.late_events() - queue.reported_late;
        queue.reported_late = queue.windower.late_events();
        let late_by_tenant = std::mem::take(&mut queue.pending_late_by_tenant);
        SourceBatch {
            records,
            exhausted: queue.closed && queue.windower.is_drained(),
            late,
            late_by_tenant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::UserId;
    use mca_offload::{TaskKind, TaskSpec};
    use mca_workload::Arrival;

    const GROUP: AccelerationGroupId = AccelerationGroupId(1);

    fn arrival(t: f64, user: u32) -> Arrival {
        Arrival {
            time_ms: t,
            user: UserId(user),
            task: TaskSpec::new(TaskKind::Minimax, 5),
        }
    }

    #[test]
    fn arrival_trace_source_windows_boundaries_gaps_and_short_traces() {
        let trace = ArrivalTrace::new(vec![
            arrival(0.0, 1),     // boundary of slot 0
            arrival(999.0, 2),   // still slot 0
            arrival(1_000.0, 3), // boundary: slot 1
            arrival(3_500.0, 4), // slot 3 — slot 2 is a gap
        ]);
        let mut source = ArrivalTraceSource::new(TenantId(7), &trace, 1_000.0, GROUP);
        assert_eq!(source.slot_count(), 4);
        let slot0 = source.next_slot(0);
        assert_eq!(
            slot0.records,
            vec![
                SlotRecord::new(TenantId(7), GROUP, UserId(1)),
                SlotRecord::new(TenantId(7), GROUP, UserId(2)),
            ]
        );
        assert!(!slot0.exhausted);
        assert_eq!(source.next_slot(1).records.len(), 1);
        let gap = source.next_slot(2);
        assert!(
            gap.records.is_empty() && !gap.exhausted,
            "interior gap slot"
        );
        let last = source.next_slot(3);
        assert_eq!(
            last.records,
            vec![SlotRecord::new(TenantId(7), GROUP, UserId(4))]
        );
        assert!(
            last.exhausted,
            "final slot carries the end-of-stream marker"
        );

        // a trace shorter than one slot is a one-slot stream
        let short = ArrivalTrace::new(vec![arrival(10.0, 1), arrival(20.0, 2)]);
        let mut source = ArrivalTraceSource::new(TenantId(0), &short, 60_000.0, GROUP);
        assert_eq!(source.slot_count(), 1);
        let batch = source.next_slot(0);
        assert_eq!(batch.records.len(), 2);
        assert!(batch.exhausted);

        // an empty trace exhausts immediately
        let mut empty =
            ArrivalTraceSource::new(TenantId(0), &ArrivalTrace::default(), 1_000.0, GROUP);
        let batch = empty.next_slot(0);
        assert!(batch.records.is_empty() && batch.exhausted);
    }

    #[test]
    fn trace_log_source_keeps_serving_groups_and_tolerates_out_of_order() {
        let record = |t: f64, user: u32, group: u8| mca_offload::TraceRecord {
            timestamp_ms: t,
            user: UserId(user),
            group: AccelerationGroupId(group),
            battery_level: 80.0,
            round_trip_ms: 100.0,
            t1_ms: 10.0,
            t2_ms: 20.0,
            t_cloud_ms: 70.0,
            success: true,
        };
        // out of order *within* slot 0 — the windower tolerates it
        let log: TraceLog = vec![
            record(800.0, 2, 2),
            record(100.0, 1, 1),
            record(1_200.0, 3, 3),
        ]
        .into_iter()
        .collect();
        let mut source = TraceLogSource::new(TenantId(4), &log, 1_000.0);
        assert_eq!(source.slot_count(), 2);
        let slot0 = source.next_slot(0);
        assert_eq!(
            slot0.records,
            vec![
                SlotRecord::new(TenantId(4), AccelerationGroupId(2), UserId(2)),
                SlotRecord::new(TenantId(4), AccelerationGroupId(1), UserId(1)),
            ]
        );
        assert!(source.next_slot(1).exhausted);
    }

    #[test]
    fn mix_source_replays_the_canonical_stream_and_rejects_unknown_tenants() {
        let mix = TenantMix::heterogeneous(3, 12, vec![GROUP], 9);
        let mut source = TenantMixSource::new(&mix, TenantId(1)).unwrap();
        let mut rng = mix.stream_for(TenantId(1));
        for slot in 0..8 {
            let expected: Vec<SlotRecord> = mix
                .slot_records(TenantId(1), slot, &mut rng)
                .into_iter()
                .map(|(g, u)| SlotRecord::new(TenantId(1), g, u))
                .collect();
            let batch = source.next_slot(slot);
            assert_eq!(batch.records, expected, "slot {slot}");
            assert!(!batch.exhausted, "a mix never ends");
        }
        assert_eq!(
            TenantMixSource::new(&mix, TenantId(3)).unwrap_err(),
            FleetError::TenantNotInMix {
                tenant: TenantId(3),
                mix_tenants: 3
            }
        );
    }

    #[test]
    fn slot_batch_source_replays_and_streams() {
        let batch = |user: u32| vec![SlotRecord::new(TenantId(0), GROUP, UserId(user))];
        // replay: closed from the start
        let mut replay = SlotBatchSource::new(vec![batch(1), batch(2)]);
        assert!(!replay.next_slot(0).exhausted);
        let last = replay.next_slot(1);
        assert_eq!(last.records, batch(2));
        assert!(last.exhausted);

        // live lane: open until the handle closes it
        let (handle, mut live) = SlotBatchSource::channel();
        handle.push_slot(batch(3));
        let first = live.next_slot(0);
        assert_eq!(first.records, batch(3));
        assert!(!first.exhausted);
        let idle = live.next_slot(1);
        assert!(idle.records.is_empty() && !idle.exhausted, "idle, not over");
        handle.push_slot(batch(4));
        handle.close();
        assert!(live.next_slot(2).exhausted);
    }

    #[test]
    fn stream_source_windows_live_pushes_and_counts_late_records() {
        let (handle, mut source) = StreamSource::channel(1_000.0);
        let rec = |user: u32| SlotRecord::new(TenantId(0), GROUP, UserId(user));
        assert!(handle.push(700.0, rec(2)));
        assert!(handle.push(100.0, rec(1)), "out of order within the slot");
        let batch = source.next_slot(0);
        assert_eq!(batch.records, vec![rec(2), rec(1)]);
        assert_eq!(batch.late, 0);

        // slot 0 was ticked: a straggler for it is late
        assert!(!handle.push(900.0, rec(3)));
        assert!(handle.push(1_500.0, rec(4)));
        let batch = source.next_slot(1);
        assert_eq!(batch.records, vec![rec(4)]);
        assert_eq!(batch.late, 1, "the straggler is surfaced once");
        assert_eq!(batch.late_by_tenant.get(&TenantId(0)), Some(&1));
        assert!(!batch.exhausted);

        handle.close();
        let last = source.next_slot(2);
        assert!(last.records.is_empty() && last.exhausted);
        assert_eq!(last.late, 0, "late counts are not re-reported");
    }
}
