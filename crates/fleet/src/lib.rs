//! # mca-fleet — multi-tenant sharded prediction/allocation engine
//!
//! The paper's closed loop (Fig. 2) models **one** operator: one slot
//! history, one predictor, one allocator, one instance pool. A
//! production-scale acceleration service hosts *many* operators at once —
//! the per-user elastic clouds of ThinkAir and the per-device clones of
//! CloneCloud are the canonical settings — and each tenant's workload must
//! be predicted and provisioned from that tenant's **own** knowledge base:
//! merging histories would let one tenant's churn poison every neighbour's
//! nearest-slot matches. This crate shards the closed loop:
//!
//! * [`router`] — [`ShardRouter`]: a pure SplitMix64 hash from tenant (or
//!   user) id to shard index, so every front-end and every replay agrees on
//!   placement without coordination.
//! * [`shard`] — [`TenantShard`]: one tenant's [`mca_core::WorkloadPredictor`]
//!   plus [`mca_core::ResourceAllocator`] plus [`mca_cloudsim::InstancePool`]
//!   and a private RNG stream; its `tick` replays the exact
//!   score→learn→predict→allocate→bill cycle of the single-operator
//!   [`mca_core::System`].
//! * [`ingest`] — batched slot ingest: one flat arrival-order record batch
//!   per slot, bucketed by shard in one pass and materialized per tenant
//!   with [`mca_core::TimeSlotBuilder`]'s single sort + dedup instead of a
//!   per-record ordered insert.
//! * [`source`] — the unified streaming ingestion surface:
//!   [`RecordSource`], a source-agnostic stream of per-slot
//!   [`SourceBatch`]es, with adapters for every workload shape — recorded
//!   arrival traces ([`ArrivalTraceSource`]), SDN-accelerator request logs
//!   ([`TraceLogSource`]), synthetic tenant mixes ([`TenantMixSource`]),
//!   replayable batch lists and push-fed live streams
//!   ([`SlotBatchSource`], [`StreamSource`]). Timestamped sources window
//!   their events with [`mca_core::SlotWindower`].
//! * [`driver`] — [`FleetDriver`]: multiplexes many sources, drives the
//!   engine slot by slot and reports a [`DriveReport`] (forecasts, rollup,
//!   late/dropped-record accounting). Misuse surfaces as a typed
//!   [`FleetError`] instead of a panic.
//! * [`engine`] — [`FleetEngine`]: owns the shards and runs every shard's
//!   tick concurrently on a rayon thread pool. Per-tenant forecasts are
//!   bit-identical to running each tenant alone, whatever the shard count
//!   or thread count, because shards share no state, RNG streams are seeded
//!   per tenant and the nearest-neighbour tie-break stays first-minimum.
//!   One **huge** tenant (the CloneCloud-style single app with an outsized
//!   clone population) can instead be *user-sharded*
//!   ([`FleetEngine::add_user_sharded_tenant`]): every shard hosts a
//!   replica serving its own hash-slice of the population, and the engine
//!   combines slice forecasts and metrics into the tenant-wide view.
//! * [`metrics`] — [`TenantMetrics`] / [`FleetMetrics`]: per-tenant
//!   accuracy, spend, allocation volume and — under datacenter billing —
//!   SLA, energy and placement accounting, folded (in tenant-id order, so
//!   bitwise reproducibly) into fleet-wide rollups. Each shard can bill
//!   against a simulated datacenter ([`mca_core::BillingEngine`] wrapping
//!   [`mca_cloudsim::Datacenter`]); the datacenter migrates with the tenant,
//!   and [`FleetEngine::placement_health`] surfaces host exhaustion as a
//!   typed [`FleetError::Placement`] instead of a panic (see
//!   `docs/datacenter.md`).
//! * [`rebalance`] — the elastic placement layer: [`Rebalancer`] runs
//!   between slots off each tenant's deterministic users-per-tick load
//!   EWMA, and when the hottest shard's load diverges from the mean
//!   (pluggable [`RebalanceTrigger`]) it live-migrates the heaviest movable
//!   tenants onto the coldest shard (pluggable [`MigrationChooser`],
//!   deterministic tie-breaks). Migration moves the whole [`TenantShard`] —
//!   history, nearest-slot index, RNG stream, warm allocation memo cache,
//!   standing forecast, pool, metrics — and records follow through the
//!   router's indirection table, so forecasts and [`FleetMetrics`] stay
//!   bit-identical to a never-rebalanced fleet under any migration
//!   schedule.
//! * [`telemetry`] — the observability layer over [`mca_telemetry`]: every
//!   engine instruments itself by default ([`TelemetryMode::Monotonic`]),
//!   histogramming the per-slot ingest+tick latency and each tenant's
//!   windowing → predict → allocate → bill stages, and tracking per-shard
//!   load/latency EWMAs. [`FleetEngine::telemetry`] returns the
//!   [`FleetTelemetry`] snapshot (also on [`DriveReport`]);
//!   [`FleetEngine::telemetry_registry`] assembles the full metric registry
//!   for Prometheus-text / JSON exposition. Instrumentation never perturbs
//!   forecasts or metrics, and under [`TelemetryMode::Logical`] the
//!   snapshot itself is bit-identical at any thread count (see
//!   `tests/determinism.rs` and `docs/observability.md`).
//!
//! # Quick start
//!
//! ```
//! use mca_core::SystemConfig;
//! use mca_fleet::{FleetDriver, FleetEngine};
//! use mca_workload::TenantMix;
//!
//! let config = SystemConfig::paper_three_groups().with_history_window(64);
//! let mix = TenantMix::heterogeneous(8, 16, config.groups.ids(), 7);
//! let mut engine = FleetEngine::new(config, 4, 7);
//! engine.add_tenants(mix.tenant_ids());
//! let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();
//! let report = driver.run(12).unwrap();
//! assert_eq!(report.metrics.tenants, 8);
//! assert!(report.metrics.mean_accuracy.unwrap() > 0.0);
//! assert_eq!(report.late_records + report.dropped_records, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod engine;
pub mod error;
pub mod ingest;
pub mod metrics;
pub mod rebalance;
pub mod router;
pub mod shard;
pub mod source;
pub mod telemetry;

pub use driver::{DriveReport, FleetDriver};
pub use engine::FleetEngine;
pub use error::FleetError;
pub use ingest::SlotRecord;
pub use metrics::{FleetMetrics, TenantMetrics};
pub use rebalance::{
    MigrationChooser, MigrationRecord, RebalanceSnapshot, RebalanceTrigger, Rebalancer,
    RebalancerConfig,
};
pub use router::ShardRouter;
pub use shard::TenantShard;
pub use source::{
    ArrivalTraceSource, RecordSource, SlotBatchHandle, SlotBatchSource, SourceBatch, StreamHandle,
    StreamSource, TenantMixSource, TraceLogSource,
};
pub use telemetry::{FleetTelemetry, ShardLoad, ShardTelemetry, StageHistograms, TelemetryMode};
