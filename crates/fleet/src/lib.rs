//! # mca-fleet — multi-tenant sharded prediction/allocation engine
//!
//! The paper's closed loop (Fig. 2) models **one** operator: one slot
//! history, one predictor, one allocator, one instance pool. A
//! production-scale acceleration service hosts *many* operators at once —
//! the per-user elastic clouds of ThinkAir and the per-device clones of
//! CloneCloud are the canonical settings — and each tenant's workload must
//! be predicted and provisioned from that tenant's **own** knowledge base:
//! merging histories would let one tenant's churn poison every neighbour's
//! nearest-slot matches. This crate shards the closed loop:
//!
//! * [`router`] — [`ShardRouter`]: a pure SplitMix64 hash from tenant (or
//!   user) id to shard index, so every front-end and every replay agrees on
//!   placement without coordination.
//! * [`shard`] — [`TenantShard`]: one tenant's [`mca_core::WorkloadPredictor`]
//!   plus [`mca_core::ResourceAllocator`] plus [`mca_cloudsim::InstancePool`]
//!   and a private RNG stream; its `tick` replays the exact
//!   score→learn→predict→allocate→bill cycle of the single-operator
//!   [`mca_core::System`].
//! * [`ingest`] — batched slot ingest: one flat arrival-order record batch
//!   per slot, bucketed by shard in one pass and materialized per tenant
//!   with [`mca_core::TimeSlotBuilder`]'s single sort + dedup instead of a
//!   per-record ordered insert.
//! * [`engine`] — [`FleetEngine`]: owns the shards and runs every shard's
//!   tick concurrently on a rayon thread pool. Per-tenant forecasts are
//!   bit-identical to running each tenant alone, whatever the shard count
//!   or thread count, because shards share no state, RNG streams are seeded
//!   per tenant and the nearest-neighbour tie-break stays first-minimum.
//!   One **huge** tenant (the CloneCloud-style single app with an outsized
//!   clone population) can instead be *user-sharded*
//!   ([`FleetEngine::add_user_sharded_tenant`]): every shard hosts a
//!   replica serving its own hash-slice of the population, and the engine
//!   combines slice forecasts and metrics into the tenant-wide view.
//! * [`metrics`] — [`TenantMetrics`] / [`FleetMetrics`]: per-tenant
//!   accuracy, spend and allocation volume folded (in tenant-id order, so
//!   bitwise reproducibly) into fleet-wide rollups.
//!
//! # Quick start
//!
//! ```
//! use mca_core::SystemConfig;
//! use mca_fleet::FleetEngine;
//! use mca_workload::TenantMix;
//!
//! let config = SystemConfig::paper_three_groups().with_history_window(64);
//! let mix = TenantMix::heterogeneous(8, 16, config.groups.ids(), 7);
//! let mut engine = FleetEngine::new(config, 4, 7);
//! engine.add_tenants(mix.tenant_ids());
//! for _ in 0..12 {
//!     engine.tick_mix(&mix);
//! }
//! let rollup = engine.metrics();
//! assert_eq!(rollup.tenants, 8);
//! assert!(rollup.mean_accuracy.unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod ingest;
pub mod metrics;
pub mod router;
pub mod shard;

pub use engine::FleetEngine;
pub use ingest::SlotRecord;
pub use metrics::{FleetMetrics, TenantMetrics};
pub use router::ShardRouter;
pub use shard::TenantShard;
