//! The per-tenant provisioning state: one closed loop per tenant.
//!
//! A [`TenantShard`] is the multi-tenant unit of the paper's Fig. 2 loop: it
//! owns one tenant's [`WorkloadPredictor`] (the tenant's private knowledge
//! base), [`ResourceAllocator`] and [`InstancePool`], plus the tenant's own
//! deterministic RNG stream. Every provisioning tick replays the cycle the
//! single-operator [`mca_core::System`] runs at each slot boundary — score
//! the previous forecast, learn the observed slot, forecast the next one,
//! allocate and bill — so a fleet of shards is semantically *exactly* a set
//! of independent single-tenant systems, just executed batched and in
//! parallel.

use crate::metrics::TenantMetrics;
use crate::telemetry::{ewma, ShardTelemetry};
use mca_cloudsim::{Datacenter, InstancePool, PlacementError};
use mca_core::{
    accuracy, Allocation, BillingBackend, BillingEngine, ResourceAllocator, SlotHistory,
    SystemConfig, TimeSlot, WorkloadForecast, WorkloadPredictor,
};
use mca_offload::{AccelerationGroupId, TenantId};
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Upper bound on memoized allocations per tenant. Steady tenants cycle
/// through a handful of workload vectors, so the cap is generous; a tenant
/// that exceeds it evicts one entry per new insertion, oldest first (FIFO
/// by insertion order), so the recent working set keeps serving hits and
/// the just-inserted vector is never the victim. Eviction depends only on
/// the tenant's own forecast sequence, so it is deterministic across runs,
/// shard layouts and thread counts.
const ALLOC_CACHE_CAP: usize = 1024;

/// One tenant's predictor + allocator + instance pool + RNG stream.
#[derive(Debug, Clone)]
pub struct TenantShard {
    id: TenantId,
    predictor: WorkloadPredictor,
    allocator: ResourceAllocator,
    pool: InstancePool,
    /// The bill stage's backend: pure arithmetic by default, a transaction
    /// against a per-tenant simulated datacenter when the configuration
    /// enabled one. Lives inside the shard, so a tenant migration carries
    /// the standing placement with it.
    billing: BillingEngine,
    rng: StdRng,
    metrics: TenantMetrics,
    /// Forecast produced at the end of the previous slot, scored against the
    /// next observed slot.
    pending_forecast: Option<WorkloadForecast>,
    slot_length_ms: f64,
    /// Memoized allocations keyed by the forecast workload vector: steady
    /// tenants re-predict the same per-group loads slot after slot, so the
    /// ILP re-solve is skipped entirely on repeats. The allocator is a pure
    /// function of the forecast, which makes the cache exact.
    alloc_cache: HashMap<Vec<(AccelerationGroupId, usize)>, Allocation>,
    /// Insertion order of the memoized workload vectors (front = oldest):
    /// the FIFO eviction queue behind [`ALLOC_CACHE_CAP`]. Always in sync
    /// with `alloc_cache` — entries enter and leave both together.
    alloc_cache_order: VecDeque<Vec<(AccelerationGroupId, usize)>>,
    /// EWMA of observed users per tick — the tenant's contribution to its
    /// shard's load, and the signal the rebalancer ranks tenants by. Derived
    /// purely from the observed slot populations, so it is independent of
    /// placement, thread count and telemetry mode.
    load_ewma: f64,
}

impl TenantShard {
    /// Derives the tenant's RNG stream seed from the fleet seed. The
    /// derivation matches `TenantMix::stream_for`, so a mix-driven fleet run
    /// (same fleet and mix seed) is replayable either through a standalone
    /// `TenantShard` or through the mix's own stream API — `tick_mix`
    /// generates exactly the records `TenantMix::stream_for` would.
    pub fn stream_seed(fleet_seed: u64, tenant: TenantId) -> u64 {
        fleet_seed ^ u64::from(tenant.0).wrapping_mul(0xBF58_476D_1CE4_E5B9)
    }

    /// Creates the tenant's provisioning state from the shared system
    /// configuration (groups, strategies, caps and history window all come
    /// from [`SystemConfig`], exactly as [`mca_core::System::new`] builds
    /// its single-operator equivalents).
    pub fn new(id: TenantId, config: &SystemConfig, fleet_seed: u64) -> Self {
        Self {
            id,
            predictor: config.build_predictor(),
            allocator: config.build_allocator(),
            pool: config.build_pool(),
            billing: config.build_billing(),
            rng: StdRng::seed_from_u64(Self::stream_seed(fleet_seed, id)),
            metrics: TenantMetrics::new(id),
            pending_forecast: None,
            slot_length_ms: config.slot_length_ms,
            alloc_cache: HashMap::new(),
            alloc_cache_order: VecDeque::new(),
            load_ewma: 0.0,
        }
    }

    /// The tenant this shard serves.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant's accumulated accounting.
    pub fn metrics(&self) -> &TenantMetrics {
        &self.metrics
    }

    /// The forecast standing for the *next* slot, if one was produced.
    pub fn forecast(&self) -> Option<&WorkloadForecast> {
        self.pending_forecast.as_ref()
    }

    /// The tenant's knowledge base.
    pub fn predictor(&self) -> &WorkloadPredictor {
        &self.predictor
    }

    /// The tenant's instance pool.
    pub fn pool(&self) -> &InstancePool {
        &self.pool
    }

    /// The tenant's billing engine.
    pub fn billing(&self) -> &BillingEngine {
        &self.billing
    }

    /// The tenant's simulated datacenter, when the fleet bills against one.
    pub fn datacenter(&self) -> Option<&Datacenter> {
        self.billing.datacenter()
    }

    /// The tenant's standing placement failure, if its most recent
    /// placement transaction found no host (host exhaustion never panics —
    /// the engine surfaces it as `FleetError::Placement`).
    pub fn placement_error(&self) -> Option<&PlacementError> {
        self.billing.placement_error()
    }

    /// The tenant's private RNG stream (used by synthetic workload
    /// generation; batched external ingest never touches it).
    pub fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// EWMA of the tenant's observed users per tick — the load the tenant
    /// contributes to whichever shard hosts it. A pure function of the
    /// tenant's own observed slots (first sample seeds, later samples fold
    /// in at 1/8), so moving the tenant between shards never changes it.
    pub fn load_ewma(&self) -> f64 {
        self.load_ewma
    }

    /// Runs one provisioning tick on the observed `slot`: scores the
    /// standing forecast against it, folds it into the knowledge base,
    /// forecasts the next slot, allocates for that forecast and bills the
    /// allocation for one slot length. `now_ms` is the closing slot
    /// boundary.
    pub fn tick(&mut self, slot: TimeSlot, now_ms: f64) {
        self.tick_instrumented(slot, now_ms, &mut ShardTelemetry::disabled());
    }

    /// [`TenantShard::tick`] with stage tracing: the predict, allocate and
    /// billing phases are each timed against `telemetry`'s clock. The
    /// instrumented and plain ticks are the same code — `tick` delegates here
    /// with a disabled telemetry whose clock reads cost one branch — so
    /// forecasts and metrics are bit-identical in every telemetry mode.
    pub fn tick_instrumented(
        &mut self,
        slot: TimeSlot,
        now_ms: f64,
        telemetry: &mut ShardTelemetry,
    ) {
        let groups = self.predictor.groups();
        // the datacenter backend scores the slot's actual per-group arrivals
        // against the standing capacity; captured here because the predict
        // stage consumes the slot. Arithmetic billing skips the collection.
        let observed_demand: Vec<(AccelerationGroupId, usize)> = if self.billing.observes_demand() {
            groups.iter().map(|g| (*g, slot.load_of(*g))).collect()
        } else {
            Vec::new()
        };
        self.metrics.slots += 1;
        let observed_users = slot.total_users();
        self.metrics.total_user_slots += observed_users;
        self.metrics.peak_users = self.metrics.peak_users.max(observed_users);
        self.load_ewma = ewma(
            self.load_ewma,
            observed_users as f64,
            self.metrics.slots as u64,
        );

        if let Some(forecast) = &self.pending_forecast {
            self.metrics.scored_slots += 1;
            self.metrics.accuracy_sum += accuracy(forecast, &slot, groups).overall;
        }

        // the slot moves into the knowledge base (no clone) and the forecast
        // comes from the observe-and-predict fast path — identical to
        // `observe_slot` + `predict` on the same slot
        let timer = telemetry.start_stage();
        let forecast = self.predictor.observe_and_predict(slot).ok();
        telemetry.end_predict(timer);
        if let Some(forecast) = &forecast {
            let timer = telemetry.start_stage();
            let allocated = self.allocate_memoized(forecast);
            telemetry.end_allocate(timer);
            match allocated {
                Ok(allocation) => {
                    let timer = telemetry.start_stage();
                    self.metrics.allocations += 1;
                    self.metrics.allocated_instance_slots += allocation.total_instances();
                    // the backend applies the pool transaction (pool failures
                    // cannot occur: the allocator respects the same account
                    // cap the pool enforces) and — under datacenter billing —
                    // scores the elapsed slot, meters energy and re-places.
                    // The settled cost is the exact arithmetic expression this
                    // line always computed, so it is bit-identical across
                    // backends.
                    let settlement = self.billing.settle(
                        &mut self.pool,
                        &allocation,
                        &observed_demand,
                        self.slot_length_ms,
                        now_ms,
                    );
                    self.metrics.total_cost += settlement.cost;
                    self.metrics.sla_violations += settlement.sla_violations;
                    self.metrics.sla_dropped_users += settlement.sla_dropped_users;
                    self.metrics.sla_latency_ms += settlement.sla_latency_ms;
                    self.metrics.energy_wh += settlement.energy_wh;
                    self.metrics.placed_instance_slots += settlement.placements;
                    self.metrics.placement_failures += settlement.placement_failures;
                    telemetry.end_bill(timer);
                }
                Err(_) => self.metrics.infeasible_allocations += 1,
            }
        }
        self.pending_forecast = forecast;
    }

    /// Serves an allocation for `forecast`, from the memo cache when this
    /// workload vector was allocated before, solving (and caching) it
    /// otherwise. Cache-served allocations are clones of the original
    /// solve's result, so the tick's behaviour is bit-identical with and
    /// without the cache; only the hit/miss counters differ.
    fn allocate_memoized(
        &mut self,
        forecast: &WorkloadForecast,
    ) -> Result<Allocation, mca_core::CoreError> {
        if let Some(hit) = self.alloc_cache.get(&forecast.per_group) {
            self.metrics.alloc_cache_hits += 1;
            return Ok(hit.clone());
        }
        self.metrics.alloc_cache_misses += 1;
        let allocation = self.allocator.allocate(forecast)?;
        // solver work is accounted where it happens: cache hits replay a
        // clone of the original solve and must not re-count its effort
        self.metrics.solver_nodes += allocation.stats.nodes;
        self.metrics.solver_pivots += allocation.stats.pivots;
        self.metrics.solver_phase1_skips += allocation.stats.phase1_skips;
        if self.alloc_cache.len() >= ALLOC_CACHE_CAP {
            // bounded FIFO eviction: drop the oldest memoized vector. The
            // key being inserted is by construction not in the cache (this
            // is a miss), so the hot key can never be its own victim — the
            // previous wholesale `clear()` here thrashed a >CAP-vector
            // tenant to a ~0% hit rate right after warm-up.
            if let Some(oldest) = self.alloc_cache_order.pop_front() {
                self.alloc_cache.remove(&oldest);
                self.metrics.alloc_cache_evictions += 1;
            }
        }
        self.alloc_cache
            .insert(forecast.per_group.clone(), allocation.clone());
        self.alloc_cache_order.push_back(forecast.per_group.clone());
        Ok(allocation)
    }

    /// Number of distinct workload vectors currently memoized.
    pub fn cached_allocations(&self) -> usize {
        self.alloc_cache.len()
    }

    /// Serializes the shard's full tick state for a checkpoint: identity,
    /// knowledge base, instance pool, billing backend (standing datacenter
    /// placement included), the raw RNG stream words, metrics, the standing
    /// forecast, the allocation memo cache **in FIFO insertion order** (so
    /// the restored cache evicts the same victims), and the load EWMA. The
    /// allocator and slot length are not on the wire — both are pure
    /// functions of the [`SystemConfig`] the restore receives.
    pub(crate) fn encode_state(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.predictor.encode(out);
        self.pool.encode(out);
        self.billing.encode(out);
        self.rng.state().encode(out);
        self.metrics.encode(out);
        self.pending_forecast.encode(out);
        // the HashMap is rebuilt from the FIFO queue: one pass, exact order
        self.alloc_cache_order.len().encode(out);
        for key in &self.alloc_cache_order {
            key.encode(out);
            self.alloc_cache[key].encode(out);
        }
        self.load_ewma.encode(out);
    }

    /// Rebuilds a shard from [`TenantShard::encode_state`] bytes and the
    /// shared system configuration (which supplies the allocator and slot
    /// length, exactly as [`TenantShard::new`] does).
    pub(crate) fn decode_state(
        cur: &mut Cursor<'_>,
        config: &SystemConfig,
    ) -> Result<Self, SnapshotError> {
        let id = TenantId::decode(cur)?;
        let predictor = WorkloadPredictor::decode(cur)?;
        let pool = InstancePool::decode(cur)?;
        let billing = BillingEngine::decode(cur)?;
        let rng = StdRng::from_state(<[u64; 4]>::decode(cur)?);
        let metrics = TenantMetrics::decode(cur)?;
        let pending_forecast = Option::<WorkloadForecast>::decode(cur)?;
        let entries = usize::decode(cur)?;
        if entries > ALLOC_CACHE_CAP {
            return Err(SnapshotError::Malformed {
                context: "allocation memo cache over its cap",
            });
        }
        let mut alloc_cache = HashMap::with_capacity(entries);
        let mut alloc_cache_order = VecDeque::with_capacity(entries);
        for _ in 0..entries {
            let key = Vec::<(AccelerationGroupId, usize)>::decode(cur)?;
            let allocation = Allocation::decode(cur)?;
            if alloc_cache.insert(key.clone(), allocation).is_some() {
                return Err(SnapshotError::Malformed {
                    context: "duplicate workload vector in the memo cache",
                });
            }
            alloc_cache_order.push_back(key);
        }
        let load_ewma = f64::decode(cur)?;
        if metrics.tenant != id {
            return Err(SnapshotError::Malformed {
                context: "tenant metrics belong to another tenant",
            });
        }
        Ok(Self {
            id,
            predictor,
            allocator: config.build_allocator(),
            pool,
            billing,
            rng,
            metrics,
            pending_forecast,
            slot_length_ms: config.slot_length_ms,
            alloc_cache,
            alloc_cache_order,
            load_ewma,
        })
    }

    /// Hands the tenant's slot history out of the shard (offboarding or
    /// migration to another shard): the knowledge base moves without
    /// copying, the standing forecast is dropped, the allocation memo is
    /// cleared and the instance pool is terminated at `now_ms`.
    pub fn decommission(&mut self, now_ms: f64) -> SlotHistory {
        self.pending_forecast = None;
        self.alloc_cache.clear();
        self.alloc_cache_order.clear();
        self.pool.terminate_all(now_ms);
        self.billing.reset();
        self.predictor.take_history()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_core::{AllocationPolicy, PredictionStrategy};
    use mca_offload::{AccelerationGroupId, UserId};

    fn slot(index: usize, users: u32) -> TimeSlot {
        TimeSlot::from_assignments(
            index,
            (0..users).map(|u| (AccelerationGroupId(1), UserId(u))),
        )
    }

    fn config() -> SystemConfig {
        SystemConfig::paper_three_groups().with_slot_length_ms(3_600_000.0)
    }

    #[test]
    fn tick_cycle_scores_learns_allocates_and_bills() {
        let mut shard = TenantShard::new(TenantId(3), &config(), 7);
        assert_eq!(shard.id(), TenantId(3));
        assert!(shard.forecast().is_none());

        shard.tick(slot(0, 10), 3_600_000.0);
        // first slot: nothing to score yet, but a forecast + allocation stand
        assert_eq!(shard.metrics().slots, 1);
        assert_eq!(shard.metrics().scored_slots, 0);
        assert_eq!(shard.metrics().allocations, 1);
        assert_eq!(shard.metrics().alloc_cache_misses, 1);
        assert!(shard.forecast().is_some());
        assert!(shard.metrics().total_cost > 0.0);
        assert!(!shard.pool().is_empty());

        shard.tick(slot(1, 10), 7_200_000.0);
        // identical workload: the standing forecast scores perfectly
        assert_eq!(shard.metrics().scored_slots, 1);
        assert!((shard.metrics().accuracy_sum - 1.0).abs() < 1e-12);
        assert_eq!(shard.metrics().peak_users, 10);
        assert_eq!(shard.predictor().history().len(), 2);
    }

    #[test]
    fn shards_replicate_the_single_tenant_loop_exactly() {
        // two shards with the same config and stream seed, fed the same
        // slots, are bit-identical — the property the fleet engine builds on
        let mut a = TenantShard::new(TenantId(1), &config(), 42);
        let mut b = TenantShard::new(TenantId(1), &config(), 42);
        for i in 0..5 {
            let users = 5 + (i as u32 * 7) % 11;
            a.tick(slot(i, users), (i + 1) as f64 * 3_600_000.0);
            b.tick(slot(i, users), (i + 1) as f64 * 3_600_000.0);
        }
        assert_eq!(a.forecast(), b.forecast());
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn repeat_forecasts_hit_the_allocation_cache() {
        let mut shard = TenantShard::new(TenantId(9), &config(), 3);
        // steady workload: the forecast repeats from the second slot on
        for i in 0..6 {
            shard.tick(slot(i, 12), (i + 1) as f64 * 3_600_000.0);
        }
        let m = shard.metrics();
        assert_eq!(m.allocations, 6);
        assert_eq!(m.alloc_cache_misses, 1, "one solve for the steady vector");
        assert_eq!(m.alloc_cache_hits, 5, "every repeat is served cached");
        assert_eq!(shard.cached_allocations(), 1);

        // a different workload vector misses, then hits on its repeat
        shard.tick(slot(6, 30), 7.0 * 3_600_000.0);
        shard.tick(slot(7, 30), 8.0 * 3_600_000.0);
        let m = shard.metrics();
        assert_eq!(m.alloc_cache_misses, 2);
        assert_eq!(m.alloc_cache_hits, 6);
        assert_eq!(shard.cached_allocations(), 2);
    }

    #[test]
    fn cached_allocations_are_identical_to_fresh_solves() {
        // same slots with and without intervening repeats: metrics that
        // depend on the allocation (cost, instance-slots) must agree
        let mut cached = TenantShard::new(TenantId(1), &config(), 5);
        let mut fresh = TenantShard::new(TenantId(1), &config(), 5);
        for i in 0..4 {
            cached.tick(slot(i, 8), (i + 1) as f64 * 3_600_000.0);
        }
        for i in 0..4 {
            fresh.tick(slot(i, 8), (i + 1) as f64 * 3_600_000.0);
        }
        assert_eq!(cached.metrics(), fresh.metrics());
        assert_eq!(cached.forecast(), fresh.forecast());
    }

    #[test]
    fn cache_cap_evicts_oldest_vector_not_the_working_set() {
        // LastValue makes the forecast equal the observed slot, so each
        // distinct user count is a distinct workload vector; greedy
        // allocation keeps the 1k+ solves cheap and a raised account cap
        // keeps them feasible
        let mut config = config()
            .with_prediction_strategy(PredictionStrategy::LastValue)
            .with_allocation_policy(AllocationPolicy::GreedyCheapest)
            .with_history_window(4);
        config.account_cap = 1_000_000;
        let mut shard = TenantShard::new(TenantId(1), &config, 1);

        // one distinct vector past the cap
        let past_cap = ALLOC_CACHE_CAP as u32 + 1;
        for users in 1..=past_cap {
            shard.tick(slot(users as usize, users), f64::from(users) * 3_600_000.0);
        }
        let m = shard.metrics();
        assert_eq!(m.alloc_cache_misses, ALLOC_CACHE_CAP + 1);
        assert_eq!(m.alloc_cache_hits, 0);
        assert_eq!(m.alloc_cache_evictions, 1, "only the oldest vector left");
        assert_eq!(shard.cached_allocations(), ALLOC_CACHE_CAP);

        // recent repeats keep serving hits — under the previous wholesale
        // clear() the cache held a single vector at this point and every
        // repeat below would have missed
        let mut index = past_cap + 1;
        for users in (past_cap - 31..=past_cap).rev() {
            shard.tick(slot(index as usize, users), f64::from(index) * 3_600_000.0);
            index += 1;
        }
        let m = shard.metrics();
        assert_eq!(m.alloc_cache_misses, ALLOC_CACHE_CAP + 1, "all repeats hit");
        assert_eq!(m.alloc_cache_hits, 32);
        assert_eq!(m.alloc_cache_evictions, 1);

        // the evicted oldest vector misses again and displaces the
        // next-oldest, never the fresh working set
        shard.tick(slot(index as usize, 1), f64::from(index) * 3_600_000.0);
        let m = shard.metrics();
        assert_eq!(m.alloc_cache_misses, ALLOC_CACHE_CAP + 2);
        assert_eq!(m.alloc_cache_evictions, 2);
        assert_eq!(shard.cached_allocations(), ALLOC_CACHE_CAP);
        shard.tick(
            slot(index as usize + 1, 1),
            f64::from(index + 1) * 3_600_000.0,
        );
        assert_eq!(shard.metrics().alloc_cache_hits, 33, "hot key retained");
    }

    #[test]
    fn datacenter_billing_adds_accounting_without_moving_a_bit() {
        use mca_cloudsim::DatacenterConfig;
        let mut plain = TenantShard::new(TenantId(4), &config(), 11);
        let mut datacenter = TenantShard::new(
            TenantId(4),
            &config().with_datacenter(DatacenterConfig::paper_default()),
            11,
        );
        for i in 0..5 {
            let users = 4 + (i as u32 * 5) % 9;
            plain.tick(slot(i, users), (i + 1) as f64 * 3_600_000.0);
            datacenter.tick(slot(i, users), (i + 1) as f64 * 3_600_000.0);
        }
        // forecasts and every prediction/allocation/cost field agree bitwise
        assert_eq!(plain.forecast(), datacenter.forecast());
        let p = plain.metrics();
        let d = datacenter.metrics();
        assert_eq!(p.total_cost.to_bits(), d.total_cost.to_bits());
        assert_eq!(
            (p.allocations, p.allocated_instance_slots, p.scored_slots),
            (d.allocations, d.allocated_instance_slots, d.scored_slots)
        );
        // only the datacenter shard carries placement/energy accounting
        assert_eq!(p.placed_instance_slots, 0);
        assert_eq!(p.energy_wh, 0.0);
        assert!(d.placed_instance_slots > 0);
        assert!(d.energy_wh > 0.0);
        assert_eq!(d.placement_failures, 0);
        assert!(datacenter.datacenter().unwrap().active_hosts() > 0);
        assert!(plain.datacenter().is_none());
    }

    #[test]
    fn host_exhaustion_is_a_counted_failure_not_a_panic() {
        use mca_cloudsim::DatacenterConfig;
        // one 1-vCPU host cannot hold the three-group minimum fleet (the
        // m4.4xlarge group member alone needs 16 vCPUs)
        let starved =
            config().with_datacenter(DatacenterConfig::paper_default().with_hosts(1, 1, 0.5));
        let mut shard = TenantShard::new(TenantId(6), &starved, 11);
        shard.tick(slot(0, 10), 3_600_000.0);
        shard.tick(slot(1, 10), 7_200_000.0);
        let m = shard.metrics();
        assert_eq!(m.allocations, 2, "the pool transaction still lands");
        assert_eq!(m.placement_failures, 2);
        assert_eq!(m.placed_instance_slots, 0);
        assert!(shard.placement_error().is_some());
        assert!(m.total_cost > 0.0, "the bill does not vanish");
        shard.decommission(3.0 * 3_600_000.0);
        assert!(shard.placement_error().is_none(), "reset clears the error");
    }

    #[test]
    fn decommission_hands_off_the_history_and_clears_the_pool() {
        let mut shard = TenantShard::new(TenantId(5), &config(), 1);
        for i in 0..3 {
            shard.tick(slot(i, 4), (i + 1) as f64 * 3_600_000.0);
        }
        let history = shard.decommission(4.0 * 3_600_000.0);
        assert_eq!(history.len(), 3);
        assert!(shard.predictor().history().is_empty());
        assert!(shard.forecast().is_none());
        assert!(shard.pool().is_empty());
    }

    #[test]
    fn load_ewma_tracks_observed_users() {
        let mut shard = TenantShard::new(TenantId(2), &config(), 1);
        assert_eq!(shard.load_ewma(), 0.0);
        shard.tick(slot(0, 8), 3_600_000.0);
        assert_eq!(shard.load_ewma(), 8.0, "first sample seeds the average");
        shard.tick(slot(1, 16), 7_200_000.0);
        let expected = 0.125 * 16.0 + 0.875 * 8.0;
        assert!((shard.load_ewma() - expected).abs() < 1e-12);
    }

    #[test]
    fn stream_seeds_differ_per_tenant_and_fleet_seed() {
        let a = TenantShard::stream_seed(1, TenantId(0));
        let b = TenantShard::stream_seed(1, TenantId(1));
        let c = TenantShard::stream_seed(2, TenantId(0));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shard_streams_match_the_mix_canonical_streams() {
        // the documented replay contract: with fleet seed == mix seed, a
        // shard's private stream IS the mix's canonical per-tenant stream
        let mix = mca_workload::TenantMix::heterogeneous(5, 10, config().groups.ids(), 77);
        for tenant in mix.tenant_ids() {
            let mut shard = TenantShard::new(tenant, &config(), 77);
            assert_eq!(*shard.rng_mut(), mix.stream_for(tenant), "{tenant}");
        }
    }
}
