//! Hot-shard rebalancing: the elastic placement policy of the fleet.
//!
//! Static hash placement freezes each tenant on `SplitMix64(tenant) % N`
//! forever, so under skewed tenant sizes the parallel tick runs only as fast
//! as the hottest shard. The [`Rebalancer`] closes that gap: between slots
//! the engine hands it the per-shard load view (each shard's hosted-tenant
//! [`crate::TenantShard::load_ewma`] sums) and the rebalancer plans live
//! migrations — whole [`crate::TenantShard`]s moved between shards with
//! their slot history, index, RNG stream, allocation memo cache, standing
//! forecast and metrics intact, routed thereafter through the
//! [`crate::ShardRouter`] indirection table.
//!
//! Both halves of the policy are pluggable and, crucially, **deterministic**:
//!
//! * the [`RebalanceTrigger`] decides *whether* to act — the stock policy
//!   fires when `max(shard load) / mean(shard load)` reaches a threshold;
//! * the [`MigrationChooser`] decides *what* to move — the stock policy
//!   takes the heaviest movable tenant off the hottest shard and lands it on
//!   the coldest, with every tie broken by the lowest shard index and the
//!   lowest tenant id, and only moves that strictly shrink the hottest
//!   shard's load (`cold + tenant < hot`), so the greedy loop terminates.
//!
//! Every input is a pure function of the observed record counts (the load
//! EWMAs are count-derived and run in every telemetry mode), so the same
//! drive produces the same migration schedule at any thread count — which is
//! what keeps forecasts and [`crate::FleetMetrics`] bit-identical to the
//! static fleet: migrations move state, they never mutate it.

use mca_offload::TenantId;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};

/// Migrations kept in the rebalancer's recent-activity log (oldest dropped
/// first). Telemetry only — the counters are never capped.
const MIGRATION_LOG_CAP: usize = 32;

/// When the rebalancer acts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RebalanceTrigger {
    /// Fire when the hottest shard carries at least `ratio` times the mean
    /// shard load. `1.0` fires on any imbalance; higher values tolerate
    /// more skew before moving anyone.
    MaxMeanRatio {
        /// The max/mean load ratio at which the trigger fires.
        ratio: f64,
    },
}

impl RebalanceTrigger {
    /// Evaluates the trigger on the per-shard loads: returns the observed
    /// ratio and whether the trigger fires. A fleet with no measurable load
    /// never fires.
    fn evaluate(&self, loads: &[f64]) -> (f64, bool) {
        let total: f64 = loads.iter().sum();
        if loads.is_empty() || total <= 0.0 {
            return (0.0, false);
        }
        let mean = total / loads.len() as f64;
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        let observed = max / mean;
        match *self {
            RebalanceTrigger::MaxMeanRatio { ratio } => (observed, observed >= ratio),
        }
    }
}

/// Which tenant moves, and where to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationChooser {
    /// Move the heaviest movable tenant off the hottest shard onto the
    /// coldest shard, but only when that strictly shrinks the hottest
    /// shard's load (`coldest + tenant < hottest`). Ties break by lowest
    /// shard index and lowest tenant id.
    HeaviestFromHottest,
}

/// Configuration of the between-slots rebalance check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalancerConfig {
    /// When to act.
    pub trigger: RebalanceTrigger,
    /// What to move.
    pub chooser: MigrationChooser,
    /// Slots to wait before the first check, so every tenant's load EWMA has
    /// seeded (an unseeded EWMA reads 0 and would make fresh tenants look
    /// free to stack anywhere).
    pub warmup_slots: usize,
    /// Run the check every this many slots (1 = before every slot).
    pub check_interval: usize,
    /// Migrations allowed per firing check. Each move pays a router override
    /// and a shard-vec splice, so the default moves one tenant per slot and
    /// lets the next check continue the drain.
    pub max_moves_per_check: usize,
}

impl Default for RebalancerConfig {
    fn default() -> Self {
        Self {
            trigger: RebalanceTrigger::MaxMeanRatio { ratio: 1.25 },
            chooser: MigrationChooser::HeaviestFromHottest,
            warmup_slots: 4,
            check_interval: 1,
            max_moves_per_check: 1,
        }
    }
}

impl RebalancerConfig {
    /// Sets the max/mean trigger ratio.
    pub fn with_ratio(mut self, ratio: f64) -> Self {
        self.trigger = RebalanceTrigger::MaxMeanRatio { ratio };
        self
    }

    /// Sets the warmup, in slots.
    pub fn with_warmup_slots(mut self, slots: usize) -> Self {
        self.warmup_slots = slots;
        self
    }

    /// Sets the check interval, in slots (clamped to at least 1).
    pub fn with_check_interval(mut self, slots: usize) -> Self {
        self.check_interval = slots.max(1);
        self
    }

    /// Sets the per-check migration budget.
    pub fn with_max_moves_per_check(mut self, moves: usize) -> Self {
        self.max_moves_per_check = moves;
        self
    }
}

/// One executed migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The slot index the migration ran before.
    pub slot: usize,
    /// The tenant that moved.
    pub tenant: TenantId,
    /// The shard it left.
    pub from: usize,
    /// The shard it landed on.
    pub to: usize,
    /// The tenant's load EWMA at decision time.
    pub load: f64,
}

/// The rebalancer's activity, as surfaced in [`crate::FleetTelemetry`] and
/// the metrics registry. Everything here is derived from count-based load
/// EWMAs, so a `Logical`-mode snapshot comparison across thread counts
/// doubles as proof the migration schedule itself is thread-independent.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RebalanceSnapshot {
    /// Rebalance checks run.
    pub checks: u64,
    /// Checks whose trigger fired.
    pub triggers: u64,
    /// Migrations performed.
    pub migrations: u64,
    /// The max/mean load ratio the most recent check observed.
    pub last_ratio: f64,
    /// Per-shard loads when the trigger last fired, before any move.
    pub loads_before: Vec<f64>,
    /// Per-shard loads after the moves of the last firing check.
    pub loads_after: Vec<f64>,
    /// The most recent migrations, oldest first (capped).
    pub recent: Vec<MigrationRecord>,
}

/// The between-slots rebalancing policy plus its activity counters.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    config: RebalancerConfig,
    checks: u64,
    triggers: u64,
    migrations: u64,
    last_ratio: f64,
    loads_before: Vec<f64>,
    loads_after: Vec<f64>,
    log: Vec<MigrationRecord>,
}

impl Rebalancer {
    /// A rebalancer running `config`.
    pub fn new(config: RebalancerConfig) -> Self {
        Self {
            config,
            checks: 0,
            triggers: 0,
            migrations: 0,
            last_ratio: 0.0,
            loads_before: Vec::new(),
            loads_after: Vec::new(),
            log: Vec::new(),
        }
    }

    /// The configuration the rebalancer runs.
    pub fn config(&self) -> &RebalancerConfig {
        &self.config
    }

    /// Whether the periodic check is due before `slot` ticks.
    pub(crate) fn due(&self, slot: usize) -> bool {
        slot >= self.config.warmup_slots && slot.is_multiple_of(self.config.check_interval.max(1))
    }

    /// Runs one check over the fleet's load view and plans the migrations to
    /// execute before the next slot. `loads[s]` is shard `s`'s total hosted
    /// load (movable and immovable tenants alike); `movable[s]` lists shard
    /// `s`'s movable tenants with their loads, in any order. Both views are
    /// updated in place as moves are planned, so a multi-move budget
    /// accounts for its own earlier moves.
    pub(crate) fn check(
        &mut self,
        slot: usize,
        loads: &mut [f64],
        movable: &mut [Vec<(TenantId, f64)>],
    ) -> Vec<MigrationRecord> {
        self.checks += 1;
        let (ratio, fires) = self.config.trigger.evaluate(loads);
        self.last_ratio = ratio;
        if !fires || loads.len() < 2 {
            return Vec::new();
        }
        self.triggers += 1;
        self.loads_before = loads.to_vec();
        let mut moves = Vec::new();
        for _ in 0..self.config.max_moves_per_check {
            let Some(record) = self.plan_one(slot, loads, movable) else {
                break;
            };
            moves.push(record);
        }
        self.loads_after = loads.to_vec();
        self.migrations += moves.len() as u64;
        self.log.extend(moves.iter().copied());
        if self.log.len() > MIGRATION_LOG_CAP {
            self.log.drain(..self.log.len() - MIGRATION_LOG_CAP);
        }
        moves
    }

    /// Plans one migration under the chooser, mutating the views, or `None`
    /// when no strictly improving move exists.
    fn plan_one(
        &self,
        slot: usize,
        loads: &mut [f64],
        movable: &mut [Vec<(TenantId, f64)>],
    ) -> Option<MigrationRecord> {
        let MigrationChooser::HeaviestFromHottest = self.config.chooser;
        // hottest and coldest shard, ties to the lowest index
        let (hot, _) = loads
            .iter()
            .enumerate()
            .fold(
                (0usize, f64::MIN),
                |(bi, bl), (i, &l)| {
                    if l > bl {
                        (i, l)
                    } else {
                        (bi, bl)
                    }
                },
            );
        let (cold, _) = loads
            .iter()
            .enumerate()
            .fold(
                (0usize, f64::MAX),
                |(bi, bl), (i, &l)| {
                    if l < bl {
                        (i, l)
                    } else {
                        (bi, bl)
                    }
                },
            );
        if hot == cold {
            return None;
        }
        // heaviest movable tenant on the hot shard whose move strictly
        // shrinks the hot shard's load; ties break to the lowest tenant id
        let candidate = movable[hot]
            .iter()
            .enumerate()
            .filter(|(_, &(_, load))| load > 0.0 && loads[cold] + load < loads[hot])
            .max_by(|(_, a), (_, b)| {
                a.1.partial_cmp(&b.1)
                    .expect("load EWMAs are finite")
                    .then(b.0.cmp(&a.0))
            });
        let (at, &(tenant, load)) = candidate?;
        movable[hot].remove(at);
        movable[cold].push((tenant, load));
        loads[hot] -= load;
        loads[cold] += load;
        Some(MigrationRecord {
            slot,
            tenant,
            from: hot,
            to: cold,
            load,
        })
    }

    /// The rebalancer's activity snapshot.
    pub fn snapshot(&self) -> RebalanceSnapshot {
        RebalanceSnapshot {
            checks: self.checks,
            triggers: self.triggers,
            migrations: self.migrations,
            last_ratio: self.last_ratio,
            loads_before: self.loads_before.clone(),
            loads_after: self.loads_after.clone(),
            recent: self.log.clone(),
        }
    }
}

impl Snapshot for RebalancerConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        let RebalanceTrigger::MaxMeanRatio { ratio } = self.trigger;
        ratio.encode(out);
        let MigrationChooser::HeaviestFromHottest = self.chooser;
        self.warmup_slots.encode(out);
        self.check_interval.encode(out);
        self.max_moves_per_check.encode(out);
    }
}

impl Restore for RebalancerConfig {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            trigger: RebalanceTrigger::MaxMeanRatio {
                ratio: f64::decode(cur)?,
            },
            chooser: MigrationChooser::HeaviestFromHottest,
            warmup_slots: usize::decode(cur)?,
            check_interval: usize::decode(cur)?,
            max_moves_per_check: usize::decode(cur)?,
        })
    }
}

impl Snapshot for MigrationRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slot.encode(out);
        self.tenant.encode(out);
        self.from.encode(out);
        self.to.encode(out);
        self.load.encode(out);
    }
}

impl Restore for MigrationRecord {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            slot: usize::decode(cur)?,
            tenant: TenantId::decode(cur)?,
            from: usize::decode(cur)?,
            to: usize::decode(cur)?,
            load: f64::decode(cur)?,
        })
    }
}

/// The rebalancer section is self-contained: its policy configuration is not
/// part of [`mca_core::SystemConfig`], so the checkpoint carries it along
/// with the activity counters and the recent-migration log.
impl Snapshot for Rebalancer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.config.encode(out);
        self.checks.encode(out);
        self.triggers.encode(out);
        self.migrations.encode(out);
        self.last_ratio.encode(out);
        self.loads_before.encode(out);
        self.loads_after.encode(out);
        self.log.encode(out);
    }
}

impl Restore for Rebalancer {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            config: RebalancerConfig::decode(cur)?,
            checks: u64::decode(cur)?,
            triggers: u64::decode(cur)?,
            migrations: u64::decode(cur)?,
            last_ratio: f64::decode(cur)?,
            loads_before: Vec::<f64>::decode(cur)?,
            loads_after: Vec::<f64>::decode(cur)?,
            log: Vec::<MigrationRecord>::decode(cur)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movable_of(loads: &[Vec<f64>]) -> Vec<Vec<(TenantId, f64)>> {
        // tenant ids numbered shard-major so tie-break tests are readable
        let mut next = 0u32;
        loads
            .iter()
            .map(|shard| {
                shard
                    .iter()
                    .map(|&l| {
                        let t = TenantId(next);
                        next += 1;
                        (t, l)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn trigger_measures_max_over_mean() {
        let trigger = RebalanceTrigger::MaxMeanRatio { ratio: 1.5 };
        let (ratio, fires) = trigger.evaluate(&[30.0, 10.0, 20.0]);
        assert!((ratio - 1.5).abs() < 1e-12);
        assert!(fires);
        let (_, fires) = trigger.evaluate(&[21.0, 19.0, 20.0]);
        assert!(!fires);
        let (ratio, fires) = trigger.evaluate(&[0.0, 0.0]);
        assert_eq!(ratio, 0.0);
        assert!(!fires, "an unloaded fleet never rebalances");
    }

    #[test]
    fn check_moves_the_heaviest_tenant_from_hottest_to_coldest() {
        let mut rebalancer = Rebalancer::new(RebalancerConfig::default().with_ratio(1.2));
        let per_shard = vec![vec![50.0, 30.0], vec![10.0], vec![20.0]];
        let mut movable = movable_of(&per_shard);
        let mut loads: Vec<f64> = per_shard.iter().map(|s| s.iter().sum()).collect();
        let moves = rebalancer.check(7, &mut loads, &mut movable);
        assert_eq!(moves.len(), 1);
        let m = moves[0];
        assert_eq!(m.slot, 7);
        assert_eq!((m.from, m.to), (0, 1));
        // 50 would overshoot (10 + 50 < 80 holds, so the heaviest DOES move)
        assert_eq!(m.tenant, TenantId(0));
        assert_eq!(loads, vec![30.0, 60.0, 20.0]);
        let snapshot = rebalancer.snapshot();
        assert_eq!(snapshot.checks, 1);
        assert_eq!(snapshot.triggers, 1);
        assert_eq!(snapshot.migrations, 1);
        assert_eq!(snapshot.loads_before, vec![80.0, 10.0, 20.0]);
        assert_eq!(snapshot.loads_after, vec![30.0, 60.0, 20.0]);
        assert_eq!(snapshot.recent.len(), 1);
    }

    #[test]
    fn improvement_guard_skips_moves_that_would_overshoot() {
        // the heaviest tenant (90) would land the cold shard past the hot
        // one's current load (40 + 90 > 120), so the lighter one (30) moves
        let mut rebalancer = Rebalancer::new(RebalancerConfig::default().with_ratio(1.0));
        let per_shard = vec![vec![90.0, 30.0], vec![40.0]];
        let mut movable = movable_of(&per_shard);
        let mut loads: Vec<f64> = per_shard.iter().map(|s| s.iter().sum()).collect();
        let moves = rebalancer.check(0, &mut loads, &mut movable);
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].tenant, TenantId(1));
        assert_eq!(loads, vec![90.0, 70.0]);
    }

    #[test]
    fn no_improving_move_means_no_migration() {
        // one giant immovable-in-effect tenant per shard: every move overshoots
        let mut rebalancer = Rebalancer::new(RebalancerConfig::default().with_ratio(1.0));
        let per_shard = vec![vec![100.0], vec![10.0]];
        let mut movable = movable_of(&per_shard);
        let mut loads: Vec<f64> = per_shard.iter().map(|s| s.iter().sum()).collect();
        let moves = rebalancer.check(0, &mut loads, &mut movable);
        assert!(
            moves.is_empty(),
            "100 onto 10 would just swap the hot shard"
        );
        let snapshot = rebalancer.snapshot();
        assert_eq!(snapshot.triggers, 1, "the trigger fired");
        assert_eq!(snapshot.migrations, 0, "but nothing improved");
    }

    #[test]
    fn ties_break_to_the_lowest_tenant_id() {
        let mut rebalancer = Rebalancer::new(RebalancerConfig::default().with_ratio(1.0));
        let per_shard = vec![vec![20.0, 20.0, 20.0], vec![5.0]];
        let mut movable = movable_of(&per_shard);
        let mut loads: Vec<f64> = per_shard.iter().map(|s| s.iter().sum()).collect();
        let moves = rebalancer.check(0, &mut loads, &mut movable);
        assert_eq!(moves[0].tenant, TenantId(0), "equal loads: lowest id wins");
    }

    #[test]
    fn multi_move_budget_accounts_for_its_own_moves() {
        let mut rebalancer = Rebalancer::new(
            RebalancerConfig::default()
                .with_ratio(1.0)
                .with_max_moves_per_check(8),
        );
        let per_shard = vec![vec![40.0, 30.0, 20.0, 10.0], vec![0.0], vec![0.0]];
        let mut movable = movable_of(&per_shard);
        let mut loads: Vec<f64> = per_shard.iter().map(|s| s.iter().sum()).collect();
        let moves = rebalancer.check(0, &mut loads, &mut movable);
        assert!(moves.len() >= 2, "the budget keeps draining the hot shard");
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        assert!(max < 100.0, "the hot shard shrank: {loads:?}");
        // every planned move strictly improved at plan time, so the loop
        // terminated before the budget if nothing improved further
        assert!(moves.len() <= 8);
    }

    #[test]
    fn due_respects_warmup_and_interval() {
        let rebalancer = Rebalancer::new(
            RebalancerConfig::default()
                .with_warmup_slots(4)
                .with_check_interval(3),
        );
        assert!(!rebalancer.due(0));
        assert!(!rebalancer.due(3), "inside warmup");
        assert!(!rebalancer.due(4), "past warmup but off the interval");
        assert!(rebalancer.due(6));
        assert!(rebalancer.due(9));
    }
}
