//! End-to-end acceptance of the unified streaming ingestion API: driving a
//! fleet from trace-, log-, mix- and stream-backed `RecordSource`s through
//! `FleetDriver` must be bit-identical to feeding the equivalent hand-built
//! batches through the engine's batch ingest — and every misuse the old API
//! answered with a panic must surface as a typed `FleetError`.

#![allow(deprecated)] // the tick_slot/tick_mix shims are the equivalence references

use mca_core::{SystemConfig, TraceLog};
use mca_fleet::{
    ArrivalTraceSource, FleetDriver, FleetEngine, FleetError, SlotBatchSource, SlotRecord,
    StreamSource, TraceLogSource,
};
use mca_offload::{AccelerationGroupId, TenantId, TraceRecord, UserId};
use mca_offload::{TaskKind, TaskSpec};
use mca_workload::{Arrival, ArrivalTrace, TenantMix};

const SEED: u64 = 20170605;
const SLOT_MS: f64 = 1_000.0;
const ENTRY: AccelerationGroupId = AccelerationGroupId(1);

fn config() -> SystemConfig {
    SystemConfig::paper_three_groups()
        .with_slot_length_ms(SLOT_MS)
        .with_history_window(16)
}

fn arrival(t: f64, user: u32) -> Arrival {
    Arrival {
        time_ms: t,
        user: UserId(user),
        task: TaskSpec::new(TaskKind::Minimax, 5),
    }
}

/// A deterministic trace for one tenant exercising every windower edge:
/// events exactly on slot boundaries, several users inside one slot, an
/// interior gap slot, and per-tenant phase shifts.
fn trace_for(tenant: u32, slots: usize) -> ArrivalTrace {
    let base = tenant * 1_000;
    let mut arrivals = Vec::new();
    for slot in 0..slots {
        if slot % 4 == 2 && tenant.is_multiple_of(2) {
            continue; // interior gap for even tenants
        }
        let start = slot as f64 * SLOT_MS;
        arrivals.push(arrival(start, base + slot as u32)); // exact boundary
        for u in 0..3 + (tenant + slot as u32) % 3 {
            arrivals.push(arrival(start + 10.0 + f64::from(u) * 7.0, base + u));
        }
    }
    ArrivalTrace::new(arrivals)
}

/// The hand-built batch the old API would have been fed for `slot`: every
/// tenant's arrivals with `floor(time / SLOT_MS) == slot`, as entry-group
/// records.
fn hand_batch(traces: &[(TenantId, ArrivalTrace)], slot: usize) -> Vec<SlotRecord> {
    let mut batch = Vec::new();
    for (tenant, trace) in traces {
        for a in trace.iter() {
            if (a.time_ms / SLOT_MS).floor().max(0.0) as usize == slot {
                batch.push(SlotRecord::new(*tenant, ENTRY, a.user));
            }
        }
    }
    batch
}

#[test]
fn trace_driven_fleet_is_bit_identical_to_hand_built_batches() {
    const SLOTS: usize = 12;
    let traces: Vec<(TenantId, ArrivalTrace)> =
        (0..4).map(|t| (TenantId(t), trace_for(t, SLOTS))).collect();

    let mut by_hand = FleetEngine::new(config(), 3, SEED);
    by_hand.add_tenants(traces.iter().map(|(t, _)| *t));

    let mut engine = FleetEngine::new(config(), 3, SEED);
    engine.add_tenants(traces.iter().map(|(t, _)| *t));
    let mut driver = FleetDriver::new(engine);
    for (tenant, trace) in &traces {
        driver
            .add_source(
                *tenant,
                ArrivalTraceSource::new(*tenant, trace, SLOT_MS, ENTRY),
            )
            .expect("tenants are onboarded once");
    }

    for slot in 0..SLOTS {
        by_hand.tick_slot(&hand_batch(&traces, slot));
        driver.step().expect("bound sources stay on their tenant");
        // bit-identity after every slot, not just at the end
        assert_eq!(
            driver.engine().forecasts(),
            by_hand.forecasts(),
            "slot {slot}"
        );
    }
    let report = driver.report();
    assert_eq!(report.metrics, by_hand.metrics());
    assert_eq!(report.slots, SLOTS);
    assert_eq!(report.late_records, 0);
    assert_eq!(report.dropped_records, 0);
    assert_eq!(
        report.records,
        traces.iter().map(|(_, t)| t.len()).sum::<usize>()
    );
}

#[test]
fn trace_log_replay_tolerates_out_of_order_and_matches_hand_batches() {
    let record = |t: f64, user: u32, group: u8| TraceRecord {
        timestamp_ms: t,
        user: UserId(user),
        group: AccelerationGroupId(group),
        battery_level: 80.0,
        round_trip_ms: 100.0,
        t1_ms: 10.0,
        t2_ms: 20.0,
        t_cloud_ms: 70.0,
        success: true,
    };
    // out of order within slots (the log of a concurrent front-end), a
    // boundary record, an interior gap (slot 2) and a trailing slot
    let log: TraceLog = vec![
        record(700.0, 2, 2),
        record(100.0, 1, 1),
        record(1_000.0, 3, 1), // boundary: slot 1
        record(1_800.0, 1, 3),
        record(1_200.0, 2, 1),
        record(3_100.0, 4, 2),
    ]
    .into_iter()
    .collect();
    let tenant = TenantId(0);

    let mut by_hand = FleetEngine::new(config(), 2, SEED);
    by_hand.add_tenant(tenant);
    for slot in 0..4 {
        let batch: Vec<SlotRecord> = log
            .records()
            .iter()
            .filter(|r| (r.timestamp_ms / SLOT_MS).floor() as usize == slot)
            .map(|r| SlotRecord::new(tenant, r.group, r.user))
            .collect();
        by_hand.tick_slot(&batch);
    }

    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(tenant);
    let source = TraceLogSource::new(tenant, &log, SLOT_MS);
    assert_eq!(source.slot_count(), 4);
    let mut driver = FleetDriver::new(engine)
        .with_source(tenant, source)
        .unwrap();
    let report = driver.run_until_exhausted(64).unwrap();

    assert_eq!(report.slots, 4, "the log spans four slots, gap included");
    assert_eq!(report.metrics, by_hand.metrics());
    assert_eq!(report.forecasts, by_hand.forecasts());
    assert_eq!(report.exhausted_sources, 1);
}

#[test]
fn shared_replay_source_matches_per_tenant_bound_sources() {
    const SLOTS: usize = 8;
    let traces: Vec<(TenantId, ArrivalTrace)> =
        (0..3).map(|t| (TenantId(t), trace_for(t, SLOTS))).collect();
    let batches: Vec<Vec<SlotRecord>> = (0..SLOTS).map(|s| hand_batch(&traces, s)).collect();

    let mut bound_engine = FleetEngine::new(config(), 2, SEED);
    bound_engine.add_tenants(traces.iter().map(|(t, _)| *t));
    let mut bound = FleetDriver::new(bound_engine);
    for (tenant, trace) in &traces {
        bound
            .add_source(
                *tenant,
                ArrivalTraceSource::new(*tenant, trace, SLOT_MS, ENTRY),
            )
            .unwrap();
    }
    let bound_report = bound.run(SLOTS).unwrap();

    let mut shared_engine = FleetEngine::new(config(), 2, SEED);
    shared_engine.add_tenants(traces.iter().map(|(t, _)| *t));
    let mut shared =
        FleetDriver::new(shared_engine).with_shared_source(SlotBatchSource::new(batches));
    let shared_report = shared.run(SLOTS).unwrap();

    assert_eq!(bound_report.metrics, shared_report.metrics);
    assert_eq!(bound_report.forecasts, shared_report.forecasts);
    assert_eq!(bound_report.records, shared_report.records);
}

#[test]
fn mix_backed_driver_reproduces_tick_mix_for_user_sharded_tenants() {
    // the acceptance hole the redesign closes: the old mix path rejected
    // user-sharded tenants outright; the driver must serve them and agree
    // bit for bit with the (now shimmed, batch-routed) tick_mix
    let mix = TenantMix::heterogeneous(3, 14, config().groups.ids(), SEED);

    let mut shim = FleetEngine::new(config(), 4, SEED).with_threads(2);
    shim.add_user_sharded_tenant(TenantId(0));
    shim.add_tenants([TenantId(1), TenantId(2)]);
    for _ in 0..10 {
        shim.tick_mix(&mix);
    }

    let mut engine = FleetEngine::new(config(), 4, SEED).with_threads(2);
    engine.add_user_sharded_tenant(TenantId(0));
    engine.add_tenants([TenantId(1), TenantId(2)]);
    let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();
    let report = driver.run(10).unwrap();

    assert_eq!(report.metrics, shim.metrics());
    assert_eq!(report.forecasts, shim.forecasts());
    assert_eq!(report.dropped_records, 0, "every slice found its replica");
}

#[test]
fn live_stream_driving_accounts_late_records_in_the_report() {
    let tenant = TenantId(0);
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(tenant);
    let (handle, source) = StreamSource::channel(SLOT_MS);
    let mut driver = FleetDriver::new(engine)
        .with_source(tenant, source)
        .unwrap();

    let rec = |u: u32| SlotRecord::new(tenant, ENTRY, UserId(u));
    handle.push(700.0, rec(2));
    handle.push(100.0, rec(1)); // out of order within slot 0
    assert!(driver.step().unwrap());

    handle.push(300.0, rec(3)); // slot 0 already ticked: late, dropped
    handle.push(1_400.0, rec(4));
    assert!(driver.step().unwrap());

    handle.close();
    let report = driver.run_until_exhausted(8).unwrap();
    assert_eq!(report.records, 3);
    assert_eq!(report.late_records, 1, "the straggler is surfaced");
    assert_eq!(report.metrics.slots, 3, "two live slots + the closing one");
    assert_eq!(report.exhausted_sources, 1);
}

#[test]
fn driver_misuse_surfaces_as_typed_errors() {
    let mix = TenantMix::heterogeneous(2, 8, config().groups.ids(), SEED);
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(TenantId(0));

    // a source for a tenant that is not onboarded
    let trace = trace_for(1, 2);
    let driver = FleetDriver::new(engine);
    let err = driver
        .with_source(
            TenantId(9),
            ArrivalTraceSource::new(TenantId(9), &trace, SLOT_MS, ENTRY),
        )
        .unwrap_err();
    assert_eq!(
        err,
        FleetError::UnknownTenant {
            tenant: TenantId(9)
        }
    );

    // two sources for one tenant
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(TenantId(0));
    let mut driver = FleetDriver::new(engine)
        .with_source(
            TenantId(0),
            ArrivalTraceSource::new(TenantId(0), &trace, SLOT_MS, ENTRY),
        )
        .unwrap();
    assert_eq!(
        driver
            .add_source(
                TenantId(0),
                ArrivalTraceSource::new(TenantId(0), &trace, SLOT_MS, ENTRY),
            )
            .unwrap_err(),
        FleetError::DuplicateSource {
            tenant: TenantId(0)
        }
    );

    // a bound source producing another tenant's records is quarantined: the
    // slot still ticks (other sources stay in lockstep with the clock), its
    // batch is discarded, and the source is never polled again
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenants([TenantId(0), TenantId(1)]);
    let foreign = SlotBatchSource::new(vec![vec![SlotRecord::new(TenantId(1), ENTRY, UserId(5))]]);
    let honest = trace_for(1, 2);
    let mut driver = FleetDriver::new(engine)
        .with_source(TenantId(0), foreign)
        .unwrap()
        .with_source(
            TenantId(1),
            ArrivalTraceSource::new(TenantId(1), &honest, SLOT_MS, ENTRY),
        )
        .unwrap();
    assert_eq!(
        driver.step().unwrap_err(),
        FleetError::ForeignRecord {
            bound: TenantId(0),
            found: TenantId(1)
        }
    );
    assert_eq!(
        driver.engine().slot_index(),
        1,
        "the slot ticked without the foreign batch"
    );
    assert_eq!(driver.live_sources(), 1, "the offender is quarantined");
    let report = driver.run_until_exhausted(8).unwrap();
    assert_eq!(
        report.records,
        honest.len(),
        "only the honest source's records were ingested"
    );
    assert_eq!(
        report.metrics.tenant(TenantId(0)).unwrap().total_user_slots,
        0
    );

    // a hosted tenant the mix does not define — the non-consuming add_mix
    // leaves the engine (and its knowledge bases) intact
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenants([TenantId(0), TenantId(7)]);
    let mut driver = FleetDriver::new(engine);
    assert_eq!(
        driver.add_mix(&mix).unwrap_err(),
        FleetError::TenantNotInMix {
            tenant: TenantId(7),
            mix_tenants: 2
        }
    );
    assert_eq!(driver.sources(), 0, "a failed add_mix registers nothing");
    assert_eq!(driver.engine().tenants(), 2, "the engine survives");
}

#[test]
fn replay_sources_anchor_at_their_first_polled_slot() {
    // an engine pre-ticked three slots, then a recorded trace joins: the
    // replay serves its slot 0 at the next tick — no silent head loss
    let tenant = TenantId(0);
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(tenant);
    for _ in 0..3 {
        engine.tick_slot(&[]);
    }
    let trace = trace_for(0, 4);
    let mut driver = FleetDriver::new(engine)
        .with_source(
            tenant,
            ArrivalTraceSource::new(tenant, &trace, SLOT_MS, ENTRY),
        )
        .unwrap();
    let report = driver.run_until_exhausted(16).unwrap();
    assert_eq!(
        report.records,
        trace.len(),
        "every recorded arrival ingested"
    );
    assert_eq!(driver.engine().slot_index(), 3 + 4);

    // the batch-list replay anchors the same way
    let batches = vec![vec![SlotRecord::new(tenant, ENTRY, UserId(1))]; 2];
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(tenant);
    for _ in 0..5 {
        engine.tick_slot(&[]);
    }
    let mut driver = FleetDriver::new(engine)
        .with_source(tenant, SlotBatchSource::new(batches))
        .unwrap();
    let report = driver.run_until_exhausted(16).unwrap();
    assert_eq!(report.records, 2);
    assert_eq!(driver.engine().slot_index(), 5 + 2);
}

#[test]
fn short_trace_and_empty_fleet_edges_stay_consistent() {
    // a trace shorter than one slot: one ticked slot, then exhaustion
    let tenant = TenantId(0);
    let short = ArrivalTrace::new(vec![arrival(10.0, 1), arrival(500.0, 2)]);
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(tenant);
    let mut driver = FleetDriver::new(engine)
        .with_source(
            tenant,
            ArrivalTraceSource::new(tenant, &short, SLOT_MS, ENTRY),
        )
        .unwrap();
    let report = driver.run_until_exhausted(16).unwrap();
    assert_eq!(report.slots, 1);
    assert_eq!(report.records, 2);
    assert_eq!(report.metrics.tenant(tenant).unwrap().total_user_slots, 2);

    // a driver with no sources ticks empty slots (the clock never skips)
    let mut engine = FleetEngine::new(config(), 2, SEED);
    engine.add_tenant(tenant);
    let mut driver = FleetDriver::new(engine);
    let report = driver.run(3).unwrap();
    assert_eq!(report.slots, 3);
    assert_eq!(report.records, 0);
    assert_eq!(report.metrics.tenant(tenant).unwrap().slots, 3);
}
