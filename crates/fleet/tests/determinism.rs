//! Shard determinism: the same `TenantMix` seed must produce identical
//! `FleetMetrics` (and forecasts) across repeated runs, across thread
//! counts, across shard counts — and per-tenant results must be
//! bit-identical to running each tenant alone. All runs are driven through
//! the streaming ingestion API (`FleetDriver` over per-tenant
//! `TenantMixSource`s), which is itself required to reproduce the
//! deprecated `tick_mix` path exactly.

use mca_core::{ParallelismPolicy, SystemConfig, TimeSlotBuilder, WorkloadForecast};
use mca_fleet::{DriveReport, FleetDriver, FleetEngine, FleetMetrics, TelemetryMode, TenantShard};
use mca_offload::TenantId;
use mca_workload::TenantMix;

const SEED: u64 = 20170605;
const TENANTS: usize = 12;
const SLOTS: usize = 24;

fn config() -> SystemConfig {
    SystemConfig::paper_three_groups().with_history_window(16)
}

fn mix() -> TenantMix {
    TenantMix::heterogeneous(TENANTS, 12, config().groups.ids(), SEED)
}

fn run_fleet_mode(shards: usize, threads: usize, mode: TelemetryMode) -> DriveReport {
    let mix = mix();
    let mut engine = FleetEngine::new(config(), shards, SEED)
        .with_threads(threads)
        .with_telemetry(mode);
    engine.add_tenants(mix.tenant_ids());
    let mut driver = FleetDriver::new(engine)
        .with_mix(&mix)
        .expect("every tenant is part of the mix");
    driver.run(SLOTS).expect("mix sources never misbehave")
}

fn run_fleet(
    shards: usize,
    threads: usize,
) -> (FleetMetrics, Vec<(TenantId, Option<WorkloadForecast>)>) {
    let report = run_fleet_mode(shards, threads, TelemetryMode::default());
    (report.metrics, report.forecasts)
}

#[test]
fn repeated_runs_are_identical() {
    let (metrics_a, forecasts_a) = run_fleet(4, 2);
    let (metrics_b, forecasts_b) = run_fleet(4, 2);
    assert_eq!(metrics_a, metrics_b);
    assert_eq!(forecasts_a, forecasts_b);
}

#[test]
fn thread_count_does_not_change_results() {
    let (sequential, forecasts_seq) = run_fleet(6, 1);
    for threads in [2, 4, 8] {
        let (parallel, forecasts_par) = run_fleet(6, threads);
        assert_eq!(sequential, parallel, "threads={threads}");
        assert_eq!(forecasts_seq, forecasts_par, "threads={threads}");
    }
}

#[test]
fn shard_layout_does_not_change_results() {
    let (one, forecasts_one) = run_fleet(1, 2);
    for shards in [3, TENANTS, 64] {
        let (many, forecasts_many) = run_fleet(shards, 2);
        assert_eq!(one, many, "shards={shards}");
        assert_eq!(forecasts_one, forecasts_many, "shards={shards}");
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_tick_mix_shim_matches_the_driver_exactly() {
    // the legacy entry point is a shim over the same ingest path the driver
    // uses — fleet seed == mix seed makes the shard streams canonical, so
    // the two runs must agree bit for bit
    let mix = mix();
    let mut engine = FleetEngine::new(config(), 4, SEED).with_threads(2);
    engine.add_tenants(mix.tenant_ids());
    for _ in 0..SLOTS {
        engine.tick_mix(&mix);
    }
    let (driver_metrics, driver_forecasts) = run_fleet(4, 2);
    assert_eq!(engine.metrics(), driver_metrics);
    assert_eq!(engine.forecasts(), driver_forecasts);
}

#[test]
fn intra_predictor_parallel_scan_does_not_change_fleet_results() {
    // the chunked knowledge-base scan inside each predictor must be
    // invisible in every rollup, for any chunk count — even forced onto the
    // small histories of this mix
    let mix = mix();
    let baseline = {
        let mut engine = FleetEngine::new(config(), 4, SEED).with_threads(2);
        engine.add_tenants(mix.tenant_ids());
        let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();
        let report = driver.run(SLOTS).unwrap();
        (report.metrics, report.forecasts)
    };
    for chunks in [2, 4, 16] {
        let parallel_config = config()
            .with_parallelism(ParallelismPolicy::parallel(chunks).with_min_parallel_slots(1));
        let mut engine = FleetEngine::new(parallel_config, 4, SEED).with_threads(2);
        engine.add_tenants(mix.tenant_ids());
        let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();
        let report = driver.run(SLOTS).unwrap();
        assert_eq!(report.metrics, baseline.0, "chunks={chunks}");
        assert_eq!(report.forecasts, baseline.1, "chunks={chunks}");
    }
}

#[test]
fn telemetry_mode_does_not_change_forecasts_or_metrics() {
    // the tentpole guarantee of the instrumentation layer: enabling stage
    // tracing must not perturb a single forecast or metric, under any
    // telemetry mode and any thread count
    let (baseline_metrics, baseline_forecasts) = run_fleet(4, 1);
    for mode in [
        TelemetryMode::Disabled,
        TelemetryMode::Monotonic,
        TelemetryMode::Logical,
    ] {
        for threads in [1, 2, 4, 8] {
            let report = run_fleet_mode(4, threads, mode);
            assert_eq!(
                report.metrics, baseline_metrics,
                "{mode:?}, threads={threads}"
            );
            assert_eq!(
                report.forecasts, baseline_forecasts,
                "{mode:?}, threads={threads}"
            );
        }
    }
}

#[test]
fn logical_telemetry_snapshots_are_bit_identical_across_thread_counts() {
    // under the logical clock a histogram is a pure function of the event
    // sequence, and clocks are per shard — so the whole telemetry snapshot
    // (stage histograms, per-slot latency, per-shard loads) must reproduce
    // exactly whatever the thread count
    let baseline = run_fleet_mode(6, 1, TelemetryMode::Logical).telemetry;
    assert_eq!(baseline.slot.count() as usize, SLOTS);
    assert_eq!(baseline.stages.tick.count() as usize, 6 * SLOTS);
    assert_eq!(baseline.stages.predict.count() as usize, TENANTS * SLOTS);
    assert!(baseline.stages.predict.p99() > 0);
    for threads in [2, 4, 8] {
        let telemetry = run_fleet_mode(6, threads, TelemetryMode::Logical).telemetry;
        assert_eq!(telemetry, baseline, "threads={threads}");
    }
}

#[test]
fn fleet_forecasts_are_bit_identical_to_each_tenant_alone() {
    let mix = mix();
    let mut engine = FleetEngine::new(config(), 5, SEED).with_threads(4);
    engine.add_tenants(mix.tenant_ids());
    let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();

    // each tenant alone: a bare TenantShard (no router, no engine, no
    // parallelism) consuming the same mix through the same stream seeds
    let mut alone: Vec<TenantShard> = mix
        .tenant_ids()
        .map(|t| TenantShard::new(t, &config(), SEED))
        .collect();

    for slot in 0..SLOTS {
        driver.step().expect("mix sources never misbehave");
        let now_ms = (slot + 1) as f64 * config().slot_length_ms;
        for tenant in &mut alone {
            let records = mix.slot_records(tenant.id(), slot, tenant.rng_mut());
            let mut builder = TimeSlotBuilder::with_capacity(slot, records.len());
            builder.extend(records);
            tenant.tick(builder.build(), now_ms);
        }
        // compare after every slot, not just at the end
        for ((fleet_id, fleet_forecast), tenant) in driver.engine().forecasts().iter().zip(&alone) {
            assert_eq!(*fleet_id, tenant.id());
            assert_eq!(
                fleet_forecast.as_ref(),
                tenant.forecast(),
                "slot {slot}, tenant {fleet_id}"
            );
        }
    }
    // the accounting agrees too
    let rollup = driver.engine().metrics();
    let alone_rollup = FleetMetrics::aggregate(alone.iter().map(|t| t.metrics().clone()).collect());
    assert_eq!(rollup, alone_rollup);
}
