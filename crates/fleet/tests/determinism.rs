//! Shard determinism: the same `TenantMix` seed must produce identical
//! `FleetMetrics` (and forecasts) across repeated runs, across thread
//! counts, across shard counts — and per-tenant results must be
//! bit-identical to running each tenant alone. All runs are driven through
//! the streaming ingestion API (`FleetDriver` over per-tenant
//! `TenantMixSource`s), which is itself required to reproduce the
//! deprecated `tick_mix` path exactly.

use mca_cloudsim::{DatacenterConfig, PlacementKind};
use mca_core::{ParallelismPolicy, SystemConfig, TimeSlotBuilder, WorkloadForecast};
use mca_fleet::{
    DriveReport, FleetDriver, FleetEngine, FleetError, FleetMetrics, RebalancerConfig,
    RecordSource, TelemetryMode, TenantMixSource, TenantShard,
};
use mca_offload::TenantId;
use mca_snapshot::SnapshotError;
use mca_workload::TenantMix;

const SEED: u64 = 20170605;
const TENANTS: usize = 12;
const SLOTS: usize = 24;

fn config() -> SystemConfig {
    SystemConfig::paper_three_groups().with_history_window(16)
}

fn mix() -> TenantMix {
    TenantMix::heterogeneous(TENANTS, 12, config().groups.ids(), SEED)
}

fn run_fleet_mode(shards: usize, threads: usize, mode: TelemetryMode) -> DriveReport {
    let mix = mix();
    let mut engine = FleetEngine::new(config(), shards, SEED)
        .with_threads(threads)
        .with_telemetry(mode);
    engine.add_tenants(mix.tenant_ids());
    let mut driver = FleetDriver::new(engine)
        .with_mix(&mix)
        .expect("every tenant is part of the mix");
    driver.run(SLOTS).expect("mix sources never misbehave")
}

fn run_fleet(
    shards: usize,
    threads: usize,
) -> (FleetMetrics, Vec<(TenantId, Option<WorkloadForecast>)>) {
    let report = run_fleet_mode(shards, threads, TelemetryMode::default());
    (report.metrics, report.forecasts)
}

/// An aggressive rebalancer: fires on 5 % imbalance after a 2-slot warmup,
/// so the heterogeneous mix migrates tenants many times over a short drive.
fn aggressive_rebalancer() -> RebalancerConfig {
    RebalancerConfig::default()
        .with_ratio(1.05)
        .with_warmup_slots(2)
}

fn run_fleet_rebalanced(shards: usize, threads: usize, mode: TelemetryMode) -> DriveReport {
    let mix = mix();
    let mut engine = FleetEngine::new(config(), shards, SEED)
        .with_threads(threads)
        .with_telemetry(mode)
        .with_rebalancer(aggressive_rebalancer());
    engine.add_tenants(mix.tenant_ids());
    let mut driver = FleetDriver::new(engine)
        .with_mix(&mix)
        .expect("every tenant is part of the mix");
    driver.run(SLOTS).expect("mix sources never misbehave")
}

#[test]
fn repeated_runs_are_identical() {
    let (metrics_a, forecasts_a) = run_fleet(4, 2);
    let (metrics_b, forecasts_b) = run_fleet(4, 2);
    assert_eq!(metrics_a, metrics_b);
    assert_eq!(forecasts_a, forecasts_b);
}

#[test]
fn thread_count_does_not_change_results() {
    let (sequential, forecasts_seq) = run_fleet(6, 1);
    for threads in [2, 4, 8] {
        let (parallel, forecasts_par) = run_fleet(6, threads);
        assert_eq!(sequential, parallel, "threads={threads}");
        assert_eq!(forecasts_seq, forecasts_par, "threads={threads}");
    }
}

#[test]
fn shard_layout_does_not_change_results() {
    let (one, forecasts_one) = run_fleet(1, 2);
    for shards in [3, TENANTS, 64] {
        let (many, forecasts_many) = run_fleet(shards, 2);
        assert_eq!(one, many, "shards={shards}");
        assert_eq!(forecasts_one, forecasts_many, "shards={shards}");
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_tick_mix_shim_matches_the_driver_exactly() {
    // the legacy entry point is a shim over the same ingest path the driver
    // uses — fleet seed == mix seed makes the shard streams canonical, so
    // the two runs must agree bit for bit
    let mix = mix();
    let mut engine = FleetEngine::new(config(), 4, SEED).with_threads(2);
    engine.add_tenants(mix.tenant_ids());
    for _ in 0..SLOTS {
        engine.tick_mix(&mix);
    }
    let (driver_metrics, driver_forecasts) = run_fleet(4, 2);
    assert_eq!(engine.metrics(), driver_metrics);
    assert_eq!(engine.forecasts(), driver_forecasts);
}

#[test]
fn intra_predictor_parallel_scan_does_not_change_fleet_results() {
    // the chunked knowledge-base scan inside each predictor must be
    // invisible in every rollup, for any chunk count — even forced onto the
    // small histories of this mix
    let mix = mix();
    let baseline = {
        let mut engine = FleetEngine::new(config(), 4, SEED).with_threads(2);
        engine.add_tenants(mix.tenant_ids());
        let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();
        let report = driver.run(SLOTS).unwrap();
        (report.metrics, report.forecasts)
    };
    for chunks in [2, 4, 16] {
        let parallel_config = config()
            .with_parallelism(ParallelismPolicy::parallel(chunks).with_min_parallel_slots(1));
        let mut engine = FleetEngine::new(parallel_config, 4, SEED).with_threads(2);
        engine.add_tenants(mix.tenant_ids());
        let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();
        let report = driver.run(SLOTS).unwrap();
        assert_eq!(report.metrics, baseline.0, "chunks={chunks}");
        assert_eq!(report.forecasts, baseline.1, "chunks={chunks}");
    }
}

#[test]
fn telemetry_mode_does_not_change_forecasts_or_metrics() {
    // the tentpole guarantee of the instrumentation layer: enabling stage
    // tracing must not perturb a single forecast or metric, under any
    // telemetry mode and any thread count
    let (baseline_metrics, baseline_forecasts) = run_fleet(4, 1);
    for mode in [
        TelemetryMode::Disabled,
        TelemetryMode::Monotonic,
        TelemetryMode::Logical,
    ] {
        for threads in [1, 2, 4, 8] {
            let report = run_fleet_mode(4, threads, mode);
            assert_eq!(
                report.metrics, baseline_metrics,
                "{mode:?}, threads={threads}"
            );
            assert_eq!(
                report.forecasts, baseline_forecasts,
                "{mode:?}, threads={threads}"
            );
        }
    }
}

#[test]
fn logical_telemetry_snapshots_are_bit_identical_across_thread_counts() {
    // under the logical clock a histogram is a pure function of the event
    // sequence, and clocks are per shard — so the whole telemetry snapshot
    // (stage histograms, per-slot latency, per-shard loads) must reproduce
    // exactly whatever the thread count
    let baseline = run_fleet_mode(6, 1, TelemetryMode::Logical).telemetry;
    assert_eq!(baseline.slot.count() as usize, SLOTS);
    assert_eq!(baseline.stages.tick.count() as usize, 6 * SLOTS);
    assert_eq!(baseline.stages.predict.count() as usize, TENANTS * SLOTS);
    assert!(baseline.stages.predict.p99() > 0);
    for threads in [2, 4, 8] {
        let telemetry = run_fleet_mode(6, threads, TelemetryMode::Logical).telemetry;
        assert_eq!(telemetry, baseline, "threads={threads}");
    }
}

#[test]
fn rebalancing_does_not_change_forecasts_or_metrics_at_any_thread_count() {
    // the determinism bar of the elastic layer: a fleet that migrates
    // tenants between shards mid-drive must report forecasts and metrics
    // bit-identical to a fleet that never moves anyone
    let (baseline_metrics, baseline_forecasts) = run_fleet(4, 1);
    for threads in [1, 2, 4, 8] {
        let report = run_fleet_rebalanced(4, threads, TelemetryMode::default());
        let rebalance = report
            .telemetry
            .rebalance
            .as_ref()
            .expect("the rebalanced run carries its activity snapshot");
        assert!(
            rebalance.migrations > 0,
            "threads={threads}: the aggressive trigger must actually move tenants"
        );
        assert_eq!(report.metrics, baseline_metrics, "threads={threads}");
        assert_eq!(report.forecasts, baseline_forecasts, "threads={threads}");
    }
}

#[test]
fn rebalanced_logical_snapshots_are_bit_identical_across_thread_counts() {
    // under the logical clock the full telemetry snapshot includes the
    // rebalancer's activity (checks, migrations, per-shard loads), so
    // snapshot equality across thread counts proves the migration schedule
    // itself is thread-independent
    let baseline = run_fleet_rebalanced(6, 1, TelemetryMode::Logical).telemetry;
    let rebalance = baseline.rebalance.as_ref().unwrap();
    assert!(rebalance.migrations > 0);
    assert!(rebalance.checks >= rebalance.triggers);
    for threads in [2, 4, 8] {
        let telemetry = run_fleet_rebalanced(6, threads, TelemetryMode::Logical).telemetry;
        assert_eq!(telemetry, baseline, "threads={threads}");
    }
}

#[test]
fn mid_drive_migration_schedule_is_invisible_in_results() {
    // an explicit control-plane migration schedule — including moves landing
    // after the 16-slot window has begun evicting, and a fleet hosting a
    // user-sharded tenant throughout — must not change a forecast or metric
    let mix = mix();
    let drive = |schedule: &[(usize, TenantId, usize)]| {
        let mut engine = FleetEngine::new(config(), 4, SEED).with_threads(2);
        engine.add_user_sharded_tenant(TenantId(0));
        engine.add_tenants((1..TENANTS as u32).map(TenantId));
        let mut driver = FleetDriver::new(engine)
            .with_mix(&mix)
            .expect("every tenant is part of the mix");
        for slot in 0..SLOTS {
            for &(at, tenant, to) in schedule {
                if at == slot {
                    driver
                        .engine_mut()
                        .migrate_tenant(tenant, to)
                        .expect("the schedule names tenant-sharded tenants");
                }
            }
            driver.step().expect("mix sources never misbehave");
        }
        (driver.engine().metrics(), driver.engine().forecasts())
    };
    let baseline = drive(&[]);
    // slot 18 is past the window: those moves land in the same slot as an
    // eviction on every tenant with a full history
    let migrated = drive(&[
        (3, TenantId(5), 0),
        (18, TenantId(5), 2),
        (18, TenantId(7), 2),
    ]);
    assert_eq!(migrated, baseline);

    // the user-sharded tenant itself is immovable, as a typed error
    let mut engine = FleetEngine::new(config(), 4, SEED);
    engine.add_user_sharded_tenant(TenantId(0));
    assert!(matches!(
        engine.migrate_tenant(TenantId(0), 1),
        Err(FleetError::UserSharded { .. })
    ));
}

fn dc_config(placement: PlacementKind) -> SystemConfig {
    config().with_datacenter(DatacenterConfig::paper_default().with_placement(placement))
}

fn run_fleet_dc(
    shards: usize,
    threads: usize,
    placement: PlacementKind,
) -> (FleetMetrics, Vec<(TenantId, Option<WorkloadForecast>)>) {
    let mix = mix();
    let mut engine = FleetEngine::new(dc_config(placement), shards, SEED).with_threads(threads);
    engine.add_tenants(mix.tenant_ids());
    let mut driver = FleetDriver::new(engine)
        .with_mix(&mix)
        .expect("every tenant is part of the mix");
    let report = driver.run(SLOTS).expect("mix sources never misbehave");
    (report.metrics, report.forecasts)
}

/// The datacenter-only rollup fields, zeroed — what a datacenter run must
/// share bit-for-bit with an arithmetic run.
fn strip_datacenter(mut metrics: FleetMetrics) -> FleetMetrics {
    for tenant in &mut metrics.per_tenant {
        tenant.sla_violations = 0;
        tenant.sla_dropped_users = 0;
        tenant.sla_latency_ms = 0.0;
        tenant.energy_wh = 0.0;
        tenant.placed_instance_slots = 0;
        tenant.placement_failures = 0;
    }
    metrics.total_sla_violations = 0;
    metrics.total_sla_dropped_users = 0;
    metrics.total_sla_latency_ms = 0.0;
    metrics.total_energy_wh = 0.0;
    metrics.total_placed_instance_slots = 0;
    metrics.total_placement_failures = 0;
    metrics
}

#[test]
fn datacenter_billing_does_not_move_a_forecast_or_a_prediction_metric() {
    // the tentpole guarantee of the datacenter refactor: routing the bill
    // stage through simulated hosts must not change a forecast, an
    // allocation or a billed cent — only add the SLA/energy/placement
    // accounting on top — at any thread count
    let (baseline_metrics, baseline_forecasts) = run_fleet(4, 1);
    assert_eq!(
        baseline_metrics,
        strip_datacenter(baseline_metrics.clone()),
        "the arithmetic run carries no datacenter accounting"
    );
    for threads in [1, 2, 4, 8] {
        let (dc_metrics, dc_forecasts) = run_fleet_dc(4, threads, PlacementKind::FirstFit);
        assert_eq!(dc_forecasts, baseline_forecasts, "threads={threads}");
        assert_eq!(
            strip_datacenter(dc_metrics.clone()),
            baseline_metrics,
            "threads={threads}"
        );
        assert!(
            dc_metrics.total_placed_instance_slots > 0,
            "threads={threads}"
        );
        assert!(dc_metrics.total_energy_wh > 0.0, "threads={threads}");
        assert_eq!(dc_metrics.total_placement_failures, 0, "threads={threads}");
    }
}

#[test]
fn datacenter_rollups_are_bit_identical_across_thread_counts() {
    // the datacenter's own accounting (SLA scores, energy, placements) is
    // folded in tenant-id order, so it must reproduce exactly whatever the
    // thread count — for every placement policy
    for placement in PlacementKind::ALL {
        let (baseline, baseline_forecasts) = run_fleet_dc(4, 1, placement);
        assert!(baseline.total_placed_instance_slots > 0, "{placement}");
        assert!(baseline.total_energy_wh > 0.0, "{placement}");
        for threads in [2, 4, 8] {
            let (metrics, forecasts) = run_fleet_dc(4, threads, placement);
            assert_eq!(metrics, baseline, "{placement}, threads={threads}");
            assert_eq!(
                forecasts, baseline_forecasts,
                "{placement}, threads={threads}"
            );
        }
    }
}

#[test]
fn datacenter_accounting_survives_a_mid_drive_migration_schedule() {
    // migration moves the whole TenantShard — including its datacenter with
    // the standing placement — so an explicit control-plane schedule must
    // leave every rollup (SLA, energy, placements included) bit-identical
    let mix = mix();
    let drive = |schedule: &[(usize, TenantId, usize)]| {
        let mut engine =
            FleetEngine::new(dc_config(PlacementKind::BestFit), 4, SEED).with_threads(2);
        engine.add_tenants((0..TENANTS as u32).map(TenantId));
        let mut driver = FleetDriver::new(engine)
            .with_mix(&mix)
            .expect("every tenant is part of the mix");
        for slot in 0..SLOTS {
            for &(at, tenant, to) in schedule {
                if at == slot {
                    driver
                        .engine_mut()
                        .migrate_tenant(tenant, to)
                        .expect("the schedule names hosted tenants");
                }
            }
            driver.step().expect("mix sources never misbehave");
        }
        assert!(driver.engine().placement_health().is_ok());
        (driver.engine().metrics(), driver.engine().forecasts())
    };
    let baseline = drive(&[]);
    assert!(baseline.0.total_energy_wh > 0.0);
    let migrated = drive(&[
        (3, TenantId(5), 0),
        (18, TenantId(5), 2),
        (18, TenantId(7), 2),
    ]);
    assert_eq!(migrated, baseline);
}

// ---------------------------------------------------------------------------
// Durable sessions: checkpoint/restore resume
// ---------------------------------------------------------------------------

/// The full-featured configuration the resume bar is set against:
/// datacenter billing and the vantage-point index both on.
fn resume_config() -> SystemConfig {
    dc_config(PlacementKind::BestFit).with_indexed_scan()
}

/// A driver with everything stateful switched on: rebalancing, datacenter
/// billing, indexed predictors and the logical telemetry clock (so the
/// telemetry snapshot itself is comparable across runs).
fn resume_driver(threads: usize) -> FleetDriver {
    let mix = mix();
    let mut engine = FleetEngine::new(resume_config(), 4, SEED)
        .with_threads(threads)
        .with_telemetry(TelemetryMode::Logical)
        .with_rebalancer(aggressive_rebalancer());
    engine.add_tenants(mix.tenant_ids());
    FleetDriver::new(engine)
        .with_mix(&mix)
        .expect("every tenant is part of the mix")
}

/// Freshly constructed replacement sources for [`FleetDriver::restore`], in
/// the registration order `with_mix` used.
fn mix_sources() -> Vec<(Option<TenantId>, Box<dyn RecordSource>)> {
    let mix = mix();
    mix.tenant_ids()
        .map(|tenant| {
            let source = TenantMixSource::new(&mix, tenant).expect("tenant is part of the mix");
            (Some(tenant), Box::new(source) as Box<dyn RecordSource>)
        })
        .collect()
}

#[test]
fn restore_then_drive_is_bit_identical_to_the_uninterrupted_run() {
    // the tentpole guarantee of durable sessions: checkpoint at slot k,
    // restore into a fresh process-shaped driver, drive to slot n — and the
    // report (forecasts, metrics, datacenter accounting, ingestion
    // accounting) plus the logical-clock telemetry snapshot must equal the
    // uninterrupted run bit for bit, at any thread count. Slot 18 is past
    // the 16-slot window, so that checkpoint lands mid-eviction with the
    // vantage-point index mid-rebuild.
    let baseline = {
        let mut driver = resume_driver(1);
        driver.run(SLOTS).expect("mix sources never misbehave")
    };
    assert!(baseline.metrics.total_energy_wh > 0.0, "datacenter is on");
    assert!(
        baseline
            .telemetry
            .rebalance
            .as_ref()
            .expect("rebalancer is on")
            .migrations
            > 0,
        "the aggressive trigger must actually move tenants"
    );
    for checkpoint_slot in [12, 18] {
        for threads in [1, 2, 4, 8] {
            let mut driver = resume_driver(threads);
            driver.run(checkpoint_slot).expect("pre-checkpoint drive");
            let mut bytes = Vec::new();
            driver.checkpoint(&mut bytes).expect("checkpoint to memory");
            let mut source = bytes.as_slice();
            let mut resumed = FleetDriver::restore(&mut source, &resume_config(), mix_sources())
                .expect("restore from fresh bytes");
            assert_eq!(
                resumed.engine().forecasts(),
                driver.engine().forecasts(),
                "slot {checkpoint_slot}, threads={threads}: restored forecasts \
                 must match the checkpointed engine before any further slot"
            );
            let report = resumed
                .run(SLOTS - checkpoint_slot)
                .expect("post-restore drive");
            assert_eq!(
                report, baseline,
                "slot {checkpoint_slot}, threads={threads}"
            );
            assert_eq!(
                report.telemetry, baseline.telemetry,
                "slot {checkpoint_slot}, threads={threads}: logical-clock telemetry"
            );
        }
    }
}

#[test]
fn engine_checkpoint_roundtrips_without_a_driver() {
    // the engine-level API stands alone: a restored engine reports the same
    // forecasts, metrics and telemetry snapshot as the one it was taken from
    let mut driver = resume_driver(2);
    driver.run(SLOTS / 2).expect("mix sources never misbehave");
    let mut engine = driver.into_engine();
    let mut bytes = Vec::new();
    let stats = engine.checkpoint(&mut bytes).expect("checkpoint to memory");
    assert_eq!(u64::try_from(bytes.len()).unwrap(), stats.bytes);
    assert!(
        stats.sections >= 4 + 4,
        "meta, router, engine, rebalancer + one per shard"
    );
    let mut source = bytes.as_slice();
    let restored = FleetEngine::restore(&mut source, &resume_config()).expect("restore");
    assert_eq!(restored.forecasts(), engine.forecasts());
    assert_eq!(restored.metrics(), engine.metrics());
    assert_eq!(restored.telemetry(), engine.telemetry());
    assert_eq!(restored.slot_index(), engine.slot_index());
}

#[test]
fn restore_rejects_disagreeing_inputs_with_typed_errors() {
    let mut driver = resume_driver(2);
    driver.run(6).expect("mix sources never misbehave");
    let mut bytes = Vec::new();
    driver.checkpoint(&mut bytes).expect("checkpoint to memory");

    // a configuration that disagrees with the checkpoint's fingerprint
    let wrong_config = resume_config().with_slot_length_ms(12_345.0);
    let mut source = bytes.as_slice();
    assert!(matches!(
        FleetDriver::restore(&mut source, &wrong_config, mix_sources()),
        Err(SnapshotError::Malformed { .. })
    ));

    // the wrong number of replacement sources
    let mut source = bytes.as_slice();
    assert!(matches!(
        FleetDriver::restore(&mut source, &resume_config(), Vec::new()),
        Err(SnapshotError::Malformed { .. })
    ));

    // a source bound to the wrong tenant
    let mut swapped = mix_sources();
    swapped[0].0 = swapped[1].0;
    let mut source = bytes.as_slice();
    assert!(matches!(
        FleetDriver::restore(&mut source, &resume_config(), swapped),
        Err(SnapshotError::Malformed { .. })
    ));

    // truncation and corruption surface as their own variants
    let mut source = &bytes[..bytes.len() - 3];
    assert!(matches!(
        FleetDriver::restore(&mut source, &resume_config(), mix_sources()),
        Err(SnapshotError::Truncated { .. })
    ));
    let mut flipped = bytes.clone();
    let at = flipped.len() / 2;
    flipped[at] ^= 0x40;
    let mut source = flipped.as_slice();
    assert!(
        FleetDriver::restore(&mut source, &resume_config(), mix_sources()).is_err(),
        "a flipped byte must never restore silently"
    );
}

#[test]
fn fleet_forecasts_are_bit_identical_to_each_tenant_alone() {
    let mix = mix();
    let mut engine = FleetEngine::new(config(), 5, SEED).with_threads(4);
    engine.add_tenants(mix.tenant_ids());
    let mut driver = FleetDriver::new(engine).with_mix(&mix).unwrap();

    // each tenant alone: a bare TenantShard (no router, no engine, no
    // parallelism) consuming the same mix through the same stream seeds
    let mut alone: Vec<TenantShard> = mix
        .tenant_ids()
        .map(|t| TenantShard::new(t, &config(), SEED))
        .collect();

    for slot in 0..SLOTS {
        driver.step().expect("mix sources never misbehave");
        let now_ms = (slot + 1) as f64 * config().slot_length_ms;
        for tenant in &mut alone {
            let records = mix.slot_records(tenant.id(), slot, tenant.rng_mut());
            let mut builder = TimeSlotBuilder::with_capacity(slot, records.len());
            builder.extend(records);
            tenant.tick(builder.build(), now_ms);
        }
        // compare after every slot, not just at the end
        for ((fleet_id, fleet_forecast), tenant) in driver.engine().forecasts().iter().zip(&alone) {
            assert_eq!(*fleet_id, tenant.id());
            assert_eq!(
                fleet_forecast.as_ref(),
                tenant.forecast(),
                "slot {slot}, tenant {fleet_id}"
            );
        }
    }
    // the accounting agrees too
    let rollup = driver.engine().metrics();
    let alone_rollup = FleetMetrics::aggregate(alone.iter().map(|t| t.metrics().clone()).collect());
    assert_eq!(rollup, alone_rollup);
}
