//! Exposition formats: Prometheus-style text and a versioned JSON snapshot.
//!
//! Both serializers are hand-rolled writers over [`Registry`] iteration
//! order, so the output is byte-deterministic for a given registry. The JSON
//! snapshot carries a `version` field; consumers should reject versions they
//! do not understand rather than guess at field meanings.

use std::fmt::Write as _;

use crate::hist::LatencyHistogram;
use crate::registry::Registry;

/// Version stamped into every JSON snapshot. Bump when the snapshot shape
/// changes incompatibly.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Render the registry in Prometheus text exposition format.
///
/// Counters become `# TYPE <name> counter` samples, gauges become gauges,
/// and each histogram expands into cumulative `<name>_bucket{le="…"}`
/// samples plus `<name>_sum` and `<name>_count`, matching the conventional
/// Prometheus histogram encoding.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauges() {
        let _ = writeln!(out, "# TYPE {name} gauge");
        if value.is_finite() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name} NaN");
        }
    }
    for (name, hist) in registry.histograms() {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (upper, count) in hist.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{name}_sum {}", hist.sum());
        let _ = writeln!(out, "{name}_count {}", hist.count());
    }
    out
}

/// Render the registry as a versioned JSON snapshot.
///
/// Shape (version 1):
///
/// ```json
/// {
///   "version": 1,
///   "counters": { "<name>": <u64>, … },
///   "gauges": { "<name>": <f64|null>, … },
///   "histograms": {
///     "<name>": {
///       "count": <u64>, "sum": <u64>, "min": <u64>, "max": <u64>,
///       "p50": <u64>, "p99": <u64>, "p999": <u64>,
///       "buckets": [[<upper_bound>, <count>], …]
///     }, …
///   }
/// }
/// ```
///
/// Non-finite gauge values serialize as `null` (JSON has no NaN).
pub fn json_snapshot(registry: &Registry) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"version\":{SNAPSHOT_VERSION},");

    out.push_str("\"counters\":{");
    for (index, (name, value)) in registry.counters().enumerate() {
        if index > 0 {
            out.push(',');
        }
        write_json_string(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},");

    out.push_str("\"gauges\":{");
    for (index, (name, value)) in registry.gauges().enumerate() {
        if index > 0 {
            out.push(',');
        }
        write_json_string(&mut out, name);
        if value.is_finite() {
            let _ = write!(out, ":{value}");
        } else {
            out.push_str(":null");
        }
    }
    out.push_str("},");

    out.push_str("\"histograms\":{");
    for (index, (name, hist)) in registry.histograms().enumerate() {
        if index > 0 {
            out.push(',');
        }
        write_json_string(&mut out, name);
        out.push(':');
        write_histogram_json(&mut out, hist);
    }
    out.push_str("}}");
    out
}

fn write_histogram_json(out: &mut String, hist: &LatencyHistogram) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
        hist.count(),
        hist.sum(),
        hist.min(),
        hist.max(),
        hist.p50(),
        hist.p99(),
        hist.p999(),
    );
    for (index, (upper, count)) in hist.nonzero_buckets().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{upper},{count}]");
    }
    out.push_str("]}");
}

/// Append `value` as a JSON string literal, escaping as required by RFC 8259.
fn write_json_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut registry = Registry::new();
        registry.add_counter("fleet_records_total", 42);
        registry.set_gauge("shard_load_ewma", 3.5);
        let mut hist = LatencyHistogram::new();
        for v in [10u64, 20, 100, 5000] {
            hist.record(v);
        }
        registry.merge_histogram("tick_latency_ns", &hist);
        registry
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets_and_totals() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE fleet_records_total counter"));
        assert!(text.contains("fleet_records_total 42"));
        assert!(text.contains("shard_load_ewma 3.5"));
        assert!(text.contains("tick_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("tick_latency_ns_count 4"));
        assert!(text.contains("tick_latency_ns_sum 5130"));
    }

    #[test]
    fn json_snapshot_is_versioned_and_deterministic() {
        let a = json_snapshot(&sample_registry());
        let b = json_snapshot(&sample_registry());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"version\":1,"));
        assert!(a.contains("\"fleet_records_total\":42"));
        assert!(a.contains("\"count\":4"));
    }

    #[test]
    fn json_strings_escape_control_characters() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn empty_registry_still_produces_valid_shapes() {
        let registry = Registry::new();
        assert_eq!(prometheus_text(&registry), "");
        assert_eq!(
            json_snapshot(&registry),
            "{\"version\":1,\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
