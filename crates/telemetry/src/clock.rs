//! Pluggable clocks and the stage timer built on top of them.
//!
//! The instrumentation layer never calls [`std::time::Instant::now`] directly:
//! every duration measurement goes through a [`Clock`]. Real runs use the
//! [`MonotonicClock`]; tests and determinism suites use the [`LogicalClock`],
//! which advances by a fixed quantum on every read. Because the logical clock
//! is a plain counter, an instrumented run under it is *bit-identical* to an
//! uninstrumented run — the clock reads perturb nothing and the recorded
//! durations are a pure function of how many reads happened, which the
//! deterministic tick loop fixes exactly.

use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use std::time::Instant;

/// A source of monotonic nanosecond timestamps.
///
/// Implementations must be cheap (a handful of nanoseconds per read) and
/// monotone non-decreasing. Reads take `&mut self` so that logical clocks can
/// advance without interior mutability — the fleet keeps one clock per shard,
/// which also keeps logical timestamps deterministic under any thread count.
pub trait Clock {
    /// Current timestamp in nanoseconds since an arbitrary epoch.
    fn now_ns(&mut self) -> u64;
}

/// Wall-clock monotonic time, anchored at the clock's construction instant.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A monotonic clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&mut self) -> u64 {
        let elapsed = self.epoch.elapsed();
        elapsed
            .as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(elapsed.subsec_nanos()))
    }
}

/// A deterministic clock that advances by a fixed quantum on every read.
///
/// Two reads `t0`, `t1` around any stage therefore always measure exactly one
/// quantum, independent of the host, the optimiser, or the thread schedule.
/// This makes instrumented histograms a deterministic function of the event
/// counts alone, which the determinism suite exploits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalClock {
    next: u64,
    quantum: u64,
}

/// Default quantum for [`LogicalClock::default`]: 1µs per read.
pub const DEFAULT_LOGICAL_QUANTUM_NS: u64 = 1_000;

impl LogicalClock {
    /// A logical clock starting at zero that advances `quantum_ns` per read.
    pub fn new(quantum_ns: u64) -> Self {
        Self {
            next: 0,
            quantum: quantum_ns.max(1),
        }
    }

    /// Number of reads performed so far.
    pub fn reads(&self) -> u64 {
        self.next / self.quantum
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new(DEFAULT_LOGICAL_QUANTUM_NS)
    }
}

impl Clock for LogicalClock {
    fn now_ns(&mut self) -> u64 {
        let now = self.next;
        self.next = self.next.saturating_add(self.quantum);
        now
    }
}

/// The clock an instrumented component actually carries: disabled (all reads
/// return 0 and no histogram records anything), monotonic, or logical.
#[derive(Debug, Clone, Default)]
pub enum TelemetryClock {
    /// Telemetry off: reads cost one branch and return 0.
    #[default]
    Disabled,
    /// Wall-clock monotonic time for real measurement runs.
    Monotonic(MonotonicClock),
    /// Deterministic fixed-quantum time for tests.
    Logical(LogicalClock),
}

impl TelemetryClock {
    /// Whether measurements taken against this clock should be recorded.
    pub fn enabled(&self) -> bool {
        !matches!(self, TelemetryClock::Disabled)
    }
}

impl Clock for TelemetryClock {
    fn now_ns(&mut self) -> u64 {
        match self {
            TelemetryClock::Disabled => 0,
            TelemetryClock::Monotonic(c) => c.now_ns(),
            TelemetryClock::Logical(c) => c.now_ns(),
        }
    }
}

/// A logical clock checkpoints its counter exactly; restored reads continue
/// the same timestamp sequence, keeping logical-clock telemetry bit-identical
/// across a resume.
impl Snapshot for LogicalClock {
    fn encode(&self, out: &mut Vec<u8>) {
        self.next.encode(out);
        self.quantum.encode(out);
    }
}

impl Restore for LogicalClock {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let next = u64::decode(cur)?;
        let quantum = u64::decode(cur)?;
        if quantum == 0 {
            return Err(SnapshotError::Malformed {
                context: "logical clock quantum of zero",
            });
        }
        Ok(Self { next, quantum })
    }
}

/// A monotonic clock's epoch is an [`Instant`], which has no meaning in
/// another process: only the variant is checkpointed, and restore re-anchors
/// the epoch at "now". Wall-clock histograms therefore do not resume
/// bit-identically — only logical-clock telemetry carries that guarantee.
impl Snapshot for TelemetryClock {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TelemetryClock::Disabled => 0u8.encode(out),
            TelemetryClock::Monotonic(_) => 1u8.encode(out),
            TelemetryClock::Logical(c) => {
                2u8.encode(out);
                c.encode(out);
            }
        }
    }
}

impl Restore for TelemetryClock {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        match u8::decode(cur)? {
            0 => Ok(TelemetryClock::Disabled),
            1 => Ok(TelemetryClock::Monotonic(MonotonicClock::new())),
            2 => Ok(TelemetryClock::Logical(LogicalClock::decode(cur)?)),
            _ => Err(SnapshotError::Malformed {
                context: "telemetry clock tag",
            }),
        }
    }
}

/// A started stage measurement: holds the start timestamp, yields the elapsed
/// nanoseconds when stopped against the same clock.
///
/// `StageTimer` is a plain `u64` wrapper — starting and stopping a stage is
/// two clock reads and zero allocations. It deliberately does *not* borrow the
/// clock, so a shard can time nested and interleaved stages with one clock:
///
/// ```
/// use mca_telemetry::{Clock, LogicalClock, StageTimer};
/// let mut clock = LogicalClock::new(500);
/// let timer = StageTimer::start(&mut clock);
/// // ... stage body ...
/// let elapsed = timer.stop(&mut clock);
/// assert_eq!(elapsed, 500); // exactly one quantum under a logical clock
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StageTimer {
    started_ns: u64,
}

impl StageTimer {
    /// Read the clock and begin a measurement.
    pub fn start<C: Clock + ?Sized>(clock: &mut C) -> Self {
        Self {
            started_ns: clock.now_ns(),
        }
    }

    /// Read the clock again and return the elapsed nanoseconds.
    pub fn stop<C: Clock + ?Sized>(self, clock: &mut C) -> u64 {
        clock.now_ns().saturating_sub(self.started_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_non_decreasing() {
        let mut clock = MonotonicClock::new();
        let mut prev = clock.now_ns();
        for _ in 0..1000 {
            let now = clock.now_ns();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn logical_clock_measures_exactly_one_quantum_per_stage() {
        let mut clock = LogicalClock::new(250);
        for _ in 0..10 {
            let timer = StageTimer::start(&mut clock);
            assert_eq!(timer.stop(&mut clock), 250);
        }
        assert_eq!(clock.reads(), 20);
    }

    #[test]
    fn disabled_clock_always_reads_zero() {
        let mut clock = TelemetryClock::Disabled;
        assert!(!clock.enabled());
        let timer = StageTimer::start(&mut clock);
        assert_eq!(timer.stop(&mut clock), 0);
    }

    #[test]
    fn logical_quantum_is_clamped_to_at_least_one() {
        let mut clock = LogicalClock::new(0);
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b > a);
    }
}
