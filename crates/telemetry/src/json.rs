//! A minimal recursive-descent JSON parser.
//!
//! The workspace has no network access, so there is no `serde_json` to lean
//! on; this parser exists so the benchmark smoke gates can *round-trip
//! validate* the snapshots produced by [`crate::expo::json_snapshot`] — a
//! snapshot that fails to parse, or whose histogram totals disagree with the
//! recorded event counts, fails CI. It accepts strict RFC 8259 JSON (no
//! comments, no trailing commas) and keeps object keys in a `BTreeMap` for
//! deterministic iteration.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with sorted keys.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse `input` as a single JSON document.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed for metric names;
                            // accept lone BMP escapes only.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.error("empty char"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("expected hex digit")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("\"hi\\n\"").unwrap().as_str(), Some("hi\n"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse("{\"a\":[1,2,{\"b\":null}],\"c\":{}}").unwrap();
        let items = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("b"), Some(&JsonValue::Null));
        assert!(doc.get("c").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn round_trips_the_snapshot_exposition() {
        use crate::expo::json_snapshot;
        use crate::hist::LatencyHistogram;
        use crate::registry::Registry;

        let mut registry = Registry::new();
        registry.add_counter("events_total", 3);
        registry.set_gauge("load", 0.25);
        let mut hist = LatencyHistogram::new();
        for v in [5u64, 50, 500] {
            hist.record(v);
        }
        registry.merge_histogram("latency_ns", &hist);

        let doc = parse(&json_snapshot(&registry)).unwrap();
        assert_eq!(doc.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("events_total")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        let parsed = doc.get("histograms").unwrap().get("latency_ns").unwrap();
        assert_eq!(parsed.get("count").unwrap().as_u64(), Some(3));
        let buckets = parsed.get("buckets").unwrap().as_array().unwrap();
        let total: u64 = buckets
            .iter()
            .map(|pair| pair.as_array().unwrap()[1].as_u64().unwrap())
            .sum();
        assert_eq!(total, 3);
    }
}
