//! A deterministic counter / gauge / histogram registry.
//!
//! The registry is the *exposition-side* aggregation point, not the hot-path
//! store: instrumented components keep their own shard-local histograms and
//! plain integer counters, and a `Registry` is assembled only when a snapshot
//! is requested. Backing every family with a `BTreeMap` makes iteration order
//! (and therefore every exposition format) deterministic regardless of
//! insertion order.

use std::collections::BTreeMap;

use crate::hist::LatencyHistogram;

/// A named collection of counters, gauges and latency histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `value` to the counter `name`, creating it at zero if absent.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += value;
    }

    /// Set the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Merge `hist` into the histogram `name`, creating it if absent.
    pub fn merge_histogram(&mut self, name: &str, hist: &LatencyHistogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Current value of counter `name`, or `None` if absent.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of gauge `name`, or `None` if absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, or `None` if absent.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// Counters in lexicographic name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Gauges in lexicographic name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Histograms in lexicographic name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total number of metrics across all three families.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the registry holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_iterate_sorted() {
        let mut registry = Registry::new();
        registry.add_counter("zeta", 1);
        registry.add_counter("alpha", 2);
        registry.add_counter("zeta", 3);
        let names: Vec<_> = registry.counters().collect();
        assert_eq!(names, vec![("alpha", 2), ("zeta", 4)]);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut registry = Registry::new();
        registry.set_gauge("load", 1.5);
        registry.set_gauge("load", 2.5);
        assert_eq!(registry.gauge("load"), Some(2.5));
    }

    #[test]
    fn histograms_merge_across_inserts() {
        let mut registry = Registry::new();
        let mut a = LatencyHistogram::new();
        a.record(10);
        let mut b = LatencyHistogram::new();
        b.record(20);
        registry.merge_histogram("tick", &a);
        registry.merge_histogram("tick", &b);
        assert_eq!(registry.histogram("tick").unwrap().count(), 2);
        assert_eq!(registry.len(), 1);
    }
}
