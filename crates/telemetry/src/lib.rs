//! # mca-telemetry
//!
//! Zero-allocation-on-hot-path instrumentation for the fleet engine: stage
//! timers over a pluggable [`Clock`], fixed-bucket log-linear latency
//! histograms with exact p50/p99/p999 extraction, a deterministic
//! counter/gauge/histogram [`Registry`], and two exposition formats
//! (Prometheus-style text and a versioned JSON snapshot).
//!
//! ## Design rules
//!
//! * **The hot path never allocates.** [`StageTimer`] is two clock reads;
//!   [`LatencyHistogram::record`] is a counter increment after its one-time
//!   lazy table allocation; counters are plain integers owned by the
//!   instrumented component. The [`Registry`] is assembled only at snapshot
//!   time.
//! * **Instrumentation must not perturb determinism.** Every measurement goes
//!   through the [`Clock`] trait: real runs plug in [`MonotonicClock`], tests
//!   plug in [`LogicalClock`] (fixed quantum per read), and disabled
//!   telemetry reads a constant. Forecasts and metrics are bit-identical in
//!   all three modes — the determinism suite in `mca-fleet` proves it.
//! * **Exposition is byte-deterministic.** All families iterate in sorted
//!   name order; the JSON snapshot is versioned ([`SNAPSHOT_VERSION`]) and
//!   round-trip validated by the bundled [`json`] parser in CI.
//!
//! ```
//! use mca_telemetry::{
//!     json, json_snapshot, Clock, LatencyHistogram, LogicalClock, Registry, StageTimer,
//! };
//!
//! let mut clock = LogicalClock::default();
//! let mut hist = LatencyHistogram::new();
//! for _ in 0..100 {
//!     let timer = StageTimer::start(&mut clock);
//!     // ... stage under measurement ...
//!     hist.record(timer.stop(&mut clock));
//! }
//! assert_eq!(hist.count(), 100);
//!
//! let mut registry = Registry::new();
//! registry.merge_histogram("stage_ns", &hist);
//! let snapshot = json_snapshot(&registry);
//! assert!(json::parse(&snapshot).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod expo;
mod hist;
pub mod json;
mod registry;

pub use clock::{
    Clock, LogicalClock, MonotonicClock, StageTimer, TelemetryClock, DEFAULT_LOGICAL_QUANTUM_NS,
};
pub use expo::{json_snapshot, prometheus_text, SNAPSHOT_VERSION};
pub use hist::{LatencyHistogram, BUCKETS, SUB_BITS};
pub use registry::Registry;
