//! Fixed-bucket log-linear latency histograms with exact tail-quantile
//! extraction.
//!
//! The bucket layout is the classic HDR-style log2-with-sub-buckets scheme:
//! values below `2^SUB_BITS` land in exact unit-width buckets; above that,
//! every power-of-two octave is split into `2^SUB_BITS` equal sub-buckets.
//! With `SUB_BITS = 5` the worst-case relative error of any reported quantile
//! is `1/32 ≈ 3.1%`, the table is a fixed 1 920 slots (15 KiB of `u64`s), and
//! both recording and quantile extraction are branch-light integer code —
//! no floating point, no allocation after the first record.

use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
pub const SUB_BITS: u32 = 5;

const SUB_COUNT: usize = 1 << SUB_BITS; // 32
/// Total number of buckets: one exact unit bucket per value below
/// `2^SUB_BITS`, then `SUB_COUNT` sub-buckets for each octave `5..=63`.
pub const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT; // 1920

/// A log-linear latency histogram over `u64` nanosecond values.
///
/// The bucket table is allocated lazily on the first [`record`], so a
/// disabled-telemetry histogram costs 5 machine words and never touches the
/// allocator. All operations are deterministic functions of the recorded
/// values, which lets the determinism suite compare whole histograms built
/// under a logical clock across thread counts.
///
/// [`record`]: LatencyHistogram::record
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Index of the bucket holding `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let h = 63 - value.leading_zeros(); // floor(log2(value)), >= SUB_BITS
        let sub = (value >> (h - SUB_BITS)) as usize - SUB_COUNT;
        SUB_COUNT + (h - SUB_BITS) as usize * SUB_COUNT + sub
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_COUNT {
        (index as u64, index as u64)
    } else {
        let octave = (index - SUB_COUNT) / SUB_COUNT; // h - SUB_BITS
        let sub = ((index - SUB_COUNT) % SUB_COUNT) as u64;
        let width = 1u64 << octave;
        let lower = (SUB_COUNT as u64 + sub) << octave;
        (lower, lower + (width - 1))
    }
}

impl LatencyHistogram {
    /// An empty histogram. Does not allocate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `value` nanoseconds.
    ///
    /// Allocates the fixed bucket table on the first call; every subsequent
    /// call is a counter increment.
    pub fn record(&mut self, value: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile: the value at rank `ceil(q · count)`.
    ///
    /// Returns the *upper bound* of the bucket containing that rank, clamped
    /// to the recorded maximum — so the result never under-reports a tail and
    /// over-reports by at most the 1/32 bucket width. Values below
    /// `2^SUB_BITS` are exact. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate the non-empty buckets as `(upper_bound, count)` pairs in
    /// ascending value order — the shape Prometheus-style exposition wants.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| (bucket_bounds(index).1, n))
    }

    /// Reset to the empty state, releasing the bucket table.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

/// The wire form is sparse — `count, sum, min, max` then the non-empty
/// `(bucket index, count)` pairs — so an idle histogram costs a few bytes
/// instead of 15 KiB. The bucket table is re-allocated dense on decode
/// whenever `count > 0`, matching what [`LatencyHistogram::record`] would
/// have built.
impl Snapshot for LatencyHistogram {
    fn encode(&self, out: &mut Vec<u8>) {
        self.count.encode(out);
        self.sum.encode(out);
        self.min.encode(out);
        self.max.encode(out);
        let nonzero: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| (index as u32, n))
            .collect();
        nonzero.encode(out);
    }
}

impl Restore for LatencyHistogram {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let count = u64::decode(cur)?;
        let sum = u64::decode(cur)?;
        let min = u64::decode(cur)?;
        let max = u64::decode(cur)?;
        let nonzero = Vec::<(u32, u64)>::decode(cur)?;
        if count == 0 {
            if sum != 0 || !nonzero.is_empty() {
                return Err(SnapshotError::Malformed {
                    context: "empty histogram with nonzero buckets",
                });
            }
            return Ok(Self::default());
        }
        let mut buckets = vec![0u64; BUCKETS];
        let mut total = 0u64;
        let mut last_index = None;
        for (index, n) in nonzero {
            if last_index.is_some_and(|last| index <= last) {
                return Err(SnapshotError::Malformed {
                    context: "histogram bucket indices not strictly increasing",
                });
            }
            last_index = Some(index);
            let slot = buckets
                .get_mut(index as usize)
                .ok_or(SnapshotError::Malformed {
                    context: "histogram bucket index out of range",
                })?;
            *slot = n;
            total = total.saturating_add(n);
        }
        if total != count {
            return Err(SnapshotError::Malformed {
                context: "histogram bucket counts disagree with total",
            });
        }
        Ok(Self {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_in_range_and_bounds_contain_the_value() {
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for probe in [v.saturating_sub(1), v, v.saturating_add(1), v + v / 3] {
                let index = bucket_index(probe);
                assert!(index < BUCKETS, "index {index} out of range for {probe}");
                let (lower, upper) = bucket_bounds(index);
                assert!(lower <= probe && probe <= upper, "{probe} not in bucket");
            }
        }
        // Monotonicity sweep over a dense low range covering the
        // unit-bucket / octave-bucket boundary.
        let mut last = 0;
        for v in 0..100_000u64 {
            let index = bucket_index(v);
            assert!(index >= last);
            last = index;
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut hist = LatencyHistogram::new();
        for v in 0..32u64 {
            hist.record(v);
        }
        assert_eq!(hist.quantile(0.0), 0);
        assert_eq!(hist.quantile(1.0), 31);
        assert_eq!(hist.count(), 32);
        assert_eq!(hist.sum(), (0..32).sum::<u64>());
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut hist = LatencyHistogram::new();
        // A deterministic skewed distribution spanning several octaves.
        let mut values: Vec<u64> = Vec::new();
        let mut x = 37u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            values.push(1 + (x >> 40));
        }
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = hist.quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            let error = (approx - exact) as f64 / exact.max(1) as f64;
            assert!(error <= 1.0 / 32.0 + 1e-9, "q={q}: error {error}");
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in 0..500u64 {
            let scaled = v * v + 17;
            if v % 2 == 0 {
                left.record(scaled);
            } else {
                right.record(scaled);
            }
            both.record(scaled);
        }
        left.merge(&right);
        assert_eq!(left, both);
    }

    #[test]
    fn empty_histogram_reports_zeros_without_allocating() {
        let hist = LatencyHistogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.p50(), 0);
        assert_eq!(hist.p999(), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        assert!(hist.nonzero_buckets().next().is_none());
    }

    #[test]
    fn max_value_does_not_panic() {
        let mut hist = LatencyHistogram::new();
        hist.record(u64::MAX);
        hist.record(0);
        assert_eq!(hist.max(), u64::MAX);
        assert_eq!(hist.quantile(1.0), u64::MAX);
    }
}
