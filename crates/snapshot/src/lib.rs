//! Durable-session wire codec: versioned, sectioned, CRC-checked snapshots.
//!
//! The fleet's closed loop is a *continuously learning* controller — its
//! knowledge base is the product of uptime — so suspending a process must
//! not discard it. This crate is the process-to-process transport behind
//! checkpoint/restore: a dependency-free, hand-rolled binary codec (the
//! workspace's serde stand-ins implement only marker traits, so there is no
//! derive path) with the layout
//!
//! ```text
//! magic "MCAS" | version u16 LE
//! repeated sections:
//!   tag u16 LE | payload length u64 LE | CRC32(payload) u32 LE | payload
//! end marker: tag 0xFFFF
//! ```
//!
//! Every multi-byte integer is little-endian; `f64`s travel as their IEEE-754
//! bit patterns ([`f64::to_bits`]), so round-trips are bit-exact — the
//! repo's standing determinism invariant extends across a checkpoint
//! boundary. Decoding never panics: truncation, corruption (CRC mismatch),
//! version skew and malformed payloads all surface as a typed
//! [`SnapshotError`].
//!
//! Domain types implement [`Snapshot`] (encode into a byte buffer) and
//! [`Restore`] (decode from a [`Cursor`]); the traits ship with impls for
//! the primitives and the std collections the workspace's state lives in,
//! so a struct's impl is usually a field-by-field fold. Types whose restore
//! needs ambient context (a `SystemConfig`, a thread pool) expose inherent
//! `decode_state`-style constructors instead of `Restore`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};

/// The magic bytes every snapshot stream starts with.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MCAS";

/// The wire-format version this build writes and accepts.
///
/// Versioning policy: the format is rigid within a version — readers reject
/// any other version outright ([`SnapshotError::UnsupportedVersion`]) rather
/// than guessing at field offsets. Additive evolution bumps the version and
/// teaches the reader both layouts.
pub const SNAPSHOT_VERSION: u16 = 1;

/// The reserved end-of-stream section tag.
pub const END_TAG: u16 = 0xFFFF;

/// Why a snapshot could not be decoded (or written). Decoding is total:
/// arbitrary bytes produce one of these, never a panic and never a silently
/// wrong restore (payloads are CRC-checked and must be consumed exactly).
#[derive(Debug)]
pub enum SnapshotError {
    /// The stream ended before the announced bytes arrived.
    Truncated {
        /// What was being read when the stream ran out.
        context: &'static str,
    },
    /// The stream does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The stream's version is not the one this build understands.
    UnsupportedVersion {
        /// The version in the header.
        found: u16,
        /// The version this build supports.
        supported: u16,
    },
    /// A section's payload failed its CRC32 check.
    CorruptSection {
        /// The section's tag.
        tag: u16,
        /// The CRC stored in the stream.
        stored_crc: u32,
        /// The CRC computed over the payload actually read.
        computed_crc: u32,
    },
    /// The next section's tag is not the one the reader expected.
    UnexpectedSection {
        /// The tag the reader was asked for.
        expected: u16,
        /// The tag found in the stream ([`END_TAG`] when the stream ended
        /// early).
        found: u16,
    },
    /// A payload decoded to an impossible value (bad enum tag, trailing
    /// bytes, an out-of-range length, an invariant violation).
    Malformed {
        /// What was malformed.
        context: &'static str,
    },
    /// An underlying I/O failure other than clean truncation.
    Io(io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:?} (expected \"MCAS\")")
            }
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported snapshot version {found} (supported: {supported})")
            }
            SnapshotError::CorruptSection {
                tag,
                stored_crc,
                computed_crc,
            } => write!(
                f,
                "section {tag:#06x} corrupt: stored CRC {stored_crc:#010x}, computed {computed_crc:#010x}"
            ),
            SnapshotError::UnexpectedSection { expected, found } => {
                write!(f, "expected section {expected:#06x}, found {found:#06x}")
            }
            SnapshotError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated { context: "stream" }
        } else {
            SnapshotError::Io(e)
        }
    }
}

/// The IEEE CRC-32 lookup table (reflected, polynomial `0xEDB88320`),
/// computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// IEEE CRC-32 of a byte slice (the zlib/PNG polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in data {
        c = CRC_TABLE[((c ^ u32::from(byte)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What a completed write or read amounted to — the numbers the
/// `fleet_snapshot_*` telemetry counters and the snapshot benchmark report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotStats {
    /// Total bytes written/read, framing included.
    pub bytes: u64,
    /// Sections written/read (end marker excluded).
    pub sections: u32,
}

/// A bounds-checked read position over a decoded section payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or fails with [`SnapshotError::Truncated`].
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(SnapshotError::Truncated { context })?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// Serializes a value into the snapshot wire format.
pub trait Snapshot {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Deserializes a value from the snapshot wire format. Decoding must
/// consume exactly the bytes [`Snapshot::encode`] produced and must never
/// panic on adversarial input.
pub trait Restore: Sized {
    /// Decodes one value from the cursor.
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! impl_le_int {
    ($($t:ty),*) => {$(
        impl Snapshot for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Restore for $t {
            fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
                let bytes = cur.take(std::mem::size_of::<$t>(), stringify!($t))?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("take returned the exact size")))
            }
        }
    )*};
}

impl_le_int!(u8, u16, u32, u64, i64);

impl Snapshot for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}

impl Restore for usize {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        usize::try_from(u64::decode(cur)?).map_err(|_| SnapshotError::Malformed {
            context: "usize out of range for this platform",
        })
    }
}

impl Snapshot for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}

impl Restore for f64 {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(f64::from_bits(u64::decode(cur)?))
    }
}

impl Snapshot for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Restore for bool {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        match u8::decode(cur)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed {
                context: "bool tag",
            }),
        }
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => false.encode(out),
            Some(value) => {
                true.encode(out);
                value.encode(out);
            }
        }
    }
}

impl<T: Restore> Restore for Option<T> {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(if bool::decode(cur)? {
            Some(T::decode(cur)?)
        } else {
            None
        })
    }
}

/// Decoded collection lengths pre-allocate at most this many elements, so a
/// corrupt length prefix cannot force a huge allocation before the payload
/// bound catches it.
const PREALLOC_CAP: usize = 4096;

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Restore> Restore for Vec<T> {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let len = usize::decode(cur)?;
        let mut items = Vec::with_capacity(len.min(PREALLOC_CAP));
        for _ in 0..len {
            items.push(T::decode(cur)?);
        }
        Ok(items)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Restore> Restore for VecDeque<T> {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Vec::<T>::decode(cur)?.into())
    }
}

impl<K: Snapshot, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (key, value) in self {
            key.encode(out);
            value.encode(out);
        }
    }
}

impl<K: Restore + Ord, V: Restore> Restore for BTreeMap<K, V> {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let len = usize::decode(cur)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let key = K::decode(cur)?;
            let value = V::decode(cur)?;
            if map.insert(key, value).is_some() {
                return Err(SnapshotError::Malformed {
                    context: "duplicate map key",
                });
            }
        }
        Ok(map)
    }
}

impl<T: Snapshot> Snapshot for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Restore + Ord> Restore for BTreeSet<T> {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let len = usize::decode(cur)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            if !set.insert(T::decode(cur)?) {
                return Err(SnapshotError::Malformed {
                    context: "duplicate set element",
                });
            }
        }
        Ok(set)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Restore, B: Restore> Restore for (A, B) {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(cur)?, B::decode(cur)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}

impl<A: Restore, B: Restore, C: Restore> Restore for (A, B, C) {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(cur)?, B::decode(cur)?, C::decode(cur)?))
    }
}

impl Snapshot for [u64; 4] {
    fn encode(&self, out: &mut Vec<u8>) {
        for word in self {
            word.encode(out);
        }
    }
}

impl Restore for [u64; 4] {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok([
            u64::decode(cur)?,
            u64::decode(cur)?,
            u64::decode(cur)?,
            u64::decode(cur)?,
        ])
    }
}

/// Writes a snapshot stream: header, then tagged CRC-framed sections in
/// call order, then the end marker ([`SnapshotWriter::finish`]).
#[derive(Debug)]
pub struct SnapshotWriter<W: Write> {
    sink: W,
    bytes: u64,
    sections: u32,
}

impl<W: Write> SnapshotWriter<W> {
    /// Starts a stream: writes the magic and version header.
    pub fn new(mut sink: W) -> Result<Self, SnapshotError> {
        sink.write_all(&SNAPSHOT_MAGIC)?;
        sink.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        Ok(Self {
            sink,
            bytes: 6,
            sections: 0,
        })
    }

    /// Writes one raw section.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is the reserved [`END_TAG`].
    pub fn section(&mut self, tag: u16, payload: &[u8]) -> Result<(), SnapshotError> {
        assert_ne!(tag, END_TAG, "END_TAG is reserved for the end marker");
        self.sink.write_all(&tag.to_le_bytes())?;
        self.sink.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.sink.write_all(&crc32(payload).to_le_bytes())?;
        self.sink.write_all(payload)?;
        self.bytes += 14 + payload.len() as u64;
        self.sections += 1;
        Ok(())
    }

    /// Encodes `value` and writes it as one section.
    pub fn encode_section<T: Snapshot + ?Sized>(
        &mut self,
        tag: u16,
        value: &T,
    ) -> Result<(), SnapshotError> {
        let mut payload = Vec::new();
        value.encode(&mut payload);
        self.section(tag, &payload)
    }

    /// Writes the end marker, flushes, and reports what was written.
    pub fn finish(mut self) -> Result<SnapshotStats, SnapshotError> {
        self.sink.write_all(&END_TAG.to_le_bytes())?;
        self.bytes += 2;
        self.sink.flush()?;
        Ok(SnapshotStats {
            bytes: self.bytes,
            sections: self.sections,
        })
    }
}

/// Reads a snapshot stream section by section, validating the header, each
/// section's CRC, and the end marker.
#[derive(Debug)]
pub struct SnapshotReader<R: Read> {
    source: R,
    bytes: u64,
    sections: u32,
}

impl<R: Read> SnapshotReader<R> {
    /// Opens a stream: validates the magic and version header.
    pub fn new(mut source: R) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 4];
        read_exact(&mut source, &mut magic, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let mut version = [0u8; 2];
        read_exact(&mut source, &mut version, "version")?;
        let version = u16::from_le_bytes(version);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        Ok(Self {
            source,
            bytes: 6,
            sections: 0,
        })
    }

    /// Reads the next section, which must carry `expected` as its tag, and
    /// returns its CRC-verified payload.
    pub fn section(&mut self, expected: u16) -> Result<Vec<u8>, SnapshotError> {
        let tag = self.read_tag()?;
        if tag != expected {
            return Err(SnapshotError::UnexpectedSection {
                expected,
                found: tag,
            });
        }
        let mut header = [0u8; 12];
        read_exact(&mut self.source, &mut header, "section header")?;
        let len = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
        let stored_crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        // Read through `take` so a corrupt (huge) length yields Truncated at
        // the real end of data instead of a pre-allocation blow-up.
        let mut payload = Vec::new();
        (&mut self.source)
            .take(len)
            .read_to_end(&mut payload)
            .map_err(SnapshotError::from)?;
        if payload.len() as u64 != len {
            return Err(SnapshotError::Truncated {
                context: "section payload",
            });
        }
        let computed_crc = crc32(&payload);
        if computed_crc != stored_crc {
            return Err(SnapshotError::CorruptSection {
                tag,
                stored_crc,
                computed_crc,
            });
        }
        self.bytes += 12 + len; // the tag's 2 bytes were counted in read_tag
        self.sections += 1;
        Ok(payload)
    }

    /// Reads the next section and decodes it as `T`, requiring the payload
    /// to be consumed exactly.
    pub fn decode_section<T: Restore>(&mut self, tag: u16) -> Result<T, SnapshotError> {
        let payload = self.section(tag)?;
        let mut cur = Cursor::new(&payload);
        let value = T::decode(&mut cur)?;
        if !cur.is_empty() {
            return Err(SnapshotError::Malformed {
                context: "trailing bytes in section",
            });
        }
        Ok(value)
    }

    /// Consumes the end marker and reports what was read.
    pub fn finish(mut self) -> Result<SnapshotStats, SnapshotError> {
        let tag = self.read_tag()?;
        if tag != END_TAG {
            return Err(SnapshotError::UnexpectedSection {
                expected: END_TAG,
                found: tag,
            });
        }
        Ok(SnapshotStats {
            bytes: self.bytes,
            sections: self.sections,
        })
    }

    fn read_tag(&mut self) -> Result<u16, SnapshotError> {
        let mut tag = [0u8; 2];
        read_exact(&mut self.source, &mut tag, "section tag")?;
        self.bytes += 2;
        Ok(u16::from_le_bytes(tag))
    }
}

fn read_exact<R: Read>(
    source: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), SnapshotError> {
    source.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated { context }
        } else {
            SnapshotError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // the canonical IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn write_two_sections() -> Vec<u8> {
        let mut buf = Vec::new();
        let mut writer = SnapshotWriter::new(&mut buf).unwrap();
        writer
            .encode_section(1, &vec![(3u32, 4.5f64), (7u32, -0.0f64)])
            .unwrap();
        writer.encode_section(2, &Some(42u64)).unwrap();
        let stats = writer.finish().unwrap();
        assert_eq!(stats.sections, 2);
        assert_eq!(stats.bytes as usize, buf.len());
        buf
    }

    #[test]
    fn round_trip_preserves_values_bit_exactly() {
        let buf = write_two_sections();
        let mut reader = SnapshotReader::new(buf.as_slice()).unwrap();
        let pairs: Vec<(u32, f64)> = reader.decode_section(1).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (3, 4.5));
        assert_eq!(pairs[1].0, 7);
        assert_eq!(
            pairs[1].1.to_bits(),
            (-0.0f64).to_bits(),
            "signed zero survives"
        );
        let answer: Option<u64> = reader.decode_section(2).unwrap();
        assert_eq!(answer, Some(42));
        let stats = reader.finish().unwrap();
        assert_eq!(stats.bytes as usize, buf.len());
    }

    #[test]
    fn collections_and_scalars_round_trip() {
        let map: BTreeMap<u32, Vec<u8>> = [(1, vec![2, 3]), (9, vec![])].into();
        let set: BTreeSet<u64> = [5, 11].into();
        let deque: VecDeque<usize> = vec![8, 6, 7].into();
        let state: [u64; 4] = [1, u64::MAX, 0, 0xDEAD_BEEF];
        let mut out = Vec::new();
        map.encode(&mut out);
        set.encode(&mut out);
        deque.encode(&mut out);
        state.encode(&mut out);
        true.encode(&mut out);
        (-5i64).encode(&mut out);
        let mut cur = Cursor::new(&out);
        assert_eq!(BTreeMap::<u32, Vec<u8>>::decode(&mut cur).unwrap(), map);
        assert_eq!(BTreeSet::<u64>::decode(&mut cur).unwrap(), set);
        assert_eq!(VecDeque::<usize>::decode(&mut cur).unwrap(), deque);
        assert_eq!(<[u64; 4]>::decode(&mut cur).unwrap(), state);
        assert!(bool::decode(&mut cur).unwrap());
        assert_eq!(i64::decode(&mut cur).unwrap(), -5);
        assert!(cur.is_empty());
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let mut buf = write_two_sections();
        buf[0] ^= 0xFF;
        assert!(matches!(
            SnapshotReader::new(buf.as_slice()).unwrap_err(),
            SnapshotError::BadMagic { .. }
        ));
        let mut buf = write_two_sections();
        buf[4] = 0x7F; // version low byte
        assert!(matches!(
            SnapshotReader::new(buf.as_slice()).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 0x7F, .. }
        ));
    }

    #[test]
    fn payload_corruption_is_caught_by_the_crc() {
        let mut buf = write_two_sections();
        let last = buf.len() - 3; // inside section 2's payload
        buf[last] ^= 0x01;
        let mut reader = SnapshotReader::new(buf.as_slice()).unwrap();
        let _: Vec<(u32, f64)> = reader.decode_section(1).unwrap();
        assert!(matches!(
            reader.decode_section::<Option<u64>>(2).unwrap_err(),
            SnapshotError::CorruptSection { tag: 2, .. }
        ));
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let buf = write_two_sections();
        for cut in 0..buf.len() {
            let mut reader = match SnapshotReader::new(&buf[..cut]) {
                Ok(reader) => reader,
                Err(SnapshotError::Truncated { .. }) => continue,
                Err(other) => panic!("cut {cut}: unexpected header error {other}"),
            };
            let outcome = reader
                .decode_section::<Vec<(u32, f64)>>(1)
                .and_then(|_| reader.decode_section::<Option<u64>>(2))
                .and_then(|_| reader.finish().map(|_| ()));
            assert!(
                matches!(
                    outcome,
                    Err(SnapshotError::Truncated { .. })
                        | Err(SnapshotError::UnexpectedSection { .. })
                ),
                "cut {cut}: {outcome:?}"
            );
        }
    }

    #[test]
    fn wrong_tag_and_trailing_bytes_are_rejected() {
        let buf = write_two_sections();
        let mut reader = SnapshotReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            reader.section(9).unwrap_err(),
            SnapshotError::UnexpectedSection {
                expected: 9,
                found: 1
            }
        ));
        // decoding section 1 as a smaller type leaves trailing bytes
        let mut reader = SnapshotReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            reader.decode_section::<u64>(1).unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
    }

    #[test]
    fn malformed_scalars_are_rejected() {
        let mut cur = Cursor::new(&[2u8]);
        assert!(matches!(
            bool::decode(&mut cur).unwrap_err(),
            SnapshotError::Malformed {
                context: "bool tag"
            }
        ));
        // a map with a duplicate key cannot round-trip silently
        let mut out = Vec::new();
        2usize.encode(&mut out);
        1u32.encode(&mut out);
        5u8.encode(&mut out);
        1u32.encode(&mut out);
        6u8.encode(&mut out);
        let mut cur = Cursor::new(&out);
        assert!(matches!(
            BTreeMap::<u32, u8>::decode(&mut cur).unwrap_err(),
            SnapshotError::Malformed { .. }
        ));
    }

    #[test]
    fn corrupt_length_prefix_does_not_allocate_unbounded() {
        let mut buf = Vec::new();
        let mut writer = SnapshotWriter::new(&mut buf).unwrap();
        writer.section(1, b"tiny").unwrap();
        writer.finish().unwrap();
        // blow the length field up to ~2^63 while keeping the stream short
        buf[8] = 0xFF;
        buf[14] = 0x7F;
        let mut reader = SnapshotReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            reader.section(1).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }
}
