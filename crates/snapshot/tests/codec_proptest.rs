//! Adversarial property tests over the checkpoint wire codec.
//!
//! The codec's contract is that **every** malformed input surfaces as a
//! typed [`SnapshotError`] — truncation at any byte, any single flipped
//! byte, a wrong or future format version — and that a well-formed stream
//! round-trips bit for bit. Nothing here may panic, and no corruption may
//! restore silently.

use mca_snapshot::{
    Cursor, Restore, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, END_TAG,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Encodes `sections` into a complete snapshot stream.
fn build_stream(sections: &[(u16, Vec<u8>)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut writer = SnapshotWriter::new(&mut bytes).expect("writing to a Vec cannot fail");
    for (tag, payload) in sections {
        writer.section(*tag, payload).expect("section write");
    }
    writer.finish().expect("finish");
    bytes
}

/// Reads a stream back, expecting `tags` in order; returns the payloads.
fn read_stream(bytes: &[u8], tags: &[u16]) -> Result<Vec<Vec<u8>>, SnapshotError> {
    let mut source = bytes;
    let mut reader = SnapshotReader::new(&mut source)?;
    let mut payloads = Vec::new();
    for &tag in tags {
        payloads.push(reader.section(tag)?);
    }
    reader.finish()?;
    Ok(payloads)
}

/// Narrows the generated `(tag, wide-byte payload)` list to real sections
/// (the vendored strategy set has no `u8` inclusive range, so payload bytes
/// travel as `u16` and fold down here).
fn to_sections(raw: Vec<(u16, Vec<u16>)>) -> Vec<(u16, Vec<u8>)> {
    raw.into_iter()
        .map(|(tag, payload)| (tag, payload.into_iter().map(|b| b as u8).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A well-formed stream round-trips every section bit for bit, in
    /// order.
    #[test]
    fn roundtrip_restores_every_section(
        raw in proptest::collection::vec(
            (0u16..END_TAG, proptest::collection::vec(0u16..256, 0..64)),
            0..5,
        ),
    ) {
        let sections = to_sections(raw);
        let bytes = build_stream(&sections);
        let tags: Vec<u16> = sections.iter().map(|(tag, _)| *tag).collect();
        let payloads = read_stream(&bytes, &tags).expect("well-formed stream");
        let expected: Vec<Vec<u8>> = sections.into_iter().map(|(_, p)| p).collect();
        prop_assert_eq!(payloads, expected);
    }

    /// Truncating a stream at **any** byte surfaces as
    /// [`SnapshotError::Truncated`] — the reader never panics and never
    /// returns a partial restore as success.
    #[test]
    fn truncation_at_any_byte_is_a_typed_error(
        raw in proptest::collection::vec(
            (0u16..END_TAG, proptest::collection::vec(0u16..256, 0..64)),
            0..5,
        ),
        cut_seed in 0usize..1_000_000,
    ) {
        let sections = to_sections(raw);
        let bytes = build_stream(&sections);
        let cut = cut_seed % bytes.len(); // strictly shorter than the stream
        let tags: Vec<u16> = sections.iter().map(|(tag, _)| *tag).collect();
        let result = read_stream(&bytes[..cut], &tags);
        prop_assert!(
            matches!(result, Err(SnapshotError::Truncated { .. })),
            "cut at {} of {} gave {:?}",
            cut,
            bytes.len(),
            result
        );
    }

    /// Flipping any single byte of the stream surfaces as a typed error —
    /// magic and version flips classify precisely, everything else is
    /// caught by framing or the per-section CRC. No flip restores
    /// silently.
    #[test]
    fn single_byte_flips_never_restore_silently(
        raw in proptest::collection::vec(
            (0u16..END_TAG, proptest::collection::vec(0u16..256, 0..64)),
            0..5,
        ),
        at_seed in 0usize..1_000_000,
        xor in 1u16..256,
    ) {
        let sections = to_sections(raw);
        let mut bytes = build_stream(&sections);
        let at = at_seed % bytes.len();
        bytes[at] ^= xor as u8;
        let tags: Vec<u16> = sections.iter().map(|(tag, _)| *tag).collect();
        let result = read_stream(&bytes, &tags);
        match at {
            0..=3 => prop_assert!(
                matches!(result, Err(SnapshotError::BadMagic { .. })),
                "magic flip at {} gave {:?}", at, result
            ),
            4..=5 => prop_assert!(
                matches!(result, Err(SnapshotError::UnsupportedVersion { .. })),
                "version flip at {} gave {:?}", at, result
            ),
            _ => prop_assert!(result.is_err(), "body flip at {} restored: {:?}", at, result),
        }
    }

    /// A header claiming any version other than the supported one is
    /// rejected up front, before any section is interpreted.
    #[test]
    fn wrong_version_headers_are_rejected(
        raw in proptest::collection::vec(
            (0u16..END_TAG, proptest::collection::vec(0u16..256, 0..16)),
            0..3,
        ),
        version_seed in 0u32..65_536,
    ) {
        let version = version_seed as u16;
        let version = if version == SNAPSHOT_VERSION {
            SNAPSHOT_VERSION.wrapping_add(1)
        } else {
            version
        };
        let mut bytes = build_stream(&to_sections(raw));
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        let mut source = bytes.as_slice();
        let result = SnapshotReader::new(&mut source);
        prop_assert!(matches!(
            result.err(),
            Some(SnapshotError::UnsupportedVersion { found, supported })
                if found == version && supported == SNAPSHOT_VERSION
        ));
    }

    /// The blanket value impls round-trip exactly: integers, float bit
    /// patterns, nested containers, options and tuples.
    #[test]
    fn value_impls_roundtrip_exactly(
        a in 0u64..u64::MAX,
        bits in 0u64..u64::MAX,
        v in proptest::collection::vec(0u32..u32::MAX, 0..32),
        entries in proptest::collection::vec((0u16..u16::MAX, 0i64..i64::MAX), 0..16),
        opt_seed in 0u16..512,
        pair in (0u8..2, 0u64..u64::MAX),
    ) {
        let f = f64::from_bits(bits);
        let m: BTreeMap<u16, i64> = entries.into_iter().collect();
        let o: Option<u8> = if opt_seed < 256 { Some(opt_seed as u8) } else { None };
        let pair = (pair.0 == 1, pair.1);
        let mut out = Vec::new();
        a.encode(&mut out);
        f.encode(&mut out);
        v.encode(&mut out);
        m.encode(&mut out);
        o.encode(&mut out);
        pair.encode(&mut out);
        let mut cur = Cursor::new(&out);
        prop_assert_eq!(u64::decode(&mut cur).unwrap(), a);
        prop_assert_eq!(f64::decode(&mut cur).unwrap().to_bits(), bits);
        prop_assert_eq!(Vec::<u32>::decode(&mut cur).unwrap(), v);
        prop_assert_eq!(BTreeMap::<u16, i64>::decode(&mut cur).unwrap(), m);
        prop_assert_eq!(Option::<u8>::decode(&mut cur).unwrap(), o);
        prop_assert_eq!(<(bool, u64)>::decode(&mut cur).unwrap(), pair);
        prop_assert!(cur.is_empty());
    }
}

/// The degenerate inputs the ranges above skip: an empty stream and a
/// stream holding only the header.
#[test]
fn empty_and_header_only_streams_are_truncations() {
    let mut empty: &[u8] = &[];
    assert!(matches!(
        SnapshotReader::new(&mut empty).err(),
        Some(SnapshotError::Truncated { .. })
    ));

    let mut header = Vec::new();
    header.extend_from_slice(&SNAPSHOT_MAGIC);
    header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    let mut source = header.as_slice();
    let reader = SnapshotReader::new(&mut source).expect("header alone parses");
    assert!(matches!(
        reader.finish().err(),
        Some(SnapshotError::Truncated { .. })
    ));
}
