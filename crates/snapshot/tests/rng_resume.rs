//! A restored RNG must continue its stream exactly: the serialized state
//! words are the whole generator, so the next N draws after a round-trip
//! through the wire format equal the draws the original would have made.

use mca_snapshot::{Cursor, Restore, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

#[test]
fn restored_rng_continues_the_stream_exactly() {
    for seed in [0u64, 1, 20170605, u64::MAX] {
        let mut original = StdRng::seed_from_u64(seed);
        // advance mid-stream so the checkpoint is not the seed state
        for _ in 0..257 {
            original.next_u64();
        }
        let mut bytes = Vec::new();
        original.state().encode(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let mut restored = StdRng::from_state(<[u64; 4]>::decode(&mut cur).unwrap());
        assert!(cur.is_empty());
        for draw in 0..1_000 {
            let expected = original.next_u64();
            let got = restored.next_u64();
            assert_eq!(got, expected, "seed {seed}, draw {draw}");
        }
        // ranged draws travel through the same words
        for draw in 0..100 {
            let expected = original.gen_range(0.0f64..1.0);
            let got = restored.gen_range(0.0f64..1.0);
            assert_eq!(
                got.to_bits(),
                expected.to_bits(),
                "seed {seed}, draw {draw}"
            );
        }
    }
}
