//! Time slots: the per-interval assignment of users to acceleration groups.
//!
//! §IV-A: "The traces are sorted in chronological order and transformed into a
//! set of time slots. Let `T` be a set of time slots `T = {t_i}` … of equal
//! length … Each time slot consists of a set of acceleration groups … each
//! acceleration group at a time period `t` contains a certain number of users
//! or an empty set." The model supports any slot length, defined in
//! (fractions of) hours.
//!
//! # Representation
//!
//! A slot stores one *run* per non-empty acceleration group: a sorted,
//! deduplicated `Vec<UserId>`. Runs are kept sorted by group id. This flat
//! layout exists for the workload predictor's sake — it compares the current
//! slot against every historical slot each interval, and sorted runs let
//! [`crate::distance`] compute edit distances as allocation-free linear
//! merges while [`TimeSlot::users_in`] hands out a borrowed `&[UserId]`
//! instead of cloning a set. Semantics are unchanged from the earlier
//! `BTreeMap<_, BTreeSet<_>>` representation: the same `(group, user)` pairs
//! produce an equal slot regardless of insertion order, and a user assigned
//! twice is stored once.

use crate::logs::TraceLog;
use crate::window::SlotWindower;
use mca_offload::{AccelerationGroupId, TraceRecord, UserId};
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};

/// The users of one acceleration group within a slot, sorted by id and
/// deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct GroupRun {
    group: AccelerationGroupId,
    users: Vec<UserId>,
}

/// One time slot `t_i`: which users were active in which acceleration group.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSlot {
    /// Slot index within the history (chronological).
    pub index: usize,
    /// One run per non-empty group, sorted by group id.
    runs: Vec<GroupRun>,
}

impl TimeSlot {
    /// Creates an empty slot with the given index.
    pub fn new(index: usize) -> Self {
        Self {
            index,
            runs: Vec::new(),
        }
    }

    /// Records that `user` was active in `group` during this slot. A user
    /// that appears in several groups within one slot (it was promoted
    /// mid-slot) is counted in each group it touched, matching the paper's
    /// per-group workload definition `W_an`.
    pub fn assign(&mut self, group: AccelerationGroupId, user: UserId) {
        let run = match self.runs.binary_search_by_key(&group, |r| r.group) {
            Ok(at) => &mut self.runs[at],
            Err(at) => {
                self.runs.insert(
                    at,
                    GroupRun {
                        group,
                        users: Vec::new(),
                    },
                );
                &mut self.runs[at]
            }
        };
        // the common case is appending in increasing user order
        match run.users.last() {
            Some(&last) if last < user => run.users.push(user),
            Some(&last) if last == user => {}
            _ => {
                if let Err(at) = run.users.binary_search(&user) {
                    run.users.insert(at, user);
                }
            }
        }
    }

    /// The users active in `group`, sorted by id (empty slice when none).
    ///
    /// This is a borrow into the slot — the predictor's distance loops call
    /// it for every (slot, group) pair and must not allocate.
    pub fn users_in(&self, group: AccelerationGroupId) -> &[UserId] {
        match self.runs.binary_search_by_key(&group, |r| r.group) {
            Ok(at) => &self.runs[at].users,
            Err(_) => &[],
        }
    }

    /// Number of users active in `group` — the workload `W_an`.
    pub fn load_of(&self, group: AccelerationGroupId) -> usize {
        self.users_in(group).len()
    }

    /// The acceleration groups that have at least one user in this slot, in
    /// increasing id order.
    pub fn groups(&self) -> impl Iterator<Item = AccelerationGroupId> + '_ {
        self.runs.iter().map(|r| r.group)
    }

    /// `(group, user count)` per non-empty group, in increasing group order —
    /// the slot's count signature, used by the predictor's pruning bound.
    pub fn group_loads(&self) -> impl Iterator<Item = (AccelerationGroupId, usize)> + '_ {
        self.runs.iter().map(|r| (r.group, r.users.len()))
    }

    /// Total number of distinct users active in the slot.
    pub fn total_users(&self) -> usize {
        match self.runs.len() {
            0 => 0,
            1 => self.runs[0].users.len(),
            _ => {
                // count the union of the sorted runs with a k-way merge
                let mut cursors = vec![0usize; self.runs.len()];
                let mut distinct = 0usize;
                loop {
                    let mut lowest: Option<UserId> = None;
                    for (run, &cursor) in self.runs.iter().zip(&cursors) {
                        if let Some(&user) = run.users.get(cursor) {
                            lowest = Some(lowest.map_or(user, |low: UserId| low.min(user)));
                        }
                    }
                    let Some(lowest) = lowest else { break };
                    distinct += 1;
                    for (run, cursor) in self.runs.iter().zip(&mut cursors) {
                        if run.users.get(*cursor) == Some(&lowest) {
                            *cursor += 1;
                        }
                    }
                }
                distinct
            }
        }
    }

    /// The per-group workload vector over `groups` (0 for missing groups).
    pub fn workload_vector(&self, groups: &[AccelerationGroupId]) -> Vec<usize> {
        groups.iter().map(|g| self.load_of(*g)).collect()
    }

    /// Returns `true` when no user is assigned to any group.
    pub fn is_empty(&self) -> bool {
        // runs are only materialized by `assign`, so none is ever empty
        self.runs.is_empty()
    }

    /// Builds a slot directly from `(group, user)` pairs (mainly for tests
    /// and synthetic histories).
    pub fn from_assignments(
        index: usize,
        pairs: impl IntoIterator<Item = (AccelerationGroupId, UserId)>,
    ) -> Self {
        let mut builder = TimeSlotBuilder::new(index);
        builder.extend(pairs);
        builder.build()
    }
}

impl Snapshot for GroupRun {
    fn encode(&self, out: &mut Vec<u8>) {
        self.group.encode(out);
        self.users.encode(out);
    }
}

impl Restore for GroupRun {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let group = AccelerationGroupId::decode(cur)?;
        let users = Vec::<UserId>::decode(cur)?;
        if users.is_empty() {
            return Err(SnapshotError::Malformed {
                context: "empty group run",
            });
        }
        if users.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnapshotError::Malformed {
                context: "group run users not strictly increasing",
            });
        }
        Ok(Self { group, users })
    }
}

impl Snapshot for TimeSlot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.runs.encode(out);
    }
}

impl Restore for TimeSlot {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let index = usize::decode(cur)?;
        let runs = Vec::<GroupRun>::decode(cur)?;
        if runs.windows(2).any(|w| w[0].group >= w[1].group) {
            return Err(SnapshotError::Malformed {
                context: "slot runs not sorted by group",
            });
        }
        Ok(Self { index, runs })
    }
}

/// Batch constructor for [`TimeSlot`].
///
/// [`TimeSlot::assign`] keeps the slot's runs sorted after every insertion,
/// which costs `O(n)` per *out-of-order* user — fine for a trickle of
/// mostly-ordered arrivals, quadratic for a bulk feed of interleaved users
/// (many tenants, shuffled ingest). The builder instead collects raw
/// `(group, user)` assignments unordered and produces the slot with **one**
/// sort + dedup pass in [`TimeSlotBuilder::build`], yielding exactly the slot
/// the per-record path would have built. The fleet ingest and the
/// trace-replay path ([`SlotHistory::from_log`]) go through the builder.
#[derive(Debug, Clone, Default)]
pub struct TimeSlotBuilder {
    index: usize,
    pairs: Vec<(AccelerationGroupId, UserId)>,
}

impl TimeSlotBuilder {
    /// Creates an empty builder for the slot at `index`.
    pub fn new(index: usize) -> Self {
        Self {
            index,
            pairs: Vec::new(),
        }
    }

    /// Creates a builder with room for `capacity` assignments.
    pub fn with_capacity(index: usize, capacity: usize) -> Self {
        Self {
            index,
            pairs: Vec::with_capacity(capacity),
        }
    }

    /// Records that `user` was active in `group` (duplicates are cheap and
    /// collapse in [`TimeSlotBuilder::build`]).
    pub fn assign(&mut self, group: AccelerationGroupId, user: UserId) {
        self.pairs.push((group, user));
    }

    /// Records a batch of `(group, user)` assignments.
    pub fn extend(&mut self, pairs: impl IntoIterator<Item = (AccelerationGroupId, UserId)>) {
        self.pairs.extend(pairs);
    }

    /// Number of recorded assignments (before deduplication).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Returns `true` when no assignment has been recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Sorts and deduplicates the collected assignments once and builds the
    /// slot. Equal to feeding every pair through [`TimeSlot::assign`] in any
    /// order.
    pub fn build(self) -> TimeSlot {
        let mut pairs = self.pairs;
        pairs.sort_unstable();
        pairs.dedup();
        let mut runs: Vec<GroupRun> = Vec::new();
        for (group, user) in pairs {
            match runs.last_mut() {
                Some(run) if run.group == group => run.users.push(user),
                _ => runs.push(GroupRun {
                    group,
                    users: vec![user],
                }),
            }
        }
        TimeSlot {
            index: self.index,
            runs,
        }
    }
}

/// The chronological history of time slots `T` extracted from the log.
///
/// A history may be given a *window*: an upper bound on the number of most
/// recent slots it retains. Older slots are evicted from the front, which
/// bounds both the memory held by a long-running system and the cost of the
/// predictor's nearest-neighbour scan. [`TimeSlot::index`] values stay
/// global (chronological since the beginning of the trace), so an evicted
/// history still reports meaningful slot indices; [`SlotHistory::first_index`]
/// gives the global index of the oldest retained slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotHistory {
    slots: Vec<TimeSlot>,
    /// Slot length in milliseconds.
    pub slot_length_ms: f64,
    /// Maximum number of retained slots (`None` = unbounded).
    window: Option<usize>,
    /// Number of slots evicted from the front so far.
    evicted: usize,
}

impl SlotHistory {
    /// Creates an empty, unbounded history with the given slot length.
    ///
    /// # Panics
    ///
    /// Panics if the slot length is not strictly positive.
    pub fn new(slot_length_ms: f64) -> Self {
        assert!(slot_length_ms > 0.0, "slot length must be positive");
        Self {
            slots: Vec::new(),
            slot_length_ms,
            window: None,
            evicted: 0,
        }
    }

    /// A one-hour slot length — the granularity at which cloud instances are
    /// billed and (re-)allocated.
    pub fn hourly() -> Self {
        Self::new(3_600_000.0)
    }

    /// Caps the history at the `window` most recent slots.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: usize) -> Self {
        self.set_window(Some(window));
        self
    }

    /// Changes the retention window (`None` = unbounded), evicting
    /// immediately if the history already exceeds it.
    ///
    /// # Panics
    ///
    /// Panics if `window` is `Some(0)`.
    pub fn set_window(&mut self, window: Option<usize>) {
        assert!(
            window != Some(0),
            "history window must hold at least one slot"
        );
        self.window = window;
        self.trim();
    }

    /// The retention window, when one is set.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Global index of the oldest retained slot (0 until eviction starts).
    pub fn first_index(&self) -> usize {
        self.evicted
    }

    fn trim(&mut self) {
        if let Some(window) = self.window {
            if self.slots.len() > window {
                let excess = self.slots.len() - window;
                self.slots.drain(0..excess);
                self.evicted += excess;
            }
        }
    }

    /// Builds the history from a trace log, assigning each record to the slot
    /// containing its timestamp.
    ///
    /// This is the batch-replay path: records are bucketed into one
    /// [`TimeSlotBuilder`] per slot and each slot is materialized with a
    /// single sort + dedup pass, instead of paying [`TimeSlot::assign`]'s
    /// ordered insert per record. The result is identical to replaying the
    /// log through [`SlotHistory::observe`].
    pub fn from_log(log: &TraceLog, slot_length_ms: f64) -> Self {
        let mut history = Self::new(slot_length_ms);
        let mut windower = SlotWindower::new(slot_length_ms);
        for (time_ms, group, user) in log.assignments() {
            windower.push(time_ms, (group, user));
        }
        while !windower.is_drained() {
            let index = windower.next_slot();
            let assignments = windower.take_next();
            let mut builder = TimeSlotBuilder::with_capacity(index, assignments.len());
            builder.extend(assignments);
            history.push(builder.build());
        }
        history
    }

    /// Incorporates one processed request into the history, creating slots as
    /// needed. Records older than the oldest retained slot (possible only
    /// after window eviction) are dropped.
    pub fn observe(&mut self, record: &TraceRecord) {
        let idx = (record.timestamp_ms / self.slot_length_ms).floor().max(0.0) as usize;
        if idx < self.evicted {
            return;
        }
        while self.evicted + self.slots.len() <= idx {
            let next = self.evicted + self.slots.len();
            self.slots.push(TimeSlot::new(next));
            self.trim();
        }
        self.slots[idx - self.evicted].assign(record.group, record.user);
    }

    /// Appends an already-built slot (its index is rewritten to stay
    /// chronological), evicting the oldest slot when a window is set and
    /// full.
    pub fn push(&mut self, mut slot: TimeSlot) {
        slot.index = self.evicted + self.slots.len();
        self.slots.push(slot);
        self.trim();
    }

    /// The retained slots in chronological order.
    pub fn slots(&self) -> &[TimeSlot] {
        &self.slots
    }

    /// Number of retained slots (`H`, the amount of history available).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when the history holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The most recent slot, if any.
    pub fn last(&self) -> Option<&TimeSlot> {
        self.slots.last()
    }
}

impl Snapshot for SlotHistory {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slots.encode(out);
        self.slot_length_ms.encode(out);
        self.window.encode(out);
        self.evicted.encode(out);
    }
}

impl Restore for SlotHistory {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let slots = Vec::<TimeSlot>::decode(cur)?;
        let slot_length_ms = f64::decode(cur)?;
        let window = Option::<usize>::decode(cur)?;
        let evicted = usize::decode(cur)?;
        if slot_length_ms.is_nan() || slot_length_ms <= 0.0 {
            return Err(SnapshotError::Malformed {
                context: "non-positive slot length",
            });
        }
        if window == Some(0) {
            return Err(SnapshotError::Malformed {
                context: "zero history window",
            });
        }
        if window.is_some_and(|w| slots.len() > w) {
            return Err(SnapshotError::Malformed {
                context: "history longer than its window",
            });
        }
        if slots
            .iter()
            .enumerate()
            .any(|(at, slot)| slot.index != evicted + at)
        {
            return Err(SnapshotError::Malformed {
                context: "history slot indices not chronological",
            });
        }
        Ok(Self {
            slots,
            slot_length_ms,
            window,
            evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64, user: u32, group: u8) -> TraceRecord {
        TraceRecord {
            timestamp_ms: t,
            user: UserId(user),
            group: AccelerationGroupId(group),
            battery_level: 90.0,
            round_trip_ms: 500.0,
            t1_ms: 40.0,
            t2_ms: 150.0,
            t_cloud_ms: 310.0,
            success: true,
        }
    }

    #[test]
    fn slot_counts_distinct_users_per_group() {
        let mut slot = TimeSlot::new(0);
        slot.assign(AccelerationGroupId(1), UserId(1));
        slot.assign(AccelerationGroupId(1), UserId(1)); // duplicate ignored
        slot.assign(AccelerationGroupId(1), UserId(2));
        slot.assign(AccelerationGroupId(2), UserId(3));
        assert_eq!(slot.load_of(AccelerationGroupId(1)), 2);
        assert_eq!(slot.load_of(AccelerationGroupId(2)), 1);
        assert_eq!(slot.load_of(AccelerationGroupId(3)), 0);
        assert_eq!(slot.total_users(), 3);
        assert_eq!(
            slot.groups().collect::<Vec<_>>(),
            vec![AccelerationGroupId(1), AccelerationGroupId(2)]
        );
        assert!(!slot.is_empty());
    }

    #[test]
    fn users_are_sorted_and_deduplicated_regardless_of_insertion_order() {
        let slot = TimeSlot::from_assignments(
            0,
            [9, 3, 7, 3, 1, 9, 2]
                .into_iter()
                .map(|u| (AccelerationGroupId(1), UserId(u))),
        );
        assert_eq!(
            slot.users_in(AccelerationGroupId(1)),
            &[UserId(1), UserId(2), UserId(3), UserId(7), UserId(9)]
        );
        // insertion order does not matter for equality
        let sorted = TimeSlot::from_assignments(
            0,
            [1, 2, 3, 7, 9]
                .into_iter()
                .map(|u| (AccelerationGroupId(1), UserId(u))),
        );
        assert_eq!(slot, sorted);
    }

    #[test]
    fn users_in_missing_group_is_the_empty_slice() {
        let slot = TimeSlot::new(0);
        assert_eq!(slot.users_in(AccelerationGroupId(9)), &[] as &[UserId]);
    }

    #[test]
    fn promoted_user_counts_in_both_groups_but_once_in_total() {
        let slot = TimeSlot::from_assignments(
            0,
            [
                (AccelerationGroupId(1), UserId(8)),
                (AccelerationGroupId(2), UserId(8)),
            ],
        );
        assert_eq!(slot.load_of(AccelerationGroupId(1)), 1);
        assert_eq!(slot.load_of(AccelerationGroupId(2)), 1);
        assert_eq!(slot.total_users(), 1);
    }

    #[test]
    fn total_users_merges_across_groups() {
        let slot = TimeSlot::from_assignments(
            0,
            [
                (AccelerationGroupId(1), UserId(1)),
                (AccelerationGroupId(1), UserId(2)),
                (AccelerationGroupId(2), UserId(2)),
                (AccelerationGroupId(2), UserId(3)),
                (AccelerationGroupId(3), UserId(3)),
                (AccelerationGroupId(3), UserId(4)),
            ],
        );
        assert_eq!(slot.total_users(), 4);
    }

    #[test]
    fn workload_vector_follows_group_order() {
        let slot = TimeSlot::from_assignments(
            0,
            [
                (AccelerationGroupId(1), UserId(1)),
                (AccelerationGroupId(3), UserId(2)),
                (AccelerationGroupId(3), UserId(3)),
            ],
        );
        let groups = [
            AccelerationGroupId(1),
            AccelerationGroupId(2),
            AccelerationGroupId(3),
        ];
        assert_eq!(slot.workload_vector(&groups), vec![1, 0, 2]);
        assert_eq!(
            slot.group_loads().collect::<Vec<_>>(),
            vec![(AccelerationGroupId(1), 1), (AccelerationGroupId(3), 2)]
        );
    }

    #[test]
    fn history_from_log_partitions_by_timestamp() {
        let log: TraceLog = vec![
            record(100.0, 1, 1),
            record(200.0, 2, 1),
            record(3_700_000.0, 1, 2), // second hour
            record(7_300_000.0, 3, 1), // third hour
        ]
        .into_iter()
        .collect();
        let history = SlotHistory::from_log(&log, 3_600_000.0);
        assert_eq!(history.len(), 3);
        assert_eq!(history.slots()[0].load_of(AccelerationGroupId(1)), 2);
        assert_eq!(history.slots()[1].load_of(AccelerationGroupId(2)), 1);
        assert_eq!(history.slots()[2].load_of(AccelerationGroupId(1)), 1);
        assert_eq!(history.last().unwrap().index, 2);
    }

    #[test]
    fn intermediate_empty_slots_are_materialized() {
        let log: TraceLog = vec![record(100.0, 1, 1), record(10.0 * 3_600_000.0 + 1.0, 2, 1)]
            .into_iter()
            .collect();
        let history = SlotHistory::from_log(&log, 3_600_000.0);
        assert_eq!(history.len(), 11);
        assert!(history.slots()[5].is_empty());
    }

    #[test]
    fn push_rewrites_index() {
        let mut history = SlotHistory::hourly();
        history.push(TimeSlot::from_assignments(
            99,
            [(AccelerationGroupId(1), UserId(1))],
        ));
        history.push(TimeSlot::from_assignments(
            42,
            [(AccelerationGroupId(1), UserId(2))],
        ));
        assert_eq!(history.slots()[0].index, 0);
        assert_eq!(history.slots()[1].index, 1);
        assert_eq!(history.slot_length_ms, 3_600_000.0);
    }

    #[test]
    fn window_evicts_oldest_slots_and_keeps_global_indices() {
        let mut history = SlotHistory::hourly().with_window(3);
        for u in 0..5u32 {
            history.push(TimeSlot::from_assignments(
                0,
                [(AccelerationGroupId(1), UserId(u))],
            ));
        }
        assert_eq!(history.len(), 3);
        assert_eq!(history.first_index(), 2);
        assert_eq!(history.window(), Some(3));
        let indices: Vec<usize> = history.slots().iter().map(|s| s.index).collect();
        assert_eq!(indices, vec![2, 3, 4]);
        assert_eq!(
            history.slots()[0].users_in(AccelerationGroupId(1)),
            &[UserId(2)]
        );
        assert_eq!(history.last().unwrap().index, 4);
    }

    #[test]
    fn shrinking_the_window_trims_immediately() {
        let mut history = SlotHistory::hourly();
        for u in 0..6u32 {
            history.push(TimeSlot::from_assignments(
                0,
                [(AccelerationGroupId(1), UserId(u))],
            ));
        }
        history.set_window(Some(2));
        assert_eq!(history.len(), 2);
        assert_eq!(history.first_index(), 4);
        history.set_window(None);
        for u in 6..9u32 {
            history.push(TimeSlot::from_assignments(
                0,
                [(AccelerationGroupId(1), UserId(u))],
            ));
        }
        assert_eq!(history.len(), 5);
    }

    #[test]
    fn windowed_observe_ignores_records_older_than_retention() {
        let mut history = SlotHistory::new(1_000.0).with_window(2);
        history.observe(&record(100.0, 1, 1)); // slot 0
        history.observe(&record(3_500.0, 2, 1)); // slots 1..=3, evicts 0..=1
        assert_eq!(history.len(), 2);
        assert_eq!(history.first_index(), 2);
        history.observe(&record(500.0, 3, 1)); // slot 0: already evicted, dropped
        assert_eq!(history.slots()[0].load_of(AccelerationGroupId(1)), 0);
        history.observe(&record(2_500.0, 4, 1)); // slot 2: retained
        assert_eq!(
            history.slots()[0].users_in(AccelerationGroupId(1)),
            &[UserId(4)]
        );
    }

    #[test]
    fn builder_matches_per_record_assign_on_shuffled_input() {
        // worst case for `assign`: users arrive interleaved across groups in
        // decreasing id order, with duplicates
        let pairs: Vec<(AccelerationGroupId, UserId)> = (0..120u32)
            .rev()
            .flat_map(|u| {
                [
                    (AccelerationGroupId((u % 3 + 1) as u8), UserId(u)),
                    (AccelerationGroupId((u % 3 + 1) as u8), UserId(u)), // duplicate
                    (AccelerationGroupId(1), UserId(u / 2)),
                ]
            })
            .collect();
        let mut reference = TimeSlot::new(7);
        for &(g, u) in &pairs {
            reference.assign(g, u);
        }
        let mut builder = TimeSlotBuilder::with_capacity(7, pairs.len());
        for &(g, u) in &pairs {
            builder.assign(g, u);
        }
        assert_eq!(builder.len(), pairs.len());
        assert!(!builder.is_empty());
        let built = builder.build();
        assert_eq!(built, reference);
        assert_eq!(built.index, 7);
    }

    #[test]
    fn empty_builder_builds_an_empty_slot() {
        let built = TimeSlotBuilder::new(3).build();
        assert!(built.is_empty());
        assert_eq!(built, TimeSlot::new(3));
    }

    #[test]
    fn from_log_batch_replay_matches_incremental_observe() {
        let records: Vec<TraceRecord> = (0..200)
            .map(|i| {
                // timestamps deliberately out of chronological order
                let t = ((i * 37) % 200) as f64 * 90_000.0;
                record(t, (200 - i) as u32 % 23, (i % 3 + 1) as u8)
            })
            .collect();
        let log: TraceLog = records.iter().cloned().collect();
        let batched = SlotHistory::from_log(&log, 3_600_000.0);
        let mut incremental = SlotHistory::new(3_600_000.0);
        for r in &records {
            incremental.observe(r);
        }
        assert_eq!(batched, incremental);
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn zero_slot_length_panics() {
        let _ = SlotHistory::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_window_panics() {
        let _ = SlotHistory::hourly().with_window(0);
    }
}
