//! Time slots: the per-interval assignment of users to acceleration groups.
//!
//! §IV-A: "The traces are sorted in chronological order and transformed into a
//! set of time slots. Let `T` be a set of time slots `T = {t_i}` … of equal
//! length … Each time slot consists of a set of acceleration groups … each
//! acceleration group at a time period `t` contains a certain number of users
//! or an empty set." The model supports any slot length, defined in
//! (fractions of) hours.

use crate::logs::TraceLog;
use mca_offload::{AccelerationGroupId, TraceRecord, UserId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One time slot `t_i`: which users were active in which acceleration group.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSlot {
    /// Slot index within the history (chronological).
    pub index: usize,
    /// Users active per acceleration group during the slot.
    assignments: BTreeMap<AccelerationGroupId, BTreeSet<UserId>>,
}

impl TimeSlot {
    /// Creates an empty slot with the given index.
    pub fn new(index: usize) -> Self {
        Self { index, assignments: BTreeMap::new() }
    }

    /// Records that `user` was active in `group` during this slot. A user
    /// that appears in several groups within one slot (it was promoted
    /// mid-slot) is counted in each group it touched, matching the paper's
    /// per-group workload definition `W_an`.
    pub fn assign(&mut self, group: AccelerationGroupId, user: UserId) {
        self.assignments.entry(group).or_default().insert(user);
    }

    /// The set of users active in `group` (empty set when none).
    pub fn users_in(&self, group: AccelerationGroupId) -> BTreeSet<UserId> {
        self.assignments.get(&group).cloned().unwrap_or_default()
    }

    /// Number of users active in `group` — the workload `W_an`.
    pub fn load_of(&self, group: AccelerationGroupId) -> usize {
        self.assignments.get(&group).map(BTreeSet::len).unwrap_or(0)
    }

    /// The acceleration groups that have at least one user in this slot.
    pub fn groups(&self) -> Vec<AccelerationGroupId> {
        self.assignments.keys().copied().collect()
    }

    /// Total number of distinct users active in the slot.
    pub fn total_users(&self) -> usize {
        let mut all: BTreeSet<UserId> = BTreeSet::new();
        for users in self.assignments.values() {
            all.extend(users.iter().copied());
        }
        all.len()
    }

    /// The per-group workload vector over `groups` (0 for missing groups).
    pub fn workload_vector(&self, groups: &[AccelerationGroupId]) -> Vec<usize> {
        groups.iter().map(|g| self.load_of(*g)).collect()
    }

    /// Returns `true` when no user is assigned to any group.
    pub fn is_empty(&self) -> bool {
        self.assignments.values().all(BTreeSet::is_empty)
    }

    /// Builds a slot directly from `(group, user)` pairs (mainly for tests
    /// and synthetic histories).
    pub fn from_assignments(
        index: usize,
        pairs: impl IntoIterator<Item = (AccelerationGroupId, UserId)>,
    ) -> Self {
        let mut slot = Self::new(index);
        for (g, u) in pairs {
            slot.assign(g, u);
        }
        slot
    }
}

/// The chronological history of time slots `T` extracted from the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotHistory {
    slots: Vec<TimeSlot>,
    /// Slot length in milliseconds.
    pub slot_length_ms: f64,
}

impl SlotHistory {
    /// Creates an empty history with the given slot length.
    ///
    /// # Panics
    ///
    /// Panics if the slot length is not strictly positive.
    pub fn new(slot_length_ms: f64) -> Self {
        assert!(slot_length_ms > 0.0, "slot length must be positive");
        Self { slots: Vec::new(), slot_length_ms }
    }

    /// A one-hour slot length — the granularity at which cloud instances are
    /// billed and (re-)allocated.
    pub fn hourly() -> Self {
        Self::new(3_600_000.0)
    }

    /// Builds the history from a trace log, assigning each record to the slot
    /// containing its timestamp.
    pub fn from_log(log: &TraceLog, slot_length_ms: f64) -> Self {
        let mut history = Self::new(slot_length_ms);
        for record in log.records() {
            history.observe(record);
        }
        history
    }

    /// Incorporates one processed request into the history, creating slots as
    /// needed.
    pub fn observe(&mut self, record: &TraceRecord) {
        let idx = (record.timestamp_ms / self.slot_length_ms).floor().max(0.0) as usize;
        while self.slots.len() <= idx {
            let next = self.slots.len();
            self.slots.push(TimeSlot::new(next));
        }
        self.slots[idx].assign(record.group, record.user);
    }

    /// Appends an already-built slot (its index is rewritten to stay
    /// chronological).
    pub fn push(&mut self, mut slot: TimeSlot) {
        slot.index = self.slots.len();
        self.slots.push(slot);
    }

    /// The slots in chronological order.
    pub fn slots(&self) -> &[TimeSlot] {
        &self.slots
    }

    /// Number of slots (`H`, the amount of stored history available).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when the history holds no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The most recent slot, if any.
    pub fn last(&self) -> Option<&TimeSlot> {
        self.slots.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64, user: u32, group: u8) -> TraceRecord {
        TraceRecord {
            timestamp_ms: t,
            user: UserId(user),
            group: AccelerationGroupId(group),
            battery_level: 90.0,
            round_trip_ms: 500.0,
            t1_ms: 40.0,
            t2_ms: 150.0,
            t_cloud_ms: 310.0,
            success: true,
        }
    }

    #[test]
    fn slot_counts_distinct_users_per_group() {
        let mut slot = TimeSlot::new(0);
        slot.assign(AccelerationGroupId(1), UserId(1));
        slot.assign(AccelerationGroupId(1), UserId(1)); // duplicate ignored
        slot.assign(AccelerationGroupId(1), UserId(2));
        slot.assign(AccelerationGroupId(2), UserId(3));
        assert_eq!(slot.load_of(AccelerationGroupId(1)), 2);
        assert_eq!(slot.load_of(AccelerationGroupId(2)), 1);
        assert_eq!(slot.load_of(AccelerationGroupId(3)), 0);
        assert_eq!(slot.total_users(), 3);
        assert_eq!(slot.groups(), vec![AccelerationGroupId(1), AccelerationGroupId(2)]);
        assert!(!slot.is_empty());
    }

    #[test]
    fn promoted_user_counts_in_both_groups_but_once_in_total() {
        let slot = TimeSlot::from_assignments(
            0,
            [
                (AccelerationGroupId(1), UserId(8)),
                (AccelerationGroupId(2), UserId(8)),
            ],
        );
        assert_eq!(slot.load_of(AccelerationGroupId(1)), 1);
        assert_eq!(slot.load_of(AccelerationGroupId(2)), 1);
        assert_eq!(slot.total_users(), 1);
    }

    #[test]
    fn workload_vector_follows_group_order() {
        let slot = TimeSlot::from_assignments(
            0,
            [
                (AccelerationGroupId(1), UserId(1)),
                (AccelerationGroupId(3), UserId(2)),
                (AccelerationGroupId(3), UserId(3)),
            ],
        );
        let groups = [AccelerationGroupId(1), AccelerationGroupId(2), AccelerationGroupId(3)];
        assert_eq!(slot.workload_vector(&groups), vec![1, 0, 2]);
    }

    #[test]
    fn history_from_log_partitions_by_timestamp() {
        let log: TraceLog = vec![
            record(100.0, 1, 1),
            record(200.0, 2, 1),
            record(3_700_000.0, 1, 2), // second hour
            record(7_300_000.0, 3, 1), // third hour
        ]
        .into_iter()
        .collect();
        let history = SlotHistory::from_log(&log, 3_600_000.0);
        assert_eq!(history.len(), 3);
        assert_eq!(history.slots()[0].load_of(AccelerationGroupId(1)), 2);
        assert_eq!(history.slots()[1].load_of(AccelerationGroupId(2)), 1);
        assert_eq!(history.slots()[2].load_of(AccelerationGroupId(1)), 1);
        assert_eq!(history.last().unwrap().index, 2);
    }

    #[test]
    fn intermediate_empty_slots_are_materialized() {
        let log: TraceLog =
            vec![record(100.0, 1, 1), record(10.0 * 3_600_000.0 + 1.0, 2, 1)].into_iter().collect();
        let history = SlotHistory::from_log(&log, 3_600_000.0);
        assert_eq!(history.len(), 11);
        assert!(history.slots()[5].is_empty());
    }

    #[test]
    fn push_rewrites_index() {
        let mut history = SlotHistory::hourly();
        history.push(TimeSlot::from_assignments(99, [(AccelerationGroupId(1), UserId(1))]));
        history.push(TimeSlot::from_assignments(42, [(AccelerationGroupId(1), UserId(2))]));
        assert_eq!(history.slots()[0].index, 0);
        assert_eq!(history.slots()[1].index, 1);
        assert_eq!(history.slot_length_ms, 3_600_000.0);
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn zero_slot_length_panics() {
        let _ = SlotHistory::new(0.0);
    }
}
