//! System configuration.

use crate::accel::AccelerationGroups;
use crate::allocator::{AllocationPolicy, ResourceAllocator};
use crate::billing::{ArithmeticBilling, BillingEngine, DatacenterBilling};
use crate::index::IndexPolicy;
use crate::predictor::{DistanceKind, ParallelismPolicy, PredictionStrategy, WorkloadPredictor};
use mca_cloudsim::DatacenterConfig;
use mca_mobile::{DeviceClass, PromotionPolicy};
use mca_network::{CellularNetwork, Operator, Technology};
use serde::{Deserialize, Serialize};

/// Full configuration of the closed-loop system (Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The acceleration groups offered as a service.
    pub groups: AccelerationGroups,
    /// Provisioning slot length, ms (instances are billed and re-allocated at
    /// this granularity; the paper supports any fraction of an hour).
    pub slot_length_ms: f64,
    /// Client-side promotion policy applied by every device's moderator.
    pub promotion_policy: PromotionPolicy,
    /// Device class of the emulated handsets.
    pub device_class: DeviceClass,
    /// Constant background load per back-end server, in concurrent users
    /// (the 8-hour experiment induces 50 concurrent users per server).
    pub background_load: usize,
    /// Access network between the devices and the SDN front-end.
    pub network: CellularNetwork,
    /// Mean SDN routing overhead (`T2`), ms (§VI-B: ≈150 ms).
    pub routing_overhead_ms: f64,
    /// Cloud account instance cap (`CC`).
    pub account_cap: usize,
    /// Allocation policy.
    pub allocation_policy: AllocationPolicy,
    /// Prediction strategy.
    pub prediction_strategy: PredictionStrategy,
    /// Distance function used by the predictor.
    pub distance_kind: DistanceKind,
    /// Maximum number of slots the predictor's knowledge base retains
    /// (`None` = unbounded). Bounding the window keeps the per-interval
    /// nearest-neighbour scan and the history's memory footprint constant
    /// for long-running deployments.
    pub history_window: Option<usize>,
    /// How the predictor's nearest-neighbour scan fans out across threads
    /// (serial by default; forecasts are identical either way, so this is
    /// purely a throughput knob for 100k+ slot knowledge bases).
    pub parallelism: ParallelismPolicy,
    /// Whether the predictor builds the vantage-point metric index over its
    /// retained slots (linear by default; forecasts are identical either
    /// way, so — like `parallelism` — this is purely a throughput knob, the
    /// one that makes million-slot knowledge bases sublinear per predict).
    pub index_policy: IndexPolicy,
    /// Size of the downlink result payload, bytes.
    pub result_bytes: usize,
    /// Hour of day at which the experiment starts (affects network latency).
    pub start_hour_of_day: f64,
    /// When set, the bill stage settles against a simulated datacenter
    /// (placement + SLA + energy) instead of pure arithmetic. Forecasts,
    /// allocations and costs are bit-identical either way — the datacenter
    /// only *adds* accounting signals (see `docs/datacenter.md`).
    #[serde(default)]
    pub datacenter: Option<DatacenterConfig>,
}

impl SystemConfig {
    /// The configuration of the paper's 8-hour experiment (§VI-C-1): three
    /// acceleration groups served by t2.nano / t2.large / m4.4xlarge, the
    /// static 1/50 promotion probability, a 50-user background load per
    /// server, LTE access and hourly provisioning.
    pub fn paper_three_groups() -> Self {
        Self {
            groups: AccelerationGroups::paper_three_groups(),
            slot_length_ms: 3_600_000.0,
            promotion_policy: PromotionPolicy::paper_default(),
            device_class: DeviceClass::MidRange,
            background_load: 50,
            network: CellularNetwork::new(Operator::Beta, Technology::Lte),
            routing_overhead_ms: 150.0,
            account_cap: 20,
            allocation_policy: AllocationPolicy::IlpExact,
            prediction_strategy: PredictionStrategy::NearestSlot,
            distance_kind: DistanceKind::SetEdit,
            history_window: None,
            parallelism: ParallelismPolicy::serial(),
            index_policy: IndexPolicy::linear(),
            result_bytes: 256,
            start_hour_of_day: 9.0,
            datacenter: None,
        }
    }

    /// The five-group catalogue (levels 0–4) with otherwise paper defaults.
    pub fn paper_five_groups() -> Self {
        Self {
            groups: AccelerationGroups::paper_five_groups(),
            ..Self::paper_three_groups()
        }
    }

    /// Overrides the provisioning slot length.
    pub fn with_slot_length_ms(mut self, slot_length_ms: f64) -> Self {
        self.slot_length_ms = slot_length_ms;
        self
    }

    /// Caps the predictor's knowledge base at the `window` most recent
    /// slots.
    pub fn with_history_window(mut self, window: usize) -> Self {
        self.history_window = Some(window);
        self
    }

    /// Overrides the promotion policy.
    pub fn with_promotion_policy(mut self, policy: PromotionPolicy) -> Self {
        self.promotion_policy = policy;
        self
    }

    /// Overrides the background load per server.
    pub fn with_background_load(mut self, background_load: usize) -> Self {
        self.background_load = background_load;
        self
    }

    /// Overrides the allocation policy.
    pub fn with_allocation_policy(mut self, policy: AllocationPolicy) -> Self {
        self.allocation_policy = policy;
        self
    }

    /// Overrides the prediction strategy.
    pub fn with_prediction_strategy(mut self, strategy: PredictionStrategy) -> Self {
        self.prediction_strategy = strategy;
        self
    }

    /// Fans the predictor's nearest-neighbour scan out over `threads`
    /// chunks (histories below the default threshold stay serial).
    pub fn with_parallel_scan(mut self, threads: usize) -> Self {
        self.parallelism = ParallelismPolicy::parallel(threads);
        self
    }

    /// Overrides the full scan parallelism policy.
    pub fn with_parallelism(mut self, parallelism: ParallelismPolicy) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Turns on the predictor's vantage-point metric index with the default
    /// pivot count and build threshold (see [`IndexPolicy::indexed`]).
    pub fn with_indexed_scan(mut self) -> Self {
        self.index_policy = IndexPolicy::indexed();
        self
    }

    /// Overrides the full metric-index policy.
    pub fn with_index_policy(mut self, index_policy: IndexPolicy) -> Self {
        self.index_policy = index_policy;
        self
    }

    /// Bills against a simulated datacenter: the allocation is placed onto
    /// finite-capacity hosts under `datacenter.placement`, actual arrivals
    /// are scored against the forecast capacity (SLA), and host power is
    /// metered per slot (energy).
    pub fn with_datacenter(mut self, datacenter: DatacenterConfig) -> Self {
        self.datacenter = Some(datacenter);
        self
    }

    /// Builds a workload predictor configured exactly as [`crate::System`]
    /// would build its own: same groups, strategy, distance and history
    /// window. A multi-tenant deployment (`mca-fleet`) constructs one per
    /// tenant shard from a shared configuration.
    pub fn build_predictor(&self) -> WorkloadPredictor {
        let mut predictor = WorkloadPredictor::new(self.groups.ids(), self.slot_length_ms)
            .with_strategy(self.prediction_strategy)
            .with_distance(self.distance_kind)
            .with_parallelism(self.parallelism)
            .with_index_policy(self.index_policy);
        predictor.set_window(self.history_window);
        predictor
    }

    /// Builds a resource allocator configured exactly as [`crate::System`]
    /// would build its own: same groups, policy and account cap.
    pub fn build_allocator(&self) -> ResourceAllocator {
        ResourceAllocator::with_policy(self.groups.clone(), self.allocation_policy)
            .with_account_cap(self.account_cap)
    }

    /// Builds an instance pool capped at this configuration's account cap.
    pub fn build_pool(&self) -> mca_cloudsim::InstancePool {
        mca_cloudsim::InstancePool::with_cap(self.account_cap)
    }

    /// Builds the billing engine this configuration selects: arithmetic by
    /// default, a datacenter-backed settlement when
    /// [`with_datacenter`](Self::with_datacenter) was given.
    pub fn build_billing(&self) -> BillingEngine {
        match &self.datacenter {
            None => BillingEngine::Arithmetic(ArithmeticBilling),
            Some(datacenter) => BillingEngine::Datacenter(DatacenterBilling::new(datacenter)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_the_evaluation_setup() {
        let c = SystemConfig::paper_three_groups();
        assert_eq!(c.groups.len(), 3);
        assert_eq!(c.background_load, 50);
        assert_eq!(c.account_cap, 20);
        assert_eq!(c.routing_overhead_ms, 150.0);
        assert_eq!(c.slot_length_ms, 3_600_000.0);
        assert_eq!(
            c.promotion_policy,
            PromotionPolicy::Probabilistic { probability: 0.02 }
        );
    }

    #[test]
    fn builder_overrides_work() {
        let c = SystemConfig::paper_three_groups()
            .with_slot_length_ms(1_800_000.0)
            .with_background_load(0)
            .with_promotion_policy(PromotionPolicy::Never)
            .with_allocation_policy(AllocationPolicy::GreedyCheapest)
            .with_prediction_strategy(PredictionStrategy::LastValue);
        assert_eq!(c.slot_length_ms, 1_800_000.0);
        assert_eq!(c.background_load, 0);
        assert_eq!(c.promotion_policy, PromotionPolicy::Never);
        assert_eq!(c.allocation_policy, AllocationPolicy::GreedyCheapest);
        assert_eq!(c.prediction_strategy, PredictionStrategy::LastValue);
    }

    #[test]
    fn built_components_mirror_the_configuration() {
        let c = SystemConfig::paper_three_groups()
            .with_history_window(5)
            .with_allocation_policy(AllocationPolicy::GreedyCheapest)
            .with_prediction_strategy(PredictionStrategy::SuccessorOfNearest);
        let predictor = c.build_predictor();
        assert_eq!(predictor.strategy(), PredictionStrategy::SuccessorOfNearest);
        assert_eq!(predictor.groups(), c.groups.ids());
        assert_eq!(predictor.history().window(), Some(5));
        let allocator = c.build_allocator();
        assert_eq!(allocator.policy(), AllocationPolicy::GreedyCheapest);
        assert_eq!(allocator.account_cap, c.account_cap);
        assert_eq!(c.build_pool().account_cap(), c.account_cap);
        // billing defaults to arithmetic; the datacenter knob switches the
        // engine and threads the placement policy through
        assert!(!c.build_billing().observes_demand());
        let c = c.with_datacenter(
            DatacenterConfig::paper_default().with_placement(mca_cloudsim::PlacementKind::BestFit),
        );
        let billing = c.build_billing();
        assert!(billing.observes_demand());
        assert_eq!(
            billing.datacenter().unwrap().placement_kind(),
            mca_cloudsim::PlacementKind::BestFit
        );
    }

    #[test]
    fn parallel_scan_knob_reaches_the_built_predictor() {
        let c = SystemConfig::paper_three_groups();
        assert_eq!(c.parallelism, ParallelismPolicy::serial());
        assert_eq!(
            c.build_predictor().parallelism(),
            ParallelismPolicy::serial()
        );

        let c = c.with_parallel_scan(4);
        assert_eq!(c.parallelism, ParallelismPolicy::parallel(4));
        assert_eq!(
            c.build_predictor().parallelism(),
            ParallelismPolicy::parallel(4)
        );

        let custom = ParallelismPolicy::parallel(8).with_min_parallel_slots(10);
        let c = c.with_parallelism(custom);
        assert_eq!(c.build_predictor().parallelism(), custom);
    }

    #[test]
    fn index_policy_knob_reaches_the_built_predictor() {
        let c = SystemConfig::paper_three_groups();
        assert_eq!(c.index_policy, IndexPolicy::linear());
        assert_eq!(c.build_predictor().index_policy(), IndexPolicy::linear());

        let c = c.with_indexed_scan();
        assert_eq!(c.index_policy, IndexPolicy::indexed());
        assert_eq!(c.build_predictor().index_policy(), IndexPolicy::indexed());

        let custom = IndexPolicy::indexed()
            .with_pivots(2)
            .with_min_indexed_slots(64);
        let c = c.with_index_policy(custom);
        assert_eq!(c.build_predictor().index_policy(), custom);
    }

    #[test]
    fn five_group_config_has_level_zero_to_four() {
        let c = SystemConfig::paper_five_groups();
        assert_eq!(c.groups.len(), 5);
    }
}
