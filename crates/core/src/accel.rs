//! Acceleration groups: the abstraction of cloud servers into levels of code
//! acceleration (§IV-A, §IV-C-1).
//!
//! "The model encapsulates the servers of the cloud into acceleration groups.
//! Each `a_n` is mapped to a set of servers that provide a specific level of
//! code acceleration." The mapping is produced either from the benchmarking
//! classification (`mca-cloudsim::LevelClassification`) or manually (the
//! 8-hour experiment pins groups 1/2/3 to t2.nano, t2.large and m4.4xlarge).

use crate::error::CoreError;
use mca_cloudsim::{InstanceType, LevelClassification, Server};
use mca_offload::AccelerationGroupId;
use serde::{Deserialize, Serialize};

/// One acceleration group: a level of code acceleration and the instance
/// types that provide it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelerationGroup {
    /// The group identifier (`a_n`); higher ids accelerate more.
    pub id: AccelerationGroupId,
    /// Instance types that provide this level of acceleration.
    pub instance_types: Vec<InstanceType>,
    /// Capacity `K_s` of one instance of this group: the number of concurrent
    /// users a single instance serves within the response-time target.
    pub capacity_per_instance: usize,
}

impl AccelerationGroup {
    /// The cheapest instance type in the group (the allocator's preferred
    /// choice when several types provide the same acceleration).
    pub fn cheapest_instance(&self) -> Option<InstanceType> {
        self.instance_types.iter().copied().min_by(|a, b| {
            a.spec()
                .cost_per_hour
                .partial_cmp(&b.spec().cost_per_hour)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Single-task speed factor of the group (per-core speed of its fastest
    /// member), relative to the level-1 reference core.
    pub fn speed_factor(&self) -> f64 {
        self.instance_types
            .iter()
            .map(|t| t.spec().per_core_speed)
            .fold(0.0, f64::max)
    }
}

/// The ordered set of acceleration groups `A` offered by the system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelerationGroups {
    groups: Vec<AccelerationGroup>,
    /// Response-time target (ms) that defined the groups' capacities.
    pub response_target_ms: f64,
}

impl AccelerationGroups {
    /// Builds groups from an explicit list.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the list is empty, contains a
    /// group without instance types, or has duplicate group ids.
    pub fn new(groups: Vec<AccelerationGroup>, response_target_ms: f64) -> Result<Self, CoreError> {
        if groups.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "no acceleration groups".into(),
            });
        }
        let mut ids: Vec<u8> = groups.iter().map(|g| g.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != groups.len() {
            return Err(CoreError::InvalidConfig {
                reason: "duplicate acceleration group ids".into(),
            });
        }
        if groups.iter().any(|g| g.instance_types.is_empty()) {
            return Err(CoreError::InvalidConfig {
                reason: "acceleration group without instance types".into(),
            });
        }
        let mut groups = groups;
        groups.sort_by_key(|g| g.id);
        Ok(Self {
            groups,
            response_target_ms,
        })
    }

    /// The three manually pinned groups of the paper's 8-hour experiment
    /// (§VI-C-1): group 1 = t2.nano, group 2 = t2.large, group 3 =
    /// m4.4xlarge, with capacities derived from the server model under a
    /// 500 ms response-time target and the mean pool task.
    pub fn paper_three_groups() -> Self {
        Self::from_assignments(
            &[
                (AccelerationGroupId(1), vec![InstanceType::T2Nano]),
                (AccelerationGroupId(2), vec![InstanceType::T2Large]),
                (AccelerationGroupId(3), vec![InstanceType::M4_4XLarge]),
            ],
            500.0,
            65.0,
        )
    }

    /// The four groups produced by the Fig. 4 characterization plus the
    /// c4.8xlarge level-4 group added in §VI-B.
    pub fn paper_five_groups() -> Self {
        Self::from_assignments(
            &[
                (AccelerationGroupId(0), vec![InstanceType::T2Micro]),
                (
                    AccelerationGroupId(1),
                    vec![InstanceType::T2Nano, InstanceType::T2Small],
                ),
                (
                    AccelerationGroupId(2),
                    vec![InstanceType::T2Medium, InstanceType::T2Large],
                ),
                (
                    AccelerationGroupId(3),
                    vec![InstanceType::M4_4XLarge, InstanceType::M4_10XLarge],
                ),
                (AccelerationGroupId(4), vec![InstanceType::C4_8XLarge]),
            ],
            500.0,
            65.0,
        )
    }

    /// Builds groups from `(id, instance types)` assignments, deriving each
    /// group's per-instance capacity from the server model: the number of
    /// concurrent users one instance of the group's cheapest type serves
    /// within `response_target_ms` for a task of `typical_work_units`.
    pub fn from_assignments(
        assignments: &[(AccelerationGroupId, Vec<InstanceType>)],
        response_target_ms: f64,
        typical_work_units: f64,
    ) -> Self {
        let groups = assignments
            .iter()
            .map(|(id, types)| {
                let capacity = types
                    .iter()
                    .map(|&t| Server::new(t).capacity_under(typical_work_units, response_target_ms))
                    .min()
                    .unwrap_or(0)
                    .max(1);
                AccelerationGroup {
                    id: *id,
                    instance_types: types.clone(),
                    capacity_per_instance: capacity,
                }
            })
            .collect();
        Self::new(groups, response_target_ms).expect("assignments are statically well formed")
    }

    /// Builds groups from the benchmarking classification of
    /// `mca-cloudsim` (§IV-C-1: one group per measured capacity class).
    pub fn from_classification(classification: &LevelClassification) -> Self {
        let groups = classification
            .levels
            .iter()
            .map(|level| AccelerationGroup {
                id: AccelerationGroupId(level.level),
                instance_types: level.members.clone(),
                capacity_per_instance: level.capacity.max(1),
            })
            .collect();
        Self::new(groups, classification.response_target_ms)
            .expect("classification always yields at least one non-empty level")
    }

    /// The groups in ascending acceleration order.
    pub fn groups(&self) -> &[AccelerationGroup] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Returns `true` when no group is defined (never true for a validated
    /// instance).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Looks up a group by id.
    pub fn get(&self, id: AccelerationGroupId) -> Option<&AccelerationGroup> {
        self.groups.iter().find(|g| g.id == id)
    }

    /// The lowest (entry) acceleration group — where every user starts
    /// (§IV-A: "initially, each user is located in the group that provides
    /// the lowest acceleration of code").
    pub fn lowest(&self) -> &AccelerationGroup {
        self.groups.first().expect("validated groups are non-empty")
    }

    /// The highest acceleration group (the promotion ceiling).
    pub fn highest(&self) -> &AccelerationGroup {
        self.groups.last().expect("validated groups are non-empty")
    }

    /// All group ids in ascending order.
    pub fn ids(&self) -> Vec<AccelerationGroupId> {
        self.groups.iter().map(|g| g.id).collect()
    }

    /// Clamps a requested group to the closest one the system offers (a
    /// device promoted beyond the highest group is served by the highest).
    pub fn clamp(&self, requested: AccelerationGroupId) -> AccelerationGroupId {
        if self.get(requested).is_some() {
            return requested;
        }
        if requested > self.highest().id {
            self.highest().id
        } else {
            // find the nearest defined id at or above the request
            self.groups
                .iter()
                .map(|g| g.id)
                .find(|id| *id >= requested)
                .unwrap_or(self.lowest().id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_three_groups_are_ordered_and_sized() {
        let groups = AccelerationGroups::paper_three_groups();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.lowest().id, AccelerationGroupId(1));
        assert_eq!(groups.highest().id, AccelerationGroupId(3));
        // capacity grows with the acceleration level
        let caps: Vec<usize> = groups
            .groups()
            .iter()
            .map(|g| g.capacity_per_instance)
            .collect();
        assert!(caps.windows(2).all(|w| w[1] > w[0]), "{caps:?}");
        // speed factors reproduce the Fig. 5 ordering
        let speeds: Vec<f64> = groups.groups().iter().map(|g| g.speed_factor()).collect();
        assert!(speeds.windows(2).all(|w| w[1] > w[0]), "{speeds:?}");
    }

    #[test]
    fn five_group_catalogue_contains_all_levels() {
        let groups = AccelerationGroups::paper_five_groups();
        assert_eq!(groups.len(), 5);
        assert_eq!(groups.lowest().id, AccelerationGroupId(0));
        assert_eq!(
            groups.get(AccelerationGroupId(0)).unwrap().instance_types,
            vec![InstanceType::T2Micro]
        );
        assert_eq!(
            groups.highest().instance_types,
            vec![InstanceType::C4_8XLarge]
        );
    }

    #[test]
    fn cheapest_instance_prefers_lower_price() {
        let groups = AccelerationGroups::paper_five_groups();
        let level1 = groups.get(AccelerationGroupId(1)).unwrap();
        assert_eq!(level1.cheapest_instance(), Some(InstanceType::T2Nano));
        let level3 = groups.get(AccelerationGroupId(3)).unwrap();
        assert_eq!(level3.cheapest_instance(), Some(InstanceType::M4_4XLarge));
    }

    #[test]
    fn clamp_maps_out_of_range_requests() {
        let groups = AccelerationGroups::paper_three_groups();
        assert_eq!(groups.clamp(AccelerationGroupId(2)), AccelerationGroupId(2));
        assert_eq!(
            groups.clamp(AccelerationGroupId(200)),
            AccelerationGroupId(3)
        );
        assert_eq!(groups.clamp(AccelerationGroupId(0)), AccelerationGroupId(1));
    }

    #[test]
    fn validation_rejects_bad_configurations() {
        assert!(matches!(
            AccelerationGroups::new(vec![], 500.0),
            Err(CoreError::InvalidConfig { .. })
        ));
        let dup = vec![
            AccelerationGroup {
                id: AccelerationGroupId(1),
                instance_types: vec![InstanceType::T2Nano],
                capacity_per_instance: 10,
            },
            AccelerationGroup {
                id: AccelerationGroupId(1),
                instance_types: vec![InstanceType::T2Small],
                capacity_per_instance: 10,
            },
        ];
        assert!(matches!(
            AccelerationGroups::new(dup, 500.0),
            Err(CoreError::InvalidConfig { .. })
        ));
        let empty_members = vec![AccelerationGroup {
            id: AccelerationGroupId(1),
            instance_types: vec![],
            capacity_per_instance: 10,
        }];
        assert!(matches!(
            AccelerationGroups::new(empty_members, 500.0),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn from_classification_round_trips_levels() {
        use mca_cloudsim::{AccelerationLevel, LevelClassification};
        let classification = LevelClassification {
            response_target_ms: 500.0,
            levels: vec![
                AccelerationLevel {
                    level: 0,
                    members: vec![InstanceType::T2Micro],
                    capacity: 25,
                },
                AccelerationLevel {
                    level: 1,
                    members: vec![InstanceType::T2Nano, InstanceType::T2Small],
                    capacity: 80,
                },
                AccelerationLevel {
                    level: 2,
                    members: vec![InstanceType::T2Large],
                    capacity: 280,
                },
            ],
        };
        let groups = AccelerationGroups::from_classification(&classification);
        assert_eq!(groups.len(), 3);
        assert_eq!(
            groups
                .get(AccelerationGroupId(1))
                .unwrap()
                .capacity_per_instance,
            80
        );
        assert_eq!(
            groups.get(AccelerationGroupId(1)).unwrap().instance_types,
            vec![InstanceType::T2Nano, InstanceType::T2Small]
        );
        assert_eq!(groups.response_target_ms, 500.0);
    }

    #[test]
    fn groups_are_sorted_by_id_regardless_of_input_order() {
        let groups = AccelerationGroups::new(
            vec![
                AccelerationGroup {
                    id: AccelerationGroupId(3),
                    instance_types: vec![InstanceType::M4_4XLarge],
                    capacity_per_instance: 100,
                },
                AccelerationGroup {
                    id: AccelerationGroupId(1),
                    instance_types: vec![InstanceType::T2Nano],
                    capacity_per_instance: 10,
                },
            ],
            500.0,
        )
        .unwrap();
        assert_eq!(
            groups.ids(),
            vec![AccelerationGroupId(1), AccelerationGroupId(3)]
        );
    }
}
