//! Workload prediction (§IV-B).
//!
//! Given the current time slot `t_h`, the model computes the knowledge base
//! `P = {p_k}` of distances between `t_h` and every historical slot, and
//! approximates the next slot `t'_h` by the historical slot with the minimum
//! distance. Because the prediction is always a slot that has actually been
//! observed, "dramatically growing loads are only ever matched to the largest
//! load seen in the near history", which makes the subsequent allocation
//! conservative (§IV-B-2).
//!
//! Besides the paper's strategy, three ablation strategies are provided:
//! predicting the *successor* of the nearest slot, repeating the last
//! observed slot, and using the per-group mean of the history.

use crate::distance::{count_distance, slot_distance, slot_levenshtein_distance};
use crate::error::CoreError;
use crate::timeslot::{SlotHistory, TimeSlot};
use mca_offload::AccelerationGroupId;
use serde::{Deserialize, Serialize};

/// How the predictor turns the slot history into a forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PredictionStrategy {
    /// The paper's strategy: the forecast is the historical slot closest to
    /// the current slot under the edit distance.
    #[default]
    NearestSlot,
    /// Forecast the slot that *followed* the nearest historical slot
    /// (classic nearest-neighbour sequence prediction).
    SuccessorOfNearest,
    /// Forecast that the next slot equals the current slot (persistence
    /// baseline).
    LastValue,
    /// Forecast the per-group mean load over the whole history (mean
    /// baseline; loses user identities).
    MeanOfHistory,
}

/// Which distance function drives the nearest-neighbour search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceKind {
    /// Set edit distance over assigned users (insertions + deletions).
    #[default]
    SetEdit,
    /// Levenshtein distance over the sorted user-id sequences.
    Levenshtein,
    /// Absolute difference of per-group user counts.
    CountDifference,
}

/// The per-group workload forecast for the next provisioning interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadForecast {
    /// Predicted number of users per acceleration group (`W_{a_n}`).
    pub per_group: Vec<(AccelerationGroupId, usize)>,
    /// Index of the historical slot the forecast was taken from, when the
    /// strategy is history-based.
    pub matched_slot: Option<usize>,
}

impl WorkloadForecast {
    /// Predicted workload for one group (0 when the group is absent).
    pub fn load_of(&self, group: AccelerationGroupId) -> usize {
        self.per_group.iter().find(|(g, _)| *g == group).map(|(_, n)| *n).unwrap_or(0)
    }

    /// Total predicted number of users across groups.
    pub fn total(&self) -> usize {
        self.per_group.iter().map(|(_, n)| n).sum()
    }
}

/// The workload predictor: a knowledge base of historical slots plus a
/// prediction strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPredictor {
    history: SlotHistory,
    strategy: PredictionStrategy,
    distance: DistanceKind,
    groups: Vec<AccelerationGroupId>,
}

impl WorkloadPredictor {
    /// Creates a predictor over the given acceleration groups with the
    /// paper's configuration (nearest slot, set edit distance).
    pub fn new(groups: Vec<AccelerationGroupId>, slot_length_ms: f64) -> Self {
        Self {
            history: SlotHistory::new(slot_length_ms),
            strategy: PredictionStrategy::NearestSlot,
            distance: DistanceKind::SetEdit,
            groups,
        }
    }

    /// Overrides the prediction strategy.
    pub fn with_strategy(mut self, strategy: PredictionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the distance function.
    pub fn with_distance(mut self, distance: DistanceKind) -> Self {
        self.distance = distance;
        self
    }

    /// The prediction strategy in force.
    pub fn strategy(&self) -> PredictionStrategy {
        self.strategy
    }

    /// The acceleration groups the predictor forecasts for.
    pub fn groups(&self) -> &[AccelerationGroupId] {
        &self.groups
    }

    /// Read access to the accumulated history.
    pub fn history(&self) -> &SlotHistory {
        &self.history
    }

    /// Appends an observed slot to the knowledge base.
    pub fn observe_slot(&mut self, slot: TimeSlot) {
        self.history.push(slot);
    }

    /// Replaces the whole history (used by cross-validation).
    pub fn set_history(&mut self, history: SlotHistory) {
        self.history = history;
    }

    /// Distance between two slots under the configured distance function.
    pub fn distance_between(&self, a: &TimeSlot, b: &TimeSlot) -> usize {
        match self.distance {
            DistanceKind::SetEdit => slot_distance(a, b, &self.groups),
            DistanceKind::Levenshtein => slot_levenshtein_distance(a, b, &self.groups),
            DistanceKind::CountDifference => count_distance(a, b, &self.groups),
        }
    }

    /// The knowledge base `P`: the distance from `current` to every
    /// historical slot, in chronological order.
    pub fn knowledge_base(&self, current: &TimeSlot) -> Vec<usize> {
        self.history.slots().iter().map(|s| self.distance_between(current, s)).collect()
    }

    /// Predicts the workload of the next slot given the current slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistory`] when no historical slot is
    /// available for a history-based strategy.
    pub fn predict(&self, current: &TimeSlot) -> Result<WorkloadForecast, CoreError> {
        match self.strategy {
            PredictionStrategy::LastValue => Ok(WorkloadForecast {
                per_group: self.groups.iter().map(|g| (*g, current.load_of(*g))).collect(),
                matched_slot: None,
            }),
            PredictionStrategy::MeanOfHistory => {
                if self.history.is_empty() {
                    return Err(CoreError::EmptyHistory);
                }
                let n = self.history.len() as f64;
                let per_group = self
                    .groups
                    .iter()
                    .map(|g| {
                        let total: usize =
                            self.history.slots().iter().map(|s| s.load_of(*g)).sum();
                        (*g, (total as f64 / n).round() as usize)
                    })
                    .collect();
                Ok(WorkloadForecast { per_group, matched_slot: None })
            }
            PredictionStrategy::NearestSlot | PredictionStrategy::SuccessorOfNearest => {
                if self.history.is_empty() {
                    return Err(CoreError::EmptyHistory);
                }
                let distances = self.knowledge_base(current);
                let (best_idx, _) = distances
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, d)| **d)
                    .expect("history is non-empty");
                let source_idx = match self.strategy {
                    PredictionStrategy::SuccessorOfNearest => {
                        (best_idx + 1).min(self.history.len() - 1)
                    }
                    _ => best_idx,
                };
                let slot = &self.history.slots()[source_idx];
                Ok(WorkloadForecast {
                    per_group: self.groups.iter().map(|g| (*g, slot.load_of(*g))).collect(),
                    matched_slot: Some(source_idx),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::UserId;

    const GROUPS: [AccelerationGroupId; 3] =
        [AccelerationGroupId(1), AccelerationGroupId(2), AccelerationGroupId(3)];

    /// A synthetic slot with `n1`/`n2`/`n3` users in groups 1/2/3, using user
    /// ids offset so that similar loads share most user identities.
    fn slot(n1: u32, n2: u32, n3: u32) -> TimeSlot {
        let mut pairs = Vec::new();
        for u in 0..n1 {
            pairs.push((AccelerationGroupId(1), UserId(u)));
        }
        for u in 0..n2 {
            pairs.push((AccelerationGroupId(2), UserId(1_000 + u)));
        }
        for u in 0..n3 {
            pairs.push((AccelerationGroupId(3), UserId(2_000 + u)));
        }
        TimeSlot::from_assignments(0, pairs)
    }

    fn predictor_with_history(slots: Vec<TimeSlot>) -> WorkloadPredictor {
        let mut p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0);
        for s in slots {
            p.observe_slot(s);
        }
        p
    }

    #[test]
    fn empty_history_is_an_error() {
        let p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0);
        assert_eq!(p.predict(&slot(3, 0, 0)).unwrap_err(), CoreError::EmptyHistory);
    }

    #[test]
    fn nearest_slot_matches_the_most_similar_history_entry() {
        let p = predictor_with_history(vec![slot(10, 2, 0), slot(40, 10, 5), slot(3, 1, 0)]);
        let forecast = p.predict(&slot(9, 2, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(0));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 10);
        assert_eq!(forecast.load_of(AccelerationGroupId(2)), 2);
        assert_eq!(forecast.total(), 12);
    }

    #[test]
    fn growing_load_is_matched_to_largest_seen_slot() {
        // §IV-B-2: a dramatically growing load can only be matched to the
        // largest load in the history, making allocation conservative.
        let p = predictor_with_history(vec![slot(5, 0, 0), slot(20, 5, 0), slot(60, 20, 10)]);
        let huge = slot(500, 100, 50);
        let forecast = p.predict(&huge).unwrap();
        assert_eq!(forecast.matched_slot, Some(2));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 60);
    }

    #[test]
    fn successor_strategy_predicts_following_slot() {
        let p = predictor_with_history(vec![slot(10, 0, 0), slot(20, 5, 0), slot(30, 10, 2)])
            .with_strategy(PredictionStrategy::SuccessorOfNearest);
        let forecast = p.predict(&slot(11, 0, 0)).unwrap();
        // nearest is slot 0, successor is slot 1
        assert_eq!(forecast.matched_slot, Some(1));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 20);
    }

    #[test]
    fn successor_of_last_slot_saturates() {
        let p = predictor_with_history(vec![slot(10, 0, 0), slot(50, 0, 0)])
            .with_strategy(PredictionStrategy::SuccessorOfNearest);
        let forecast = p.predict(&slot(49, 0, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(1));
    }

    #[test]
    fn last_value_strategy_repeats_current() {
        let p = predictor_with_history(vec![slot(1, 1, 1)])
            .with_strategy(PredictionStrategy::LastValue);
        let forecast = p.predict(&slot(7, 3, 2)).unwrap();
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 7);
        assert_eq!(forecast.load_of(AccelerationGroupId(2)), 3);
        assert_eq!(forecast.matched_slot, None);
    }

    #[test]
    fn mean_strategy_averages_history() {
        let p = predictor_with_history(vec![slot(10, 0, 0), slot(20, 4, 0), slot(30, 2, 0)])
            .with_strategy(PredictionStrategy::MeanOfHistory);
        let forecast = p.predict(&slot(0, 0, 0)).unwrap();
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 20);
        assert_eq!(forecast.load_of(AccelerationGroupId(2)), 2);
    }

    #[test]
    fn knowledge_base_has_one_entry_per_history_slot() {
        let p = predictor_with_history(vec![slot(1, 0, 0), slot(2, 0, 0), slot(3, 0, 0)]);
        let kb = p.knowledge_base(&slot(2, 0, 0));
        assert_eq!(kb.len(), 3);
        assert_eq!(kb[1], 0, "identical slot has distance zero");
        assert!(kb[0] > 0 && kb[2] > 0);
    }

    #[test]
    fn distance_kinds_agree_on_identical_slots() {
        for kind in [DistanceKind::SetEdit, DistanceKind::Levenshtein, DistanceKind::CountDifference] {
            let p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0).with_distance(kind);
            assert_eq!(p.distance_between(&slot(5, 3, 1), &slot(5, 3, 1)), 0);
            assert!(p.distance_between(&slot(5, 3, 1), &slot(9, 0, 0)) > 0);
        }
    }
}
