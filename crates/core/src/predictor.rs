//! Workload prediction (§IV-B).
//!
//! Given the current time slot `t_h`, the model computes the knowledge base
//! `P = {p_k}` of distances between `t_h` and every historical slot, and
//! approximates the next slot `t'_h` by the historical slot with the minimum
//! distance. Because the prediction is always a slot that has actually been
//! observed, "dramatically growing loads are only ever matched to the largest
//! load seen in the near history", which makes the subsequent allocation
//! conservative (§IV-B-2).
//!
//! Besides the paper's strategy, three ablation strategies are provided:
//! predicting the *successor* of the nearest slot, repeating the last
//! observed slot, and using the per-group mean of the history.
//!
//! # Pruned nearest-neighbour search
//!
//! The nearest-slot scan is the hottest loop of the closed-loop system, so
//! [`WorkloadPredictor::predict`] does not evaluate the full distance for
//! every candidate. The predictor caches a *count signature* (the per-group
//! user count) and an *id-range signature* (the per-group `(min, max)` user
//! id) for every historical slot; because every per-group edit distance —
//! set edit or Levenshtein — is at least the difference of the two user
//! counts, and because two sorted deduplicated runs cannot share more ids
//! than their ranges overlap, the signatures give an `O(groups)` lower
//! bound on the slot distance that also refutes drifted-apart user
//! populations outright. Candidates whose bound cannot beat the best distance found
//! so far are skipped without touching their user lists, and the remaining
//! candidates are evaluated with the `*_bounded` early-exit distances of
//! [`crate::distance`] capped at best-so-far. The result is exactly the
//! slot the naive linear scan would pick (first minimum in chronological
//! order); [`WorkloadPredictor::predict_naive`] retains that scan as the
//! reference and benchmark baseline.
//!
//! # Parallel knowledge-base scan
//!
//! For one huge tenant — the CloneCloud-style "millions of clones of one
//! app" deployment — the knowledge base reaches 100k+ slots and even the
//! pruned scan saturates a single thread. [`ParallelismPolicy`] lets the
//! scan fan out: the candidate list is split into [`ParallelismPolicy::threads`]
//! contiguous chronological chunks; the chunks compute their signature
//! lower bounds in parallel, the globally most promising candidate (first
//! minimum bound) is evaluated once as the shared *seed* cap, each chunk
//! prunes its own range against that cap with its own best-so-far, and the
//! per-chunk minima merge by lexicographic `(distance, position)` — the
//! earliest slot still wins every tie, so the forecast is **bit-identical**
//! to the sequential scan and the naive reference at any chunk or thread
//! count. The chunk count is fixed by
//! the policy (not by the machine), which keeps results reproducible across
//! hosts; the executing thread count comes from the ambient rayon pool.
//! Because no chunk needs the global best-first ordering, the parallel path
//! also sheds the serial path's `O(n log n)` candidate sort. Histories
//! shorter than [`ParallelismPolicy::min_parallel_slots`] stay on the
//! sequential path, and the count distance keeps its dedicated
//! allocation-free linear scan.

use crate::distance::{
    bitset_group_distance_bounded, count_distance, group_distance_bounded, slot_distance,
    slot_distance_bounded, slot_distance_naive, slot_levenshtein_distance,
    slot_levenshtein_distance_bounded, DistanceScratch, GroupBitset,
};
use crate::error::CoreError;
use crate::index::{IndexPolicy, SlotIndex};
use crate::timeslot::{SlotHistory, TimeSlot};
use mca_offload::AccelerationGroupId;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// How the predictor turns the slot history into a forecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PredictionStrategy {
    /// The paper's strategy: the forecast is the historical slot closest to
    /// the current slot under the edit distance.
    #[default]
    NearestSlot,
    /// Forecast the slot that *followed* the nearest historical slot
    /// (classic nearest-neighbour sequence prediction).
    SuccessorOfNearest,
    /// Forecast that the next slot equals the current slot (persistence
    /// baseline).
    LastValue,
    /// Forecast the per-group mean load over the whole history (mean
    /// baseline; loses user identities).
    MeanOfHistory,
}

/// Which distance function drives the nearest-neighbour search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceKind {
    /// Set edit distance over assigned users (insertions + deletions).
    #[default]
    SetEdit,
    /// Levenshtein distance over the sorted user-id sequences.
    Levenshtein,
    /// Absolute difference of per-group user counts.
    CountDifference,
}

/// How the nearest-neighbour knowledge-base scan fans out across threads.
///
/// The policy fixes the number of *chunks* the candidate list splits into;
/// the ambient rayon pool decides how many actually run concurrently. The
/// forecast does not depend on either number — per-chunk minima merge with
/// the same first-minimum tie-break the sequential scan applies — so the
/// policy is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismPolicy {
    /// Number of chunks the candidate list splits into (`<= 1` keeps the
    /// sequential best-first scan unconditionally).
    pub threads: usize,
    /// Minimum retained history length before the scan fans out. Below it
    /// the sequential path runs: for small knowledge bases the per-chunk
    /// bound buffers and thread hand-off cost more than they save.
    pub min_parallel_slots: usize,
}

impl ParallelismPolicy {
    /// Default fan-out threshold: histories below ~4k slots scan serially.
    pub const DEFAULT_MIN_PARALLEL_SLOTS: usize = 4096;

    /// The sequential policy (the default): never fan out.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            min_parallel_slots: Self::DEFAULT_MIN_PARALLEL_SLOTS,
        }
    }

    /// Fans the scan out over `threads` chunks once the history reaches the
    /// default threshold.
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_parallel_slots: Self::DEFAULT_MIN_PARALLEL_SLOTS,
        }
    }

    /// Overrides the fan-out threshold.
    pub fn with_min_parallel_slots(mut self, min_parallel_slots: usize) -> Self {
        self.min_parallel_slots = min_parallel_slots;
        self
    }

    /// Whether this policy can ever take the chunked path.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for ParallelismPolicy {
    fn default() -> Self {
        Self::serial()
    }
}

/// Splits `0..len` into at most `parts` contiguous near-equal ranges, in
/// chronological order (mirrors rayon's slice chunking, but the count here
/// is fixed by [`ParallelismPolicy`] rather than by the executing pool).
fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for part in 0..parts {
        let size = base + usize::from(part < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// The `(min, max)` id range of one sorted user run (`(u32::MAX, 0)` for an
/// empty run).
fn id_range(users: &[mca_offload::UserId]) -> (u32, u32) {
    match (users.first(), users.last()) {
        (Some(first), Some(last)) => (first.0, last.0),
        _ => (u32::MAX, 0),
    }
}

/// Upper bound on how many ids two sorted, deduplicated runs with the given
/// `(min, max)` ranges can share: the number of integers in the overlap of
/// the ranges (zero when either run is empty or the ranges are disjoint).
fn range_overlap(a: (u32, u32), b: (u32, u32)) -> usize {
    if a.0 > a.1 || b.0 > b.1 {
        return 0;
    }
    let low = a.0.max(b.0);
    let high = a.1.min(b.1);
    if low > high {
        0
    } else {
        (high - low) as usize + 1
    }
}

/// One chunk of the parallel scan: its chronological range, the signature
/// lower bound of every candidate in it, and the chunk's first-minimum
/// bound (the chunk's nomination for the shared seed candidate).
#[derive(Debug)]
struct ChunkCandidates {
    range: Range<usize>,
    bounds: Vec<usize>,
    min_bound: usize,
    min_position: usize,
}

/// The per-group workload forecast for the next provisioning interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadForecast {
    /// Predicted number of users per acceleration group (`W_{a_n}`).
    pub per_group: Vec<(AccelerationGroupId, usize)>,
    /// Global index of the historical slot the forecast was taken from, when
    /// the strategy is history-based.
    pub matched_slot: Option<usize>,
}

impl WorkloadForecast {
    /// Predicted workload for one group (0 when the group is absent).
    pub fn load_of(&self, group: AccelerationGroupId) -> usize {
        self.per_group
            .iter()
            .find(|(g, _)| *g == group)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Total predicted number of users across groups.
    pub fn total(&self) -> usize {
        self.per_group.iter().map(|(_, n)| n).sum()
    }
}

/// Cumulative query and index-health counters of one predictor.
///
/// The counters are atomics because the chunked parallel scan increments
/// them from worker threads through `&self`; every total is nonetheless a
/// deterministic function of the query sequence (per-chunk work is fixed by
/// the [`ParallelismPolicy`], not by the executing thread count). Like
/// [`crate::AllocationStats`] on [`crate::Allocation`], the stats are
/// observability data, **not** part of the predictor's semantic state: two
/// predictors with identical knowledge bases compare equal regardless of how
/// many queries each has answered, so `PartialEq` here is identically true.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Nearest-slot scan queries answered (all paths: serial best-first,
    /// count-signature linear, chunked parallel, indexed).
    queries: AtomicU64,
    /// `observe_and_predict` calls resolved by the signature-equality
    /// shortcut, never evaluating a distance.
    fast_predictions: AtomicU64,
    /// Candidates visited by [`SlotIndex::ring_walk`] before the ring bound
    /// terminated the walk.
    rings_walked: AtomicU64,
    /// Candidates whose signature/triangle lower bound was computed.
    candidates_bounded: AtomicU64,
    /// Candidates that survived the bounds and had a full (early-exit)
    /// distance evaluation.
    candidates_evaluated: AtomicU64,
    /// Times a [`DistanceScratch`] buffer had to grow mid-query (see
    /// [`DistanceScratch::grows`]).
    scratch_grows: AtomicU64,
    /// Metric-index builds from scratch (first build after crossing
    /// [`IndexPolicy::min_indexed_slots`], or a policy/distance change).
    index_builds: AtomicU64,
    /// Metric-index rebuilds triggered by the doubling rule
    /// ([`SlotIndex::should_rebuild`]).
    index_rebuilds: AtomicU64,
}

impl PredictorStats {
    /// A plain-integer copy of the current counter values.
    pub fn snapshot(&self) -> PredictorStatsSnapshot {
        PredictorStatsSnapshot {
            queries: self.queries.load(Relaxed),
            fast_predictions: self.fast_predictions.load(Relaxed),
            rings_walked: self.rings_walked.load(Relaxed),
            candidates_bounded: self.candidates_bounded.load(Relaxed),
            candidates_evaluated: self.candidates_evaluated.load(Relaxed),
            scratch_grows: self.scratch_grows.load(Relaxed),
            index_builds: self.index_builds.load(Relaxed),
            index_rebuilds: self.index_rebuilds.load(Relaxed),
        }
    }
}

impl Clone for PredictorStats {
    fn clone(&self) -> Self {
        let snapshot = self.snapshot();
        Self {
            queries: AtomicU64::new(snapshot.queries),
            fast_predictions: AtomicU64::new(snapshot.fast_predictions),
            rings_walked: AtomicU64::new(snapshot.rings_walked),
            candidates_bounded: AtomicU64::new(snapshot.candidates_bounded),
            candidates_evaluated: AtomicU64::new(snapshot.candidates_evaluated),
            scratch_grows: AtomicU64::new(snapshot.scratch_grows),
            index_builds: AtomicU64::new(snapshot.index_builds),
            index_rebuilds: AtomicU64::new(snapshot.index_rebuilds),
        }
    }
}

impl PartialEq for PredictorStats {
    /// Always true: query counters are observability data and take no part
    /// in predictor equality (the precedent is [`crate::Allocation`], whose
    /// equality ignores its [`crate::AllocationStats`]). A fast-path
    /// predictor that never scanned and a slow-path one that scanned
    /// everything hold the same knowledge and must compare equal.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// Plain-integer snapshot of [`PredictorStats`], comparable and copyable.
/// See the field docs on [`PredictorStats`] for meanings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictorStatsSnapshot {
    /// Nearest-slot scan queries answered.
    pub queries: u64,
    /// Fast-path `observe_and_predict` resolutions.
    pub fast_predictions: u64,
    /// Index ring-walk candidates visited.
    pub rings_walked: u64,
    /// Candidates with a lower bound computed.
    pub candidates_bounded: u64,
    /// Candidates fully evaluated.
    pub candidates_evaluated: u64,
    /// Distance-scratch buffer growths.
    pub scratch_grows: u64,
    /// Index builds from scratch.
    pub index_builds: u64,
    /// Doubling-rule index rebuilds.
    pub index_rebuilds: u64,
}

impl PredictorStatsSnapshot {
    /// Component-wise sum — used by the fleet to fold per-tenant stats into
    /// fleet-wide totals.
    pub fn merge(&mut self, other: &PredictorStatsSnapshot) {
        self.queries += other.queries;
        self.fast_predictions += other.fast_predictions;
        self.rings_walked += other.rings_walked;
        self.candidates_bounded += other.candidates_bounded;
        self.candidates_evaluated += other.candidates_evaluated;
        self.scratch_grows += other.scratch_grows;
        self.index_builds += other.index_builds;
        self.index_rebuilds += other.index_rebuilds;
    }
}

impl Snapshot for PredictionStrategy {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            PredictionStrategy::NearestSlot => 0,
            PredictionStrategy::SuccessorOfNearest => 1,
            PredictionStrategy::LastValue => 2,
            PredictionStrategy::MeanOfHistory => 3,
        };
        tag.encode(out);
    }
}

impl Restore for PredictionStrategy {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        match u8::decode(cur)? {
            0 => Ok(PredictionStrategy::NearestSlot),
            1 => Ok(PredictionStrategy::SuccessorOfNearest),
            2 => Ok(PredictionStrategy::LastValue),
            3 => Ok(PredictionStrategy::MeanOfHistory),
            _ => Err(SnapshotError::Malformed {
                context: "prediction strategy tag",
            }),
        }
    }
}

impl Snapshot for DistanceKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            DistanceKind::SetEdit => 0,
            DistanceKind::Levenshtein => 1,
            DistanceKind::CountDifference => 2,
        };
        tag.encode(out);
    }
}

impl Restore for DistanceKind {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        match u8::decode(cur)? {
            0 => Ok(DistanceKind::SetEdit),
            1 => Ok(DistanceKind::Levenshtein),
            2 => Ok(DistanceKind::CountDifference),
            _ => Err(SnapshotError::Malformed {
                context: "distance kind tag",
            }),
        }
    }
}

impl Snapshot for ParallelismPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threads.encode(out);
        self.min_parallel_slots.encode(out);
    }
}

impl Restore for ParallelismPolicy {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            threads: usize::decode(cur)?,
            min_parallel_slots: usize::decode(cur)?,
        })
    }
}

impl Snapshot for PredictorStatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.queries.encode(out);
        self.fast_predictions.encode(out);
        self.rings_walked.encode(out);
        self.candidates_bounded.encode(out);
        self.candidates_evaluated.encode(out);
        self.scratch_grows.encode(out);
        self.index_builds.encode(out);
        self.index_rebuilds.encode(out);
    }
}

impl Restore for PredictorStatsSnapshot {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            queries: u64::decode(cur)?,
            fast_predictions: u64::decode(cur)?,
            rings_walked: u64::decode(cur)?,
            candidates_bounded: u64::decode(cur)?,
            candidates_evaluated: u64::decode(cur)?,
            scratch_grows: u64::decode(cur)?,
            index_builds: u64::decode(cur)?,
            index_rebuilds: u64::decode(cur)?,
        })
    }
}

impl Snapshot for PredictorStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.snapshot().encode(out);
    }
}

impl Restore for PredictorStats {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let snapshot = PredictorStatsSnapshot::decode(cur)?;
        Ok(Self {
            queries: AtomicU64::new(snapshot.queries),
            fast_predictions: AtomicU64::new(snapshot.fast_predictions),
            rings_walked: AtomicU64::new(snapshot.rings_walked),
            candidates_bounded: AtomicU64::new(snapshot.candidates_bounded),
            candidates_evaluated: AtomicU64::new(snapshot.candidates_evaluated),
            scratch_grows: AtomicU64::new(snapshot.scratch_grows),
            index_builds: AtomicU64::new(snapshot.index_builds),
            index_rebuilds: AtomicU64::new(snapshot.index_rebuilds),
        })
    }
}

/// The workload predictor: a knowledge base of historical slots plus a
/// prediction strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPredictor {
    history: SlotHistory,
    strategy: PredictionStrategy,
    distance: DistanceKind,
    groups: Vec<AccelerationGroupId>,
    /// Flat per-slot count signatures, `groups.len()` entries per retained
    /// slot, aligned with `history.slots()`.
    signatures: Vec<usize>,
    /// Flat per-slot `(min, max)` user-id ranges, `groups.len()` entries per
    /// retained slot, aligned with `signatures`. Because every per-group run
    /// is sorted and deduplicated, `|A ∩ B| <= min(|A|, |B|, range overlap)`,
    /// which turns the ranges into a second-level distance lower bound that
    /// refutes candidates whose user populations have drifted apart without
    /// touching their user lists. Empty groups use the `(u32::MAX, 0)`
    /// sentinel.
    id_ranges: Vec<(u32, u32)>,
    /// Global index of the slot `signatures[0..groups.len()]` belongs to.
    signature_first_index: usize,
    /// How the nearest-neighbour scan fans out over threads.
    parallelism: ParallelismPolicy,
    /// Whether (and when) the vantage-point metric index takes over the
    /// nearest-slot search.
    index_policy: IndexPolicy,
    /// The metric index itself, built once the retained history crosses
    /// [`IndexPolicy::min_indexed_slots`] and maintained incrementally
    /// alongside the signatures. `None` while the policy is linear, the
    /// history is short, or the distance is the count difference (whose
    /// signature scan is already `O(groups)` per candidate).
    index: Option<SlotIndex>,
    /// Cumulative query and index-health counters. Excluded from equality
    /// (see [`PredictorStats`]).
    stats: PredictorStats,
}

impl WorkloadPredictor {
    /// Creates a predictor over the given acceleration groups with the
    /// paper's configuration (nearest slot, set edit distance, unbounded
    /// history).
    pub fn new(groups: Vec<AccelerationGroupId>, slot_length_ms: f64) -> Self {
        Self {
            history: SlotHistory::new(slot_length_ms),
            strategy: PredictionStrategy::NearestSlot,
            distance: DistanceKind::SetEdit,
            groups,
            signatures: Vec::new(),
            id_ranges: Vec::new(),
            signature_first_index: 0,
            parallelism: ParallelismPolicy::default(),
            index_policy: IndexPolicy::default(),
            index: None,
            stats: PredictorStats::default(),
        }
    }

    /// Plain-integer snapshot of the cumulative query and index-health
    /// counters: scan queries answered, candidates bounded vs. evaluated,
    /// index ring-walk lengths, [`DistanceScratch`] growths, and index
    /// builds/rebuilds. Counters only ever increase; diff two snapshots to
    /// rate a window.
    pub fn stats(&self) -> PredictorStatsSnapshot {
        self.stats.snapshot()
    }

    /// Overrides the prediction strategy.
    pub fn with_strategy(mut self, strategy: PredictionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the distance function. Any existing metric index is
    /// rebuilt — its cached pivot distances belong to the old metric.
    pub fn with_distance(mut self, distance: DistanceKind) -> Self {
        self.distance = distance;
        self.index = None;
        self.sync_index();
        self
    }

    /// Overrides the scan parallelism policy.
    pub fn with_parallelism(mut self, parallelism: ParallelismPolicy) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Changes the scan parallelism policy in place.
    pub fn set_parallelism(&mut self, parallelism: ParallelismPolicy) {
        self.parallelism = parallelism;
    }

    /// The scan parallelism policy in force.
    pub fn parallelism(&self) -> ParallelismPolicy {
        self.parallelism
    }

    /// Overrides the metric-index policy (builder form).
    pub fn with_index_policy(mut self, policy: IndexPolicy) -> Self {
        self.set_index_policy(policy);
        self
    }

    /// Changes the metric-index policy in place, rebuilding (or dropping)
    /// the index to match.
    pub fn set_index_policy(&mut self, policy: IndexPolicy) {
        self.index_policy = policy;
        self.index = None;
        self.sync_index();
    }

    /// The metric-index policy in force.
    pub fn index_policy(&self) -> IndexPolicy {
        self.index_policy
    }

    /// Whether the vantage-point index is currently built and answering
    /// nearest-slot queries (benchmarks assert the indexed path is really
    /// exercised).
    pub fn index_active(&self) -> bool {
        self.index.is_some()
    }

    /// Caps the knowledge base at the `window` most recent slots, bounding
    /// both memory and the nearest-neighbour scan for long traces.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: usize) -> Self {
        self.set_window(Some(window));
        self
    }

    /// Changes the knowledge-base retention window (`None` = unbounded).
    ///
    /// # Panics
    ///
    /// Panics if `window` is `Some(0)`.
    pub fn set_window(&mut self, window: Option<usize>) {
        self.history.set_window(window);
        self.sync_signatures();
    }

    /// The prediction strategy in force.
    pub fn strategy(&self) -> PredictionStrategy {
        self.strategy
    }

    /// The acceleration groups the predictor forecasts for.
    pub fn groups(&self) -> &[AccelerationGroupId] {
        &self.groups
    }

    /// Read access to the accumulated history.
    pub fn history(&self) -> &SlotHistory {
        &self.history
    }

    /// Appends an observed slot to the knowledge base.
    pub fn observe_slot(&mut self, slot: TimeSlot) {
        self.history.push(slot);
        self.sync_signatures();
    }

    /// Replaces the whole history (used by cross-validation), keeping the
    /// window configured on the new history.
    pub fn set_history(&mut self, history: SlotHistory) {
        self.history = history;
        self.signatures.clear();
        self.id_ranges.clear();
        self.signature_first_index = self.history.first_index();
        self.index = None;
        self.sync_signatures();
    }

    /// Moves the accumulated knowledge base out of the predictor without
    /// copying, leaving an empty history with the same slot length and
    /// retention window. This is the shard hand-off path: when a tenant is
    /// migrated between shards (or offboarded), its slot history travels
    /// with it and can seed the receiving predictor via
    /// [`WorkloadPredictor::set_history`].
    pub fn take_history(&mut self) -> SlotHistory {
        let mut empty = SlotHistory::new(self.history.slot_length_ms);
        empty.set_window(self.history.window());
        let history = std::mem::replace(&mut self.history, empty);
        self.signatures.clear();
        self.id_ranges.clear();
        self.signature_first_index = 0;
        self.index = None;
        history
    }

    /// Brings the cached count signatures back in line with the retained
    /// slots after the history grew or evicted from the front.
    fn sync_signatures(&mut self) {
        let group_count = self.groups.len();
        if group_count == 0 {
            return;
        }
        let first = self.history.first_index();
        if first > self.signature_first_index {
            let drop = (first - self.signature_first_index) * group_count;
            self.signatures.drain(0..drop.min(self.signatures.len()));
            self.id_ranges.drain(0..drop.min(self.id_ranges.len()));
            self.signature_first_index = first;
        }
        let covered = self.signatures.len() / group_count;
        for slot in &self.history.slots()[covered..] {
            self.signatures
                .extend(self.groups.iter().map(|g| slot.load_of(*g)));
            self.id_ranges
                .extend(self.groups.iter().map(|g| id_range(slot.users_in(*g))));
        }
        debug_assert_eq!(self.signatures.len(), self.history.len() * group_count);
        debug_assert_eq!(self.id_ranges.len(), self.signatures.len());
        self.sync_index();
    }

    /// Brings the metric index in line with the retained slots: builds it
    /// once the history crosses the policy threshold, evicts and appends
    /// incrementally alongside the signatures, and re-chooses pivots under
    /// the doubling rule. A no-op for linear policies and for the count
    /// distance.
    fn sync_index(&mut self) {
        let Self {
            index,
            index_policy,
            history,
            groups,
            distance,
            stats,
            ..
        } = self;
        if !index_policy.is_indexed()
            || groups.is_empty()
            || *distance == DistanceKind::CountDifference
        {
            *index = None;
            return;
        }
        let len = history.len();
        match index {
            None => {
                if len >= index_policy.min_indexed_slots.max(1) {
                    *index = Some(SlotIndex::build(
                        history.slots(),
                        history.first_index(),
                        *distance,
                        groups,
                        index_policy.pivots,
                    ));
                    stats.index_builds.fetch_add(1, Relaxed);
                }
            }
            Some(existing) => {
                existing.evict_to(history.first_index(), groups.len());
                let covered = existing.len();
                for (offset, slot) in history.slots()[covered..].iter().enumerate() {
                    existing.push(
                        slot,
                        history.first_index() + covered + offset,
                        *distance,
                        groups,
                    );
                }
                if existing.should_rebuild() {
                    *index = Some(SlotIndex::build(
                        history.slots(),
                        history.first_index(),
                        *distance,
                        groups,
                        index_policy.pivots,
                    ));
                    stats.index_rebuilds.fetch_add(1, Relaxed);
                }
            }
        }
    }

    /// Lower bound on the configured distance between the probe (described
    /// by its per-group counts and id ranges) and the retained slot at
    /// `position`, computed from the cached signatures alone — `O(groups)`,
    /// no user lists touched. For the count distance the count signature
    /// *is* the distance. For the edit distances the bound is the id-range
    /// bound, which dominates the count difference: with `c_a`/`c_b` run
    /// lengths and `shared = min(c_a, c_b, range overlap)` an upper bound on
    /// the ids (equivalently, on any common subsequence) the runs can have
    /// in common, `set edit >= c_a + c_b - 2*shared` and
    /// `Levenshtein >= max(c_a, c_b) - shared`; both reduce to the count
    /// difference when the ranges fully overlap and refute drifted-apart
    /// populations outright when they do not.
    fn signature_bound(
        &self,
        probe_counts: &[usize],
        probe_ranges: &[(u32, u32)],
        position: usize,
    ) -> usize {
        let group_count = self.groups.len();
        let counts = &self.signatures[position * group_count..(position + 1) * group_count];
        match self.distance {
            DistanceKind::CountDifference => probe_counts
                .iter()
                .zip(counts)
                .map(|(a, b)| a.abs_diff(*b))
                .sum(),
            DistanceKind::SetEdit | DistanceKind::Levenshtein => {
                let ranges = &self.id_ranges[position * group_count..(position + 1) * group_count];
                let mut bound = 0usize;
                for g in 0..group_count {
                    let (ca, cb) = (probe_counts[g], counts[g]);
                    let shared = ca.min(cb).min(range_overlap(probe_ranges[g], ranges[g]));
                    bound += match self.distance {
                        DistanceKind::SetEdit => ca + cb - 2 * shared,
                        _ => ca.max(cb) - shared,
                    };
                }
                bound
            }
        }
    }

    /// Distance between two slots under the configured distance function.
    pub fn distance_between(&self, a: &TimeSlot, b: &TimeSlot) -> usize {
        match self.distance {
            DistanceKind::SetEdit => slot_distance(a, b, &self.groups),
            DistanceKind::Levenshtein => slot_levenshtein_distance(a, b, &self.groups),
            DistanceKind::CountDifference => count_distance(a, b, &self.groups),
        }
    }

    /// Distance between two slots computed with the retained naive
    /// reference implementations (per-call set construction, full-matrix
    /// Levenshtein) — the seed's cost model, kept as a baseline.
    pub fn distance_between_naive(&self, a: &TimeSlot, b: &TimeSlot) -> usize {
        match self.distance {
            DistanceKind::SetEdit => slot_distance_naive(a, b, &self.groups),
            DistanceKind::Levenshtein => slot_levenshtein_distance(a, b, &self.groups),
            DistanceKind::CountDifference => count_distance(a, b, &self.groups),
        }
    }

    /// The knowledge base `P`: the distance from `current` to every
    /// retained historical slot, in chronological order.
    pub fn knowledge_base(&self, current: &TimeSlot) -> Vec<usize> {
        self.history
            .slots()
            .iter()
            .map(|s| self.distance_between(current, s))
            .collect()
    }

    /// Position (within the retained slots) of the nearest historical slot.
    /// Ties resolve to the earliest slot, exactly like the naive linear scan.
    ///
    /// Candidates are visited **best-first**: the signature lower bound of
    /// every slot is computed up front (`O(groups)` each) and candidates are
    /// evaluated by ascending bound — with the chronological position as the
    /// secondary key, so among equally-bounded candidates the earliest slot
    /// is still tried first. Visiting the most promising candidates early
    /// tightens the best-so-far cap sooner, and because bounds ascend the
    /// scan stops outright at the first bound that exceeds the best distance
    /// found — the chronological scan could only *skip* such candidates one
    /// by one. The full distance is evaluated with the `*_bounded` early-exit
    /// implementations of [`crate::distance`], capped at the best distance
    /// (for candidates earlier than the incumbent, where an equal distance
    /// wins the tie) or one below it (for later candidates, where only a
    /// strictly smaller distance helps).
    fn nearest_position(&self, current: &TimeSlot) -> Option<usize> {
        let slots = self.history.slots();
        if slots.is_empty() {
            return None;
        }
        let group_count = self.groups.len();
        if group_count == 0 {
            // every distance is zero over an empty group universe; the
            // earliest slot wins the tie
            return Some(0);
        }
        let current_signature: Vec<usize> =
            self.groups.iter().map(|g| current.load_of(*g)).collect();
        if self.distance == DistanceKind::CountDifference {
            // the signature lower bound IS the count distance: one
            // allocation-free scan, first minimum wins
            let mut best = usize::MAX;
            let mut best_position = 0;
            let mut visited = 0u64;
            for (position, signature) in self.signatures.chunks_exact(group_count).enumerate() {
                let distance: usize = current_signature
                    .iter()
                    .zip(signature)
                    .map(|(a, b)| a.abs_diff(*b))
                    .sum();
                visited += 1;
                if distance < best {
                    best = distance;
                    best_position = position;
                    if best == 0 {
                        break;
                    }
                }
            }
            self.stats.queries.fetch_add(1, Relaxed);
            self.stats.candidates_bounded.fetch_add(visited, Relaxed);
            return Some(best_position);
        }
        let current_ranges: Vec<(u32, u32)> = self
            .groups
            .iter()
            .map(|g| id_range(current.users_in(*g)))
            .collect();
        if let Some(index) = &self.index {
            return Some(self.nearest_position_indexed(
                current,
                &current_signature,
                &current_ranges,
                index,
            ));
        }
        if self.parallelism.is_parallel() && slots.len() >= self.parallelism.min_parallel_slots {
            return Some(self.nearest_position_chunked(
                current,
                &current_signature,
                &current_ranges,
            ));
        }
        // `(signature lower bound, position)`, sorted ascending: best-first
        // with the earliest-slot preference as secondary order.
        let mut order: Vec<(usize, usize)> = (0..slots.len())
            .map(|position| {
                (
                    self.signature_bound(&current_signature, &current_ranges, position),
                    position,
                )
            })
            .collect();
        order.sort_unstable();
        self.stats.queries.fetch_add(1, Relaxed);
        self.stats
            .candidates_bounded
            .fetch_add(order.len() as u64, Relaxed);
        let mut evaluated = 0u64;
        let mut scratch = DistanceScratch::new();
        let mut best = usize::MAX;
        let mut best_position = usize::MAX;
        for &(lower_bound, position) in &order {
            if lower_bound > best {
                break; // bounds ascend: no remaining candidate can win
            }
            if lower_bound == best && position > best_position {
                continue; // can at best tie, and would lose the tie-break
            }
            // an equal distance only helps for slots earlier than the
            // incumbent match
            let cap = if position < best_position {
                best
            } else {
                best - 1 // position > best_position implies best > lower_bound >= 0
            };
            let candidate = self.bounded_distance(current, &slots[position], cap, &mut scratch);
            evaluated += 1;
            if let Some(distance) = candidate {
                if distance < best || (distance == best && position < best_position) {
                    best = distance;
                    best_position = position;
                    if best == 0 {
                        // a perfect match: every earlier slot that could tie
                        // had bound zero and was already visited
                        break;
                    }
                }
            }
        }
        self.stats
            .candidates_evaluated
            .fetch_add(evaluated, Relaxed);
        self.stats
            .scratch_grows
            .fetch_add(scratch.grows() as u64, Relaxed);
        Some(best_position)
    }

    /// The configured early-exit distance between `current` and one
    /// candidate, capped at `cap` (`None` when the distance provably exceeds
    /// the cap). The count distance never reaches here — its signature *is*
    /// its distance and it takes the dedicated linear scan.
    fn bounded_distance(
        &self,
        current: &TimeSlot,
        candidate: &TimeSlot,
        cap: usize,
        scratch: &mut DistanceScratch,
    ) -> Option<usize> {
        match self.distance {
            DistanceKind::CountDifference => {
                unreachable!("the count distance takes its dedicated linear scan")
            }
            DistanceKind::SetEdit => slot_distance_bounded(current, candidate, &self.groups, cap),
            DistanceKind::Levenshtein => {
                slot_levenshtein_distance_bounded(current, candidate, &self.groups, cap, scratch)
            }
        }
    }

    /// Position of the nearest slot via the chunked parallel scan, in three
    /// steps:
    ///
    /// 1. **Bounds (parallel):** the candidate list splits into
    ///    [`ParallelismPolicy::threads`] contiguous chronological chunks and
    ///    every chunk computes its signature lower bounds, reporting its
    ///    first-minimum bound.
    /// 2. **Seed (sequential, one candidate):** the global first-minimum
    ///    bound candidate is evaluated fully. This is the candidate the
    ///    sequential best-first scan would visit first, and its distance is
    ///    the tight cap that lets *every* chunk prune as hard as the global
    ///    scan — chunk-local seeds would leave far-past chunks burning full
    ///    evaluations on candidates the global best already rules out.
    /// 3. **Scan (parallel):** every chunk scans its range chronologically
    ///    against the shared seed incumbent and reports its exact
    ///    first-minimum `(distance, position)`; the lexicographic minimum of
    ///    the chunk results reproduces the sequential scan's earliest-slot
    ///    tie-break bit-for-bit — for any chunk count and any executing
    ///    thread count.
    ///
    /// Unlike the sequential path no global best-first ordering is needed,
    /// so the `O(n log n)` candidate sort disappears — which is why the
    /// chunked scan wins even before threads multiply the bounds and scan
    /// steps.
    fn nearest_position_chunked(
        &self,
        current: &TimeSlot,
        current_signature: &[usize],
        current_ranges: &[(u32, u32)],
    ) -> usize {
        let chunks = chunk_ranges(self.history.len(), self.parallelism.threads);
        self.stats.queries.fetch_add(1, Relaxed);
        self.stats
            .candidates_bounded
            .fetch_add(self.history.len() as u64, Relaxed);
        let prepared: Vec<ChunkCandidates> = chunks
            .par_iter()
            .map(|range| self.chunk_bounds(current_signature, current_ranges, range.clone()))
            .collect();
        let (seed_bound, seed_position) = prepared
            .iter()
            .map(|chunk| (chunk.min_bound, chunk.min_position))
            .min()
            .expect("a non-empty history yields at least one chunk");
        let mut scratch = DistanceScratch::new();
        let seed_distance = self
            .bounded_distance(
                current,
                &self.history.slots()[seed_position],
                usize::MAX,
                &mut scratch,
            )
            .expect("an uncapped distance always evaluates");
        self.stats.candidates_evaluated.fetch_add(1, Relaxed);
        self.stats
            .scratch_grows
            .fetch_add(scratch.grows() as u64, Relaxed);
        if seed_distance == 0 {
            // the seed is the globally FIRST minimum bound: every earlier
            // candidate has a strictly larger bound (> seed_bound == 0),
            // hence a non-zero distance; later ones tie at best and lose
            debug_assert_eq!(seed_bound, 0);
            return seed_position;
        }
        let per_chunk: Vec<(usize, usize)> = prepared
            .par_iter()
            .map(|chunk| self.scan_chunk(current, chunk, seed_distance, seed_position))
            .collect();
        per_chunk
            .into_iter()
            .min()
            .map(|(_, position)| position)
            .expect("a non-empty history yields at least one chunk")
    }

    /// Step 1 of the chunked scan: the signature lower bounds of one chunk,
    /// with the chunk's first-minimum bound and its position.
    fn chunk_bounds(
        &self,
        current_signature: &[usize],
        current_ranges: &[(u32, u32)],
        range: Range<usize>,
    ) -> ChunkCandidates {
        let mut bounds = Vec::with_capacity(range.len());
        let mut min_position = range.start;
        let mut min_bound = usize::MAX;
        for position in range.clone() {
            let lower_bound = self.signature_bound(current_signature, current_ranges, position);
            bounds.push(lower_bound);
            if lower_bound < min_bound {
                min_bound = lower_bound;
                min_position = position;
            }
        }
        ChunkCandidates {
            range,
            bounds,
            min_bound,
            min_position,
        }
    }

    /// Step 3 of the chunked scan: the exact first-minimum
    /// `(distance, position)` over one chunk's range *and* the shared seed
    /// incumbent. Candidates are visited chronologically with the same cap
    /// rules as the sequential path, starting from the globally tight seed
    /// cap; a chunk that cannot improve on the seed returns the seed
    /// incumbent itself, so the merge minimum is always exact.
    fn scan_chunk(
        &self,
        current: &TimeSlot,
        chunk: &ChunkCandidates,
        seed_distance: usize,
        seed_position: usize,
    ) -> (usize, usize) {
        let slots = self.history.slots();
        let mut scratch = DistanceScratch::new();
        let mut evaluated = 0u64;
        let mut best = seed_distance;
        let mut best_position = seed_position;
        for (offset, position) in chunk.range.clone().enumerate() {
            if position == seed_position {
                continue;
            }
            let lower_bound = chunk.bounds[offset];
            if lower_bound > best || (lower_bound == best && position > best_position) {
                continue;
            }
            // an equal distance only helps for slots earlier than the
            // incumbent; position > best_position passed the filter above
            // with lower_bound < best, so best >= 1 and the cap cannot wrap
            let cap = if position < best_position {
                best
            } else {
                best - 1
            };
            let candidate = self.bounded_distance(current, &slots[position], cap, &mut scratch);
            evaluated += 1;
            if let Some(distance) = candidate {
                if distance < best || (distance == best && position < best_position) {
                    best = distance;
                    best_position = position;
                    if best == 0 {
                        // chronological scan: every earlier in-chunk candidate
                        // was already visited, later ones tie at best and lose
                        break;
                    }
                }
            }
        }
        self.stats
            .candidates_evaluated
            .fetch_add(evaluated, Relaxed);
        self.stats
            .scratch_grows
            .fetch_add(scratch.grows() as u64, Relaxed);
        (best, best_position)
    }

    /// Position of the nearest slot via the vantage-point metric index.
    ///
    /// The probe's exact distance to every pivot is computed once; each
    /// candidate then carries two families of lower bounds that are pure
    /// cached-number arithmetic: the triangle bound
    /// `|d(probe, p_k) - d(candidate, p_k)|` per pivot, and the
    /// count/id-range signature bound of the linear scans. Candidates are
    /// walked in non-decreasing ring offset to pivot 0
    /// ([`SlotIndex::ring_walk`]), so when the ring offset alone exceeds
    /// the best distance found the walk stops — every remaining candidate
    /// is refuted wholesale without being visited, which is where the
    /// sublinear behaviour comes from. Survivors are evaluated with the
    /// same `*_bounded` early-exit kernels and the same cap and tie rules
    /// as the serial scan (cap `best` for candidates earlier than the
    /// incumbent, `best - 1` for later ones), with the set-edit distance
    /// additionally taking the cached XOR-popcount bitsets. The probe's
    /// own ring is visited first in ascending global index, so a perfect
    /// match terminates at the earliest equal slot — the forecast is
    /// bit-identical to the serial, chunked and naive scans.
    fn nearest_position_indexed(
        &self,
        current: &TimeSlot,
        current_signature: &[usize],
        current_ranges: &[(u32, u32)],
        index: &SlotIndex,
    ) -> usize {
        let slots = self.history.slots();
        let first_index = self.history.first_index();
        debug_assert_eq!(index.first_index(), first_index);
        debug_assert_eq!(index.len(), slots.len());
        let mut scratch = DistanceScratch::new();
        let probe_pivot: Vec<u32> = index
            .pivots()
            .iter()
            .map(|p| self.distance_between(current, p).min(u32::MAX as usize) as u32)
            .collect();
        let probe_bitsets: Vec<Option<GroupBitset>> = match self.distance {
            DistanceKind::SetEdit => self
                .groups
                .iter()
                .map(|g| GroupBitset::from_run(current.users_in(*g)))
                .collect(),
            _ => Vec::new(),
        };
        let probe_key = probe_pivot[0];
        self.stats.queries.fetch_add(1, Relaxed);
        let mut walked = 0u64;
        let mut bounded = 0u64;
        let mut evaluated = 0u64;
        let mut best = usize::MAX;
        let mut best_global = u64::MAX;
        for (ring, global) in index.ring_walk(probe_key) {
            walked += 1;
            if ring as usize > best {
                break; // rings ascend: everything further is refuted wholesale
            }
            bounded += 1;
            let position = (global as usize) - first_index;
            let mut bound = ring as usize;
            for (probe_d, cached_d) in probe_pivot.iter().zip(index.pivot_distances_of(position)) {
                bound = bound.max(probe_d.abs_diff(*cached_d) as usize);
            }
            bound = bound.max(self.signature_bound(current_signature, current_ranges, position));
            if bound > best || (bound == best && global > best_global) {
                continue; // cannot win, or can at best tie and lose the tie-break
            }
            // an equal distance only helps for slots earlier than the
            // incumbent; global > best_global passed the filter above with
            // bound < best, so best >= 1 and the cap cannot wrap
            let cap = if global < best_global { best } else { best - 1 };
            let candidate = self.indexed_bounded_distance(
                current,
                &probe_bitsets,
                index,
                position,
                cap,
                &mut scratch,
            );
            evaluated += 1;
            if let Some(distance) = candidate {
                if distance < best || (distance == best && global < best_global) {
                    best = distance;
                    best_global = global;
                    if best == 0 {
                        // only the probe's own ring can hold distance-zero
                        // candidates (triangle inequality), and that ring is
                        // walked in ascending global index: this is the
                        // earliest perfect match
                        break;
                    }
                }
            }
        }
        self.stats.rings_walked.fetch_add(walked, Relaxed);
        self.stats.candidates_bounded.fetch_add(bounded, Relaxed);
        self.stats
            .candidates_evaluated
            .fetch_add(evaluated, Relaxed);
        self.stats
            .scratch_grows
            .fetch_add(scratch.grows() as u64, Relaxed);
        (best_global as usize) - first_index
    }

    /// The configured early-exit distance for the indexed scan: like
    /// [`WorkloadPredictor::bounded_distance`], but the set-edit distance
    /// runs over the index's cached bitset packings (XOR + popcount per
    /// 64-id word) wherever both sides packed, falling back to the linear
    /// merge per group otherwise. Exact either way.
    fn indexed_bounded_distance(
        &self,
        current: &TimeSlot,
        probe_bitsets: &[Option<GroupBitset>],
        index: &SlotIndex,
        position: usize,
        cap: usize,
        scratch: &mut DistanceScratch,
    ) -> Option<usize> {
        match self.distance {
            DistanceKind::CountDifference => {
                unreachable!("the count distance never builds an index")
            }
            DistanceKind::Levenshtein => slot_levenshtein_distance_bounded(
                current,
                &self.history.slots()[position],
                &self.groups,
                cap,
                scratch,
            ),
            DistanceKind::SetEdit => {
                let candidate = &self.history.slots()[position];
                let cached = index.bitsets_of(position, self.groups.len());
                let mut total = 0;
                for (g, group) in self.groups.iter().enumerate() {
                    let remaining = cap - total;
                    total += match (&probe_bitsets[g], cached.get(g).and_then(|b| b.as_ref())) {
                        (Some(a), Some(b)) => bitset_group_distance_bounded(a, b, remaining)?,
                        _ => group_distance_bounded(
                            current.users_in(*group),
                            candidate.users_in(*group),
                            remaining,
                        )?,
                    };
                }
                Some(total)
            }
        }
    }

    /// Observes `slot` and immediately forecasts the next slot — the closed
    /// loop's per-interval step, equivalent to
    /// [`WorkloadPredictor::observe_slot`] followed by
    /// [`WorkloadPredictor::predict`] on the same slot but substantially
    /// cheaper. Because the probe is part of the knowledge base by the time
    /// the prediction runs, the minimum distance is exactly zero, and the
    /// nearest slot is the **earliest retained slot equal to the probe**:
    /// equal per-group user runs for the edit distances (slice equality
    /// exits on the first differing user), equal count signature for the
    /// count distance. No distance is ever evaluated.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistory`] when the history-based strategy
    /// has no slot to forecast from, which after observing cannot happen —
    /// the error case exists only for [`PredictionStrategy::MeanOfHistory`]
    /// symmetry with [`WorkloadPredictor::predict`].
    pub fn observe_and_predict(&mut self, slot: TimeSlot) -> Result<WorkloadForecast, CoreError> {
        match self.strategy {
            PredictionStrategy::LastValue => {
                let forecast = self.forecast_from_current(&slot);
                self.observe_slot(slot);
                Ok(forecast)
            }
            PredictionStrategy::MeanOfHistory => {
                self.observe_slot(slot);
                self.forecast_from_mean()
            }
            PredictionStrategy::NearestSlot | PredictionStrategy::SuccessorOfNearest => {
                self.observe_slot(slot);
                let slots = self.history.slots();
                let last = slots.len() - 1;
                let group_count = self.groups.len();
                let mut position = last;
                if group_count > 0 {
                    let current = &slots[last];
                    let current_signature =
                        &self.signatures[last * group_count..(last + 1) * group_count];
                    for (earlier, signature) in self
                        .signatures
                        .chunks_exact(group_count)
                        .enumerate()
                        .take(last)
                    {
                        if signature != current_signature {
                            continue;
                        }
                        let equal = match self.distance {
                            // equal counts are all the count distance sees
                            DistanceKind::CountDifference => true,
                            DistanceKind::SetEdit | DistanceKind::Levenshtein => self
                                .groups
                                .iter()
                                .all(|g| slots[earlier].users_in(*g) == current.users_in(*g)),
                        };
                        if equal {
                            position = earlier;
                            break;
                        }
                    }
                } else {
                    // no groups: every distance is zero, the earliest slot wins
                    position = 0;
                }
                self.stats.fast_predictions.fetch_add(1, Relaxed);
                Ok(self.forecast_from_position(position))
            }
        }
    }

    /// Predicts the workload of the next slot given the current slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistory`] when no historical slot is
    /// available for a history-based strategy.
    pub fn predict(&self, current: &TimeSlot) -> Result<WorkloadForecast, CoreError> {
        match self.strategy {
            PredictionStrategy::LastValue => Ok(self.forecast_from_current(current)),
            PredictionStrategy::MeanOfHistory => self.forecast_from_mean(),
            PredictionStrategy::NearestSlot | PredictionStrategy::SuccessorOfNearest => {
                let nearest = self
                    .nearest_position(current)
                    .ok_or(CoreError::EmptyHistory)?;
                Ok(self.forecast_from_position(nearest))
            }
        }
    }

    /// The naive reference prediction: a full linear scan of the knowledge
    /// base with the `*_naive` distance implementations, as the seed
    /// computed it. Produces the same forecast as [`WorkloadPredictor::predict`];
    /// kept for property testing and as the benchmark baseline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyHistory`] when no historical slot is
    /// available for a history-based strategy.
    pub fn predict_naive(&self, current: &TimeSlot) -> Result<WorkloadForecast, CoreError> {
        match self.strategy {
            PredictionStrategy::LastValue => Ok(self.forecast_from_current(current)),
            PredictionStrategy::MeanOfHistory => self.forecast_from_mean(),
            PredictionStrategy::NearestSlot | PredictionStrategy::SuccessorOfNearest => {
                if self.history.is_empty() {
                    return Err(CoreError::EmptyHistory);
                }
                let (nearest, _) = self
                    .history
                    .slots()
                    .iter()
                    .map(|s| self.distance_between_naive(current, s))
                    .enumerate()
                    .min_by_key(|(_, d)| *d)
                    .expect("history is non-empty");
                Ok(self.forecast_from_position(nearest))
            }
        }
    }

    fn forecast_from_current(&self, current: &TimeSlot) -> WorkloadForecast {
        WorkloadForecast {
            per_group: self
                .groups
                .iter()
                .map(|g| (*g, current.load_of(*g)))
                .collect(),
            matched_slot: None,
        }
    }

    fn forecast_from_mean(&self) -> Result<WorkloadForecast, CoreError> {
        if self.history.is_empty() {
            return Err(CoreError::EmptyHistory);
        }
        let n = self.history.len() as f64;
        let per_group = self
            .groups
            .iter()
            .map(|g| {
                let total: usize = self.history.slots().iter().map(|s| s.load_of(*g)).sum();
                let mean = (total as f64 / n).round() as usize;
                // a group observed at least once never forecasts to zero:
                // the paper's model only ever predicts loads it has seen, so
                // a small average must not round a live group out of the
                // allocation
                (*g, if total > 0 { mean.max(1) } else { 0 })
            })
            .collect();
        Ok(WorkloadForecast {
            per_group,
            matched_slot: None,
        })
    }

    /// Builds the forecast from the retained slot at `position`, applying
    /// the successor shift when the strategy asks for it.
    fn forecast_from_position(&self, position: usize) -> WorkloadForecast {
        let source = match self.strategy {
            PredictionStrategy::SuccessorOfNearest => (position + 1).min(self.history.len() - 1),
            _ => position,
        };
        let slot = &self.history.slots()[source];
        WorkloadForecast {
            per_group: self.groups.iter().map(|g| (*g, slot.load_of(*g))).collect(),
            matched_slot: Some(self.history.first_index() + source),
        }
    }
}

impl Snapshot for WorkloadForecast {
    fn encode(&self, out: &mut Vec<u8>) {
        self.per_group.encode(out);
        self.matched_slot.encode(out);
    }
}

impl Restore for WorkloadForecast {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            per_group: Vec::<(AccelerationGroupId, usize)>::decode(cur)?,
            matched_slot: Option::<usize>::decode(cur)?,
        })
    }
}

/// The predictor checkpoints its knowledge base (history and metric index)
/// plus configuration and counters; the count/id-range signatures are
/// derived caches and are rebuilt deterministically on decode. The decode
/// path deliberately bypasses [`WorkloadPredictor::set_history`] — a
/// post-restore `sync_index` would count a spurious index build — and
/// restores the index exactly as checkpointed, so `observed_since_build`
/// (and with it the doubling-rule rebuild schedule) resumes where the
/// original run left it.
impl Snapshot for WorkloadPredictor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.history.encode(out);
        self.strategy.encode(out);
        self.distance.encode(out);
        self.groups.encode(out);
        self.parallelism.encode(out);
        self.index_policy.encode(out);
        self.index.encode(out);
        self.stats.encode(out);
    }
}

impl Restore for WorkloadPredictor {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let history = SlotHistory::decode(cur)?;
        let strategy = PredictionStrategy::decode(cur)?;
        let distance = DistanceKind::decode(cur)?;
        let groups = Vec::<AccelerationGroupId>::decode(cur)?;
        let parallelism = ParallelismPolicy::decode(cur)?;
        let index_policy = IndexPolicy::decode(cur)?;
        let index = Option::<SlotIndex>::decode(cur)?;
        let stats = PredictorStats::decode(cur)?;
        if let Some(index) = &index {
            if index.first_index() != history.first_index() || index.len() != history.len() {
                return Err(SnapshotError::Malformed {
                    context: "metric index out of step with the history",
                });
            }
        }
        let mut predictor = Self {
            history,
            strategy,
            distance,
            groups,
            signatures: Vec::new(),
            id_ranges: Vec::new(),
            signature_first_index: 0,
            parallelism,
            index_policy,
            index,
            stats,
        };
        predictor.signature_first_index = predictor.history.first_index();
        let group_count = predictor.groups.len();
        if group_count > 0 {
            for slot in predictor.history.slots() {
                predictor
                    .signatures
                    .extend(predictor.groups.iter().map(|g| slot.load_of(*g)));
                predictor
                    .id_ranges
                    .extend(predictor.groups.iter().map(|g| id_range(slot.users_in(*g))));
            }
        }
        Ok(predictor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::UserId;

    const GROUPS: [AccelerationGroupId; 3] = [
        AccelerationGroupId(1),
        AccelerationGroupId(2),
        AccelerationGroupId(3),
    ];

    /// A synthetic slot with `n1`/`n2`/`n3` users in groups 1/2/3, using user
    /// ids offset so that similar loads share most user identities.
    fn slot(n1: u32, n2: u32, n3: u32) -> TimeSlot {
        let mut pairs = Vec::new();
        for u in 0..n1 {
            pairs.push((AccelerationGroupId(1), UserId(u)));
        }
        for u in 0..n2 {
            pairs.push((AccelerationGroupId(2), UserId(1_000 + u)));
        }
        for u in 0..n3 {
            pairs.push((AccelerationGroupId(3), UserId(2_000 + u)));
        }
        TimeSlot::from_assignments(0, pairs)
    }

    fn predictor_with_history(slots: Vec<TimeSlot>) -> WorkloadPredictor {
        let mut p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0);
        for s in slots {
            p.observe_slot(s);
        }
        p
    }

    #[test]
    fn empty_history_is_an_error() {
        let p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0);
        assert_eq!(
            p.predict(&slot(3, 0, 0)).unwrap_err(),
            CoreError::EmptyHistory
        );
        assert_eq!(
            p.predict_naive(&slot(3, 0, 0)).unwrap_err(),
            CoreError::EmptyHistory
        );
    }

    #[test]
    fn nearest_slot_matches_the_most_similar_history_entry() {
        let p = predictor_with_history(vec![slot(10, 2, 0), slot(40, 10, 5), slot(3, 1, 0)]);
        let forecast = p.predict(&slot(9, 2, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(0));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 10);
        assert_eq!(forecast.load_of(AccelerationGroupId(2)), 2);
        assert_eq!(forecast.total(), 12);
    }

    #[test]
    fn growing_load_is_matched_to_largest_seen_slot() {
        // §IV-B-2: a dramatically growing load can only be matched to the
        // largest load in the history, making allocation conservative.
        let p = predictor_with_history(vec![slot(5, 0, 0), slot(20, 5, 0), slot(60, 20, 10)]);
        let huge = slot(500, 100, 50);
        let forecast = p.predict(&huge).unwrap();
        assert_eq!(forecast.matched_slot, Some(2));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 60);
    }

    #[test]
    fn successor_strategy_predicts_following_slot() {
        let p = predictor_with_history(vec![slot(10, 0, 0), slot(20, 5, 0), slot(30, 10, 2)])
            .with_strategy(PredictionStrategy::SuccessorOfNearest);
        let forecast = p.predict(&slot(11, 0, 0)).unwrap();
        // nearest is slot 0, successor is slot 1
        assert_eq!(forecast.matched_slot, Some(1));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 20);
    }

    #[test]
    fn successor_of_last_slot_saturates() {
        let p = predictor_with_history(vec![slot(10, 0, 0), slot(50, 0, 0)])
            .with_strategy(PredictionStrategy::SuccessorOfNearest);
        let forecast = p.predict(&slot(49, 0, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(1));
    }

    #[test]
    fn last_value_strategy_repeats_current() {
        let p = predictor_with_history(vec![slot(1, 1, 1)])
            .with_strategy(PredictionStrategy::LastValue);
        let forecast = p.predict(&slot(7, 3, 2)).unwrap();
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 7);
        assert_eq!(forecast.load_of(AccelerationGroupId(2)), 3);
        assert_eq!(forecast.matched_slot, None);
    }

    #[test]
    fn mean_strategy_averages_history() {
        let p = predictor_with_history(vec![slot(10, 0, 0), slot(20, 4, 0), slot(30, 2, 0)])
            .with_strategy(PredictionStrategy::MeanOfHistory);
        let forecast = p.predict(&slot(0, 0, 0)).unwrap();
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 20);
        assert_eq!(forecast.load_of(AccelerationGroupId(2)), 2);
    }

    #[test]
    fn knowledge_base_has_one_entry_per_history_slot() {
        let p = predictor_with_history(vec![slot(1, 0, 0), slot(2, 0, 0), slot(3, 0, 0)]);
        let kb = p.knowledge_base(&slot(2, 0, 0));
        assert_eq!(kb.len(), 3);
        assert_eq!(kb[1], 0, "identical slot has distance zero");
        assert!(kb[0] > 0 && kb[2] > 0);
    }

    #[test]
    fn distance_kinds_agree_on_identical_slots() {
        for kind in [
            DistanceKind::SetEdit,
            DistanceKind::Levenshtein,
            DistanceKind::CountDifference,
        ] {
            let p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0).with_distance(kind);
            assert_eq!(p.distance_between(&slot(5, 3, 1), &slot(5, 3, 1)), 0);
            assert!(p.distance_between(&slot(5, 3, 1), &slot(9, 0, 0)) > 0);
        }
    }

    #[test]
    fn pruned_search_agrees_with_naive_reference_for_every_distance_kind() {
        let history: Vec<TimeSlot> = (0..40u32)
            .map(|i| slot(5 + (i * 7) % 23, (i * 3) % 11, (i * 5) % 7))
            .collect();
        let probes = [
            slot(9, 2, 1),
            slot(0, 0, 0),
            slot(30, 10, 6),
            slot(5, 0, 0),
            slot(17, 8, 3),
        ];
        for kind in [
            DistanceKind::SetEdit,
            DistanceKind::Levenshtein,
            DistanceKind::CountDifference,
        ] {
            for strategy in [
                PredictionStrategy::NearestSlot,
                PredictionStrategy::SuccessorOfNearest,
            ] {
                let p = predictor_with_history(history.clone())
                    .with_distance(kind)
                    .with_strategy(strategy);
                for probe in &probes {
                    let fast = p.predict(probe).unwrap();
                    let naive = p.predict_naive(probe).unwrap();
                    assert_eq!(fast, naive, "{kind:?}/{strategy:?}");
                }
            }
        }
    }

    #[test]
    fn window_caps_the_knowledge_base_and_keeps_global_indices() {
        let mut p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0).with_window(3);
        for i in 0..6u32 {
            p.observe_slot(slot(10 * (i + 1), 0, 0));
        }
        assert_eq!(p.history().len(), 3);
        assert_eq!(p.history().first_index(), 3);
        // slots retained: loads 40, 50, 60 at global indices 3, 4, 5
        let forecast = p.predict(&slot(41, 0, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(3));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 40);
        // the evicted load-10 slot is no longer matchable
        let forecast = p.predict(&slot(10, 0, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(3));
        assert_eq!(p.predict_naive(&slot(10, 0, 0)).unwrap(), forecast);
    }

    #[test]
    fn observe_and_predict_equals_observe_then_predict() {
        let history: Vec<TimeSlot> = (0..30u32)
            .map(|i| slot(3 + (i * 5) % 17, (i * 3) % 7, i % 4))
            .collect();
        let probes: Vec<TimeSlot> = (0..12u32)
            .map(|i| slot(3 + (i * 5) % 17, (i * 7) % 7, i % 3))
            .collect();
        for kind in [
            DistanceKind::SetEdit,
            DistanceKind::Levenshtein,
            DistanceKind::CountDifference,
        ] {
            for strategy in [
                PredictionStrategy::NearestSlot,
                PredictionStrategy::SuccessorOfNearest,
                PredictionStrategy::LastValue,
                PredictionStrategy::MeanOfHistory,
            ] {
                let mut fast = predictor_with_history(history.clone())
                    .with_distance(kind)
                    .with_strategy(strategy);
                let mut slow = fast.clone();
                for probe in &probes {
                    let combined = fast.observe_and_predict(probe.clone());
                    slow.observe_slot(probe.clone());
                    let separate = slow.predict(probe);
                    assert_eq!(combined, separate, "{kind:?}/{strategy:?}");
                    assert_eq!(fast, slow, "{kind:?}/{strategy:?} predictor state");
                }
            }
        }
    }

    #[test]
    fn best_first_ordering_keeps_the_earliest_slot_on_ties() {
        // many identical slots: the naive scan returns the first minimum in
        // chronological order, and the best-first ordering must agree even
        // though every candidate has the same signature lower bound
        let duplicates = vec![slot(5, 2, 1); 7];
        for kind in [
            DistanceKind::SetEdit,
            DistanceKind::Levenshtein,
            DistanceKind::CountDifference,
        ] {
            let p = predictor_with_history(duplicates.clone()).with_distance(kind);
            for probe in [slot(5, 2, 1), slot(6, 2, 1), slot(0, 0, 0)] {
                let fast = p.predict(&probe).unwrap();
                let naive = p.predict_naive(&probe).unwrap();
                assert_eq!(fast, naive, "{kind:?}");
                assert_eq!(fast.matched_slot, Some(0), "{kind:?}");
            }
        }
        // an exact match later in the history still loses to an equal-distance
        // earlier slot, but wins over strictly-worse earlier slots
        let p = predictor_with_history(vec![slot(9, 9, 9), slot(5, 2, 1), slot(5, 2, 1)]);
        let forecast = p.predict(&slot(5, 2, 1)).unwrap();
        assert_eq!(forecast.matched_slot, Some(1));
        assert_eq!(forecast, p.predict_naive(&slot(5, 2, 1)).unwrap());
    }

    #[test]
    fn mean_forecast_never_rounds_a_live_group_to_zero() {
        // regression: one user in group 1 over three slots averages to 1/3,
        // which `round()` silently truncated to a zero forecast for a group
        // the predictor had just observed
        let p = predictor_with_history(vec![slot(1, 0, 5), slot(0, 0, 5), slot(0, 0, 4)])
            .with_strategy(PredictionStrategy::MeanOfHistory);
        let forecast = p.predict(&slot(0, 0, 0)).unwrap();
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 1, "clamped to 1");
        // a group never observed still forecasts zero
        assert_eq!(forecast.load_of(AccelerationGroupId(2)), 0);
        // ordinary averages are untouched (14/3 rounds to 5)
        assert_eq!(forecast.load_of(AccelerationGroupId(3)), 5);
    }

    #[test]
    fn parallelism_policy_defaults_to_serial() {
        let policy = ParallelismPolicy::default();
        assert_eq!(policy, ParallelismPolicy::serial());
        assert!(!policy.is_parallel());
        assert!(ParallelismPolicy::parallel(4).is_parallel());
        assert_eq!(ParallelismPolicy::parallel(0).threads, 1, "clamped");
        let p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0);
        assert_eq!(p.parallelism(), ParallelismPolicy::serial());
    }

    #[test]
    fn chunked_parallel_scan_is_bit_identical_to_serial_and_naive() {
        // a history with many near-duplicates and exact ties, so the
        // earliest-slot tie-break is genuinely exercised across chunk
        // boundaries
        let history: Vec<TimeSlot> = (0..120u32)
            .map(|i| slot(5 + (i * 7) % 13, (i * 3) % 5, (i * 5) % 4))
            .collect();
        let probes = [
            slot(9, 2, 1),
            slot(0, 0, 0),
            slot(12, 4, 3),
            slot(5, 0, 0),
            slot(300, 9, 2),
        ];
        for kind in [
            DistanceKind::SetEdit,
            DistanceKind::Levenshtein,
            DistanceKind::CountDifference,
        ] {
            for strategy in [
                PredictionStrategy::NearestSlot,
                PredictionStrategy::SuccessorOfNearest,
            ] {
                let serial = predictor_with_history(history.clone())
                    .with_distance(kind)
                    .with_strategy(strategy);
                for threads in [1, 2, 4, 8, 120, 1000] {
                    let parallel = serial.clone().with_parallelism(
                        ParallelismPolicy::parallel(threads).with_min_parallel_slots(1),
                    );
                    for probe in &probes {
                        let chunked = parallel.predict(probe).unwrap();
                        assert_eq!(
                            chunked,
                            serial.predict(probe).unwrap(),
                            "{kind:?}/{strategy:?}/threads={threads}"
                        );
                        assert_eq!(
                            chunked,
                            serial.predict_naive(probe).unwrap(),
                            "{kind:?}/{strategy:?}/threads={threads} vs naive"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_scan_respects_the_fan_out_threshold_and_ties() {
        // identical slots everywhere: every chunk reports distance zero and
        // the merge must still return the globally earliest slot
        let p = predictor_with_history(vec![slot(4, 2, 1); 30])
            .with_parallelism(ParallelismPolicy::parallel(7).with_min_parallel_slots(1));
        let forecast = p.predict(&slot(4, 2, 1)).unwrap();
        assert_eq!(forecast.matched_slot, Some(0));
        // below the threshold the serial path runs and agrees
        let gated = predictor_with_history(vec![slot(4, 2, 1); 30])
            .with_parallelism(ParallelismPolicy::parallel(7).with_min_parallel_slots(1000));
        assert_eq!(gated.predict(&slot(4, 2, 1)).unwrap(), forecast);
    }

    #[test]
    fn indexed_scan_is_bit_identical_to_serial_chunked_and_naive() {
        // near-duplicates and exact ties, so equal-distance candidates land
        // in different rings of different pivot partitions
        let history: Vec<TimeSlot> = (0..160u32)
            .map(|i| slot(5 + (i * 7) % 13, (i * 3) % 5, (i * 5) % 4))
            .collect();
        let probes = [
            slot(9, 2, 1),
            slot(0, 0, 0),
            slot(12, 4, 3),
            slot(5, 0, 0),
            slot(300, 9, 2),
        ];
        for kind in [DistanceKind::SetEdit, DistanceKind::Levenshtein] {
            for strategy in [
                PredictionStrategy::NearestSlot,
                PredictionStrategy::SuccessorOfNearest,
            ] {
                let serial = predictor_with_history(history.clone())
                    .with_distance(kind)
                    .with_strategy(strategy);
                let chunked = serial
                    .clone()
                    .with_parallelism(ParallelismPolicy::parallel(4).with_min_parallel_slots(1));
                for pivots in [1, 2, 4, 9] {
                    let indexed = serial.clone().with_index_policy(
                        IndexPolicy::indexed()
                            .with_pivots(pivots)
                            .with_min_indexed_slots(1),
                    );
                    assert!(indexed.index_active(), "history is long enough");
                    for probe in &probes {
                        let forecast = indexed.predict(probe).unwrap();
                        assert_eq!(
                            forecast,
                            serial.predict(probe).unwrap(),
                            "{kind:?}/{strategy:?}/pivots={pivots} vs serial"
                        );
                        assert_eq!(
                            forecast,
                            chunked.predict(probe).unwrap(),
                            "{kind:?}/{strategy:?}/pivots={pivots} vs chunked"
                        );
                        assert_eq!(
                            forecast,
                            serial.predict_naive(probe).unwrap(),
                            "{kind:?}/{strategy:?}/pivots={pivots} vs naive"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn indexed_scan_keeps_the_earliest_slot_on_ties() {
        // identical slots: every candidate sits in the probe's own ring and
        // the ascending walk must return the globally earliest one
        let p = predictor_with_history(vec![slot(4, 2, 1); 25])
            .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(1));
        assert!(p.index_active());
        for probe in [slot(4, 2, 1), slot(5, 2, 1), slot(0, 0, 0)] {
            let forecast = p.predict(&probe).unwrap();
            assert_eq!(forecast.matched_slot, Some(0));
            assert_eq!(forecast, p.predict_naive(&probe).unwrap());
        }
        // an exact match later in the history still loses to an equal-distance
        // earlier slot, but wins over strictly-worse earlier slots
        let p = predictor_with_history(vec![slot(9, 9, 9), slot(5, 2, 1), slot(5, 2, 1)])
            .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(1));
        let forecast = p.predict(&slot(5, 2, 1)).unwrap();
        assert_eq!(forecast.matched_slot, Some(1));
    }

    #[test]
    fn index_follows_window_eviction_and_keeps_global_indices() {
        let mut indexed = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0)
            .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(2))
            .with_window(5);
        let mut plain = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0).with_window(5);
        for i in 0..23u32 {
            let s = slot(3 + (i * 7) % 11, (i * 3) % 6, i % 3);
            indexed.observe_slot(s.clone());
            plain.observe_slot(s);
            let probe = slot(3 + (i * 5) % 11, (i * 2) % 6, (i + 1) % 3);
            assert_eq!(
                indexed.predict(&probe).unwrap(),
                plain.predict_naive(&probe).unwrap(),
                "step {i}"
            );
        }
        assert!(indexed.index_active());
        assert_eq!(indexed.history().len(), 5);
        assert_eq!(indexed.history().first_index(), 18);
    }

    #[test]
    fn index_gates_on_threshold_distance_kind_and_policy() {
        let history: Vec<TimeSlot> = (0..10u32).map(|i| slot(i + 1, 0, 0)).collect();
        // linear policy: no index
        let p = predictor_with_history(history.clone());
        assert!(!p.index_active());
        // below the build threshold the linear scans keep running
        let p = predictor_with_history(history.clone())
            .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(50));
        assert!(!p.index_active());
        assert_eq!(
            p.predict(&slot(3, 0, 0)).unwrap(),
            p.predict_naive(&slot(3, 0, 0)).unwrap()
        );
        // the count distance never builds one — its signature scan is exact
        let p = predictor_with_history(history.clone())
            .with_distance(DistanceKind::CountDifference)
            .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(1));
        assert!(!p.index_active());
        assert_eq!(
            p.predict(&slot(3, 0, 0)).unwrap(),
            p.predict_naive(&slot(3, 0, 0)).unwrap()
        );
        // switching the distance rebuilds the index for the new metric
        let p = predictor_with_history(history)
            .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(1))
            .with_distance(DistanceKind::Levenshtein);
        assert!(p.index_active());
        assert_eq!(
            p.predict(&slot(3, 0, 0)).unwrap(),
            p.predict_naive(&slot(3, 0, 0)).unwrap()
        );
    }

    #[test]
    fn take_history_hands_off_the_knowledge_base() {
        let mut donor = predictor_with_history(vec![slot(3, 0, 0), slot(7, 1, 0)]).with_window(8);
        let history = donor.take_history();
        assert_eq!(history.len(), 2);
        assert_eq!(history.window(), Some(8));
        // the donor keeps its configuration but forgets its knowledge base
        assert!(donor.history().is_empty());
        assert_eq!(donor.history().window(), Some(8));
        assert_eq!(
            donor.predict(&slot(3, 0, 0)).unwrap_err(),
            CoreError::EmptyHistory
        );
        // the receiving predictor picks up exactly where the donor stopped
        let mut receiver = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0);
        receiver.set_history(history);
        let forecast = receiver.predict(&slot(3, 0, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(0));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 3);
    }

    #[test]
    fn stats_count_queries_but_never_affect_equality() {
        let mut p = predictor_with_history(vec![slot(3, 0, 0), slot(7, 1, 0), slot(5, 2, 1)]);
        let untouched = p.clone();
        assert_eq!(p.stats(), PredictorStatsSnapshot::default());

        p.predict(&slot(4, 1, 0)).unwrap();
        let after_one = p.stats();
        assert_eq!(after_one.queries, 1);
        assert_eq!(after_one.candidates_bounded, 3);
        assert!(after_one.candidates_evaluated >= 1);

        p.observe_and_predict(slot(4, 1, 0)).unwrap();
        assert_eq!(p.stats().fast_predictions, 1);
        // the fast path resolves by signature equality: no new scan query
        assert_eq!(p.stats().queries, 1);

        // stats are observability data, not semantic state: the probed
        // predictor still equals one that never answered a query (modulo the
        // slot the fast path observed, which we remove again)
        let probed = untouched.clone();
        probed.predict(&slot(4, 1, 0)).unwrap();
        assert_eq!(probed, untouched);
        assert_ne!(probed.stats(), untouched.stats());
    }

    #[test]
    fn stats_snapshots_are_identical_across_scan_paths() {
        let slots: Vec<TimeSlot> = (0..64u32).map(|i| slot(i % 7 + 1, i % 5, i % 3)).collect();
        let probe = slot(4, 2, 1);

        let serial = predictor_with_history(slots.clone());
        serial.predict(&probe).unwrap();

        let chunked = predictor_with_history(slots.clone())
            .with_parallelism(ParallelismPolicy::parallel(4).with_min_parallel_slots(1));
        chunked.predict(&probe).unwrap();

        // both linear paths bound every candidate exactly once per query
        assert_eq!(serial.stats().candidates_bounded, 64);
        assert_eq!(chunked.stats().candidates_bounded, 64);
        assert_eq!(serial.stats().queries, 1);
        assert_eq!(chunked.stats().queries, 1);

        // the indexed path reports ring-walk coverage and index builds
        let indexed = predictor_with_history(slots)
            .with_index_policy(IndexPolicy::indexed().with_min_indexed_slots(1));
        indexed.predict(&probe).unwrap();
        let stats = indexed.stats();
        assert_eq!(stats.index_builds, 1);
        assert!(stats.rings_walked >= stats.candidates_bounded);
        assert!(stats.candidates_bounded >= stats.candidates_evaluated);
        assert!(stats.candidates_evaluated >= 1);
    }

    #[test]
    fn window_keeps_signatures_aligned_after_set_history() {
        let mut donor = SlotHistory::new(3_600_000.0);
        for i in 0..5u32 {
            donor.push(slot(i + 1, 0, 0));
        }
        let mut p = WorkloadPredictor::new(GROUPS.to_vec(), 3_600_000.0);
        p.set_history(donor);
        p.set_window(Some(2));
        assert_eq!(p.history().len(), 2);
        let forecast = p.predict(&slot(4, 0, 0)).unwrap();
        assert_eq!(forecast.matched_slot, Some(3));
        assert_eq!(forecast.load_of(AccelerationGroupId(1)), 4);
    }
}
