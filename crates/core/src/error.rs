//! Error type for the SDN code-acceleration core.

use mca_offload::AccelerationGroupId;
use std::error::Error;
use std::fmt;

/// Errors produced by the SDN-accelerator and the adaptive model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A request asked for an acceleration group the system does not provide.
    UnknownGroup {
        /// The requested group.
        group: AccelerationGroupId,
    },
    /// The group exists but currently has no running instance to serve it.
    NoInstanceAvailable {
        /// The group without capacity.
        group: AccelerationGroupId,
    },
    /// The predictor has no history to learn from yet.
    EmptyHistory,
    /// The allocator could not find a feasible allocation (e.g. the predicted
    /// workload cannot be served within the account cap).
    AllocationInfeasible {
        /// Human-readable reason from the solver.
        reason: String,
    },
    /// System configuration is inconsistent (e.g. no acceleration groups).
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownGroup { group } => write!(f, "unknown acceleration group {group}"),
            CoreError::NoInstanceAvailable { group } => {
                write!(f, "no running instance serves acceleration group {group}")
            }
            CoreError::EmptyHistory => {
                write!(f, "prediction requires at least one historical time slot")
            }
            CoreError::AllocationInfeasible { reason } => {
                write!(f, "resource allocation infeasible: {reason}")
            }
            CoreError::InvalidConfig { reason } => {
                write!(f, "invalid system configuration: {reason}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::UnknownGroup {
            group: AccelerationGroupId(9),
        };
        assert!(e.to_string().contains("a9"));
        assert!(CoreError::EmptyHistory.to_string().contains("historical"));
        assert!(CoreError::AllocationInfeasible {
            reason: "cap".into()
        }
        .to_string()
        .contains("cap"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<CoreError>();
    }
}
