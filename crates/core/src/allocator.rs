//! Dynamic resource allocation (§IV-C).
//!
//! Given the predicted workload `W = Σ W_{a_n}`, the allocator chooses how
//! many instances `x_s` of each type `s` to run during the next provisioning
//! interval so that (1) every acceleration group has enough capacity for its
//! predicted workload, (2) the total number of instances stays below the
//! cloud account cap `CC`, and (3) the total hourly cost `Σ x_s · c_s` is
//! minimal. The paper solves this Integer Linear Program with R's
//! `lpSolveAPI`; here it is solved exactly with `mca-lp`, and two baseline
//! policies (greedy and over-provisioning) are provided for the ablation
//! benchmarks.

use crate::accel::AccelerationGroups;
use crate::error::CoreError;
use crate::predictor::WorkloadForecast;
use mca_cloudsim::{InstanceType, Server};
use mca_lp::{BranchBoundOptions, LpBackend, Problem, Sense, VarKind};
use mca_offload::AccelerationGroupId;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};

/// Which allocation policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AllocationPolicy {
    /// The paper's policy: exact cost minimization via Integer Linear
    /// Programming.
    #[default]
    IlpExact,
    /// Per group, allocate only the type with the best capacity-per-dollar
    /// ratio, rounding the count up. Cheap to compute, may over-pay when
    /// mixing types would be cheaper.
    GreedyCheapest,
    /// Allocate the most capable type of each group and add one spare
    /// instance — the "always safe" policy the paper argues against because
    /// it over-provisions.
    OverProvision,
}

/// Work counters of the solve that produced an [`Allocation`].
///
/// Zero for the closed-form policies (greedy / over-provision) and for
/// cache-served allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AllocationStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Simplex pivots across all node relaxations.
    pub pivots: usize,
    /// Nodes re-entered from a parent basis without running phase 1.
    pub phase1_skips: usize,
}

/// The chosen allocation for one provisioning interval.
///
/// Equality compares the *prescription* — instance counts, per-group
/// breakdown, cost and capacities — and deliberately ignores [`AllocationStats`],
/// so two solvers that chose the same instances produce equal allocations
/// regardless of how much work each spent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Allocation {
    /// Instances to run, per type (summed over groups).
    pub counts: Vec<(InstanceType, usize)>,
    /// Instances to run per acceleration group and type.
    pub per_group: Vec<(AccelerationGroupId, Vec<(InstanceType, usize)>)>,
    /// Hourly cost of the allocation, USD.
    pub hourly_cost: f64,
    /// Total capacity provided per group, in concurrent users.
    pub capacity_per_group: Vec<(AccelerationGroupId, usize)>,
    /// Solver work counters (ILP policy only).
    pub stats: AllocationStats,
}

impl PartialEq for Allocation {
    fn eq(&self, other: &Self) -> bool {
        self.counts == other.counts
            && self.per_group == other.per_group
            && self.hourly_cost == other.hourly_cost
            && self.capacity_per_group == other.capacity_per_group
    }
}

impl Allocation {
    /// Total number of instances in the allocation.
    pub fn total_instances(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Number of instances of one type.
    pub fn count_of(&self, instance_type: InstanceType) -> usize {
        self.counts
            .iter()
            .find(|(t, _)| *t == instance_type)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Capacity provided for one group, in concurrent users.
    pub fn capacity_of(&self, group: AccelerationGroupId) -> usize {
        self.capacity_per_group
            .iter()
            .find(|(g, _)| *g == group)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Returns `true` when the allocation provides at least the forecast
    /// workload in every group.
    pub fn covers(&self, forecast: &WorkloadForecast) -> bool {
        forecast
            .per_group
            .iter()
            .all(|(g, w)| self.capacity_of(*g) >= *w)
    }

    /// The instance counts per group for the instance pool
    /// (`mca_cloudsim::InstancePool::apply_allocation`).
    pub fn pool_allocation(&self) -> Vec<(InstanceType, usize)> {
        self.counts.clone()
    }
}

impl Snapshot for AllocationStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nodes.encode(out);
        self.pivots.encode(out);
        self.phase1_skips.encode(out);
    }
}

impl Restore for AllocationStats {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            nodes: usize::decode(cur)?,
            pivots: usize::decode(cur)?,
            phase1_skips: usize::decode(cur)?,
        })
    }
}

/// The stats travel on the wire even though equality ignores them: a restored
/// memo cache replays them into the shard metrics on a hit, exactly as the
/// uninterrupted run would have.
impl Snapshot for Allocation {
    fn encode(&self, out: &mut Vec<u8>) {
        self.counts.encode(out);
        self.per_group.encode(out);
        self.hourly_cost.encode(out);
        self.capacity_per_group.encode(out);
        self.stats.encode(out);
    }
}

impl Restore for Allocation {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            counts: Vec::<(InstanceType, usize)>::decode(cur)?,
            per_group: Vec::<(AccelerationGroupId, Vec<(InstanceType, usize)>)>::decode(cur)?,
            hourly_cost: f64::decode(cur)?,
            capacity_per_group: Vec::<(AccelerationGroupId, usize)>::decode(cur)?,
            stats: AllocationStats::decode(cur)?,
        })
    }
}

/// The dynamic resource allocator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceAllocator {
    groups: AccelerationGroups,
    policy: AllocationPolicy,
    lp_backend: LpBackend,
    /// Cloud account instance cap (`CC`).
    pub account_cap: usize,
    /// Minimum number of instances kept running per group even when the
    /// predicted workload is zero (so that a newly promoted device always has
    /// a server to land on).
    pub min_instances_per_group: usize,
    /// Typical task work used to derive per-type capacities, work units.
    pub typical_work_units: f64,
    /// Per-type capacity under the response-time target, in concurrent users
    /// (the paper's `K_s`).
    capacities: Vec<(AccelerationGroupId, InstanceType, usize)>,
}

impl ResourceAllocator {
    /// Creates an allocator over the given groups with the paper's defaults
    /// (ILP policy, `CC = 20`, one instance minimum per group).
    pub fn new(groups: AccelerationGroups) -> Self {
        Self::with_policy(groups, AllocationPolicy::IlpExact)
    }

    /// Creates an allocator with an explicit policy.
    pub fn with_policy(groups: AccelerationGroups, policy: AllocationPolicy) -> Self {
        let typical_work_units = 65.0;
        let capacities = Self::derive_capacities(&groups, typical_work_units);
        Self {
            groups,
            policy,
            lp_backend: LpBackend::default(),
            account_cap: mca_cloudsim::pool::DEFAULT_ACCOUNT_CAP,
            min_instances_per_group: 1,
            typical_work_units,
            capacities,
        }
    }

    /// Overrides the account cap.
    pub fn with_account_cap(mut self, cap: usize) -> Self {
        self.account_cap = cap;
        self
    }

    /// Overrides the per-group minimum.
    pub fn with_min_instances(mut self, min: usize) -> Self {
        self.min_instances_per_group = min;
        self
    }

    /// Overrides the LP engine used by the ILP policy (the default is the
    /// sparse revised simplex with warm-started branch-and-bound;
    /// [`LpBackend::DenseTableau`] selects the cold dense reference).
    pub fn with_lp_backend(mut self, backend: LpBackend) -> Self {
        self.lp_backend = backend;
        self
    }

    /// The LP engine the ILP policy solves with.
    pub fn lp_backend(&self) -> LpBackend {
        self.lp_backend
    }

    /// The allocation policy in force.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// The acceleration groups the allocator provisions for.
    pub fn groups(&self) -> &AccelerationGroups {
        &self.groups
    }

    /// Capacity `K_s` of one instance of `instance_type` when serving
    /// `group`, in concurrent users.
    pub fn capacity_of(&self, group: AccelerationGroupId, instance_type: InstanceType) -> usize {
        self.capacities
            .iter()
            .find(|(g, t, _)| *g == group && *t == instance_type)
            .map(|(_, _, c)| *c)
            .unwrap_or(0)
    }

    fn derive_capacities(
        groups: &AccelerationGroups,
        typical_work_units: f64,
    ) -> Vec<(AccelerationGroupId, InstanceType, usize)> {
        let target = groups.response_target_ms;
        groups
            .groups()
            .iter()
            .flat_map(|g| {
                g.instance_types.iter().map(move |&t| {
                    let capacity = Server::new(t)
                        .capacity_under(typical_work_units, target)
                        .max(1);
                    (g.id, t, capacity)
                })
            })
            .collect()
    }

    /// Computes the allocation for a forecast workload.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AllocationInfeasible`] when no allocation within
    /// the account cap can serve the forecast.
    pub fn allocate(&self, forecast: &WorkloadForecast) -> Result<Allocation, CoreError> {
        match self.policy {
            AllocationPolicy::IlpExact => self.allocate_ilp(forecast),
            AllocationPolicy::GreedyCheapest => self.allocate_greedy(forecast, false),
            AllocationPolicy::OverProvision => self.allocate_greedy(forecast, true),
        }
    }

    fn allocate_ilp(&self, forecast: &WorkloadForecast) -> Result<Allocation, CoreError> {
        let mut problem = Problem::minimize();
        // one variable per (group, instance type)
        let mut vars = Vec::new();
        for group in self.groups.groups() {
            for &ty in &group.instance_types {
                let cost = ty.spec().cost_per_hour;
                let var = problem.add_var(
                    format!("{}-{}", group.id, ty),
                    VarKind::Integer,
                    0.0,
                    Some(self.account_cap as f64),
                    cost,
                );
                vars.push((group.id, ty, var));
            }
        }
        // per-group capacity and minimum-instance constraints
        for group in self.groups.groups() {
            let workload = forecast.load_of(group.id);
            let capacity_terms: Vec<(mca_lp::VarId, f64)> = vars
                .iter()
                .filter(|(g, _, _)| *g == group.id)
                .map(|(_, ty, var)| (*var, self.capacity_of(group.id, *ty) as f64))
                .collect();
            problem.add_constraint(
                format!("capacity-{}", group.id),
                &capacity_terms,
                Sense::Ge,
                workload as f64,
            );
            let count_terms: Vec<(mca_lp::VarId, f64)> = vars
                .iter()
                .filter(|(g, _, _)| *g == group.id)
                .map(|(_, _, var)| (*var, 1.0))
                .collect();
            problem.add_constraint(
                format!("min-{}", group.id),
                &count_terms,
                Sense::Ge,
                self.min_instances_per_group as f64,
            );
        }
        // account cap
        let all_terms: Vec<(mca_lp::VarId, f64)> = vars.iter().map(|(_, _, v)| (*v, 1.0)).collect();
        problem.add_constraint(
            "account-cap",
            &all_terms,
            Sense::Le,
            self.account_cap as f64,
        );

        // one solve builds the sparse problem representation once and shares
        // it across every branch-and-bound node (the dense reference backend
        // instead rebuilds its tableau per node)
        let options = BranchBoundOptions {
            backend: self.lp_backend,
            ..Default::default()
        };
        let solution =
            problem
                .solve_with(&options)
                .map_err(|e| CoreError::AllocationInfeasible {
                    reason: e.to_string(),
                })?;

        let mut per_group: Vec<(AccelerationGroupId, Vec<(InstanceType, usize)>)> = Vec::new();
        for group in self.groups.groups() {
            let counts: Vec<(InstanceType, usize)> = vars
                .iter()
                .filter(|(g, _, _)| *g == group.id)
                .map(|(_, ty, var)| (*ty, solution.value_rounded(*var).max(0) as usize))
                .filter(|(_, n)| *n > 0)
                .collect();
            per_group.push((group.id, counts));
        }
        let mut allocation = self.build_allocation(per_group);
        allocation.stats = AllocationStats {
            nodes: solution.stats.nodes,
            pivots: solution.stats.pivots,
            phase1_skips: solution.stats.phase1_skips,
        };
        Ok(allocation)
    }

    fn allocate_greedy(
        &self,
        forecast: &WorkloadForecast,
        over_provision: bool,
    ) -> Result<Allocation, CoreError> {
        let mut per_group: Vec<(AccelerationGroupId, Vec<(InstanceType, usize)>)> = Vec::new();
        for group in self.groups.groups() {
            let workload = forecast.load_of(group.id);
            let chosen = if over_provision {
                // most capable member
                group
                    .instance_types
                    .iter()
                    .copied()
                    .max_by_key(|&t| self.capacity_of(group.id, t))
            } else {
                // best capacity per dollar
                group.instance_types.iter().copied().max_by(|&a, &b| {
                    let ra = self.capacity_of(group.id, a) as f64 / a.spec().cost_per_hour;
                    let rb = self.capacity_of(group.id, b) as f64 / b.spec().cost_per_hour;
                    ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
                })
            }
            .ok_or_else(|| CoreError::AllocationInfeasible {
                reason: format!("group {} has no instance types", group.id),
            })?;
            let capacity = self.capacity_of(group.id, chosen).max(1);
            let mut count = workload
                .div_ceil(capacity)
                .max(self.min_instances_per_group);
            if over_provision {
                count += 1;
            }
            per_group.push((group.id, vec![(chosen, count)]));
        }
        let allocation = self.build_allocation(per_group);
        if allocation.total_instances() > self.account_cap {
            return Err(CoreError::AllocationInfeasible {
                reason: format!(
                    "{} instances needed but the account cap is {}",
                    allocation.total_instances(),
                    self.account_cap
                ),
            });
        }
        Ok(allocation)
    }

    fn build_allocation(
        &self,
        per_group: Vec<(AccelerationGroupId, Vec<(InstanceType, usize)>)>,
    ) -> Allocation {
        let mut counts: Vec<(InstanceType, usize)> = Vec::new();
        let mut capacity_per_group = Vec::new();
        for (group, group_counts) in &per_group {
            let mut cap = 0usize;
            for (ty, n) in group_counts {
                cap += self.capacity_of(*group, *ty) * n;
                match counts.iter_mut().find(|(t, _)| t == ty) {
                    Some((_, total)) => *total += n,
                    None => counts.push((*ty, *n)),
                }
            }
            capacity_per_group.push((*group, cap));
        }
        let hourly_cost = counts
            .iter()
            .map(|(t, n)| t.spec().cost_per_hour * *n as f64)
            .sum::<f64>();
        Allocation {
            counts,
            per_group,
            hourly_cost,
            capacity_per_group,
            stats: AllocationStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::WorkloadForecast;

    fn forecast(loads: &[(u8, usize)]) -> WorkloadForecast {
        WorkloadForecast {
            per_group: loads
                .iter()
                .map(|&(g, n)| (AccelerationGroupId(g), n))
                .collect(),
            matched_slot: None,
        }
    }

    fn allocator(policy: AllocationPolicy) -> ResourceAllocator {
        ResourceAllocator::with_policy(AccelerationGroups::paper_three_groups(), policy)
    }

    #[test]
    fn ilp_allocation_covers_the_forecast_within_cap() {
        let alloc = allocator(AllocationPolicy::IlpExact);
        let f = forecast(&[(1, 60), (2, 120), (3, 40)]);
        let a = alloc.allocate(&f).unwrap();
        assert!(a.covers(&f), "{a:?}");
        assert!(a.total_instances() <= 20);
        assert!(a.hourly_cost > 0.0);
    }

    #[test]
    fn zero_workload_keeps_the_minimum_fleet() {
        let alloc = allocator(AllocationPolicy::IlpExact);
        let a = alloc
            .allocate(&forecast(&[(1, 0), (2, 0), (3, 0)]))
            .unwrap();
        assert_eq!(a.total_instances(), 3, "one instance per group");
        for group in [1u8, 2, 3] {
            assert!(a.capacity_of(AccelerationGroupId(group)) >= 1);
        }
    }

    #[test]
    fn ilp_never_costs_more_than_greedy_or_overprovisioning() {
        let f = forecast(&[(1, 150), (2, 300), (3, 100)]);
        let ilp = allocator(AllocationPolicy::IlpExact).allocate(&f).unwrap();
        let greedy = allocator(AllocationPolicy::GreedyCheapest)
            .allocate(&f)
            .unwrap();
        let over = allocator(AllocationPolicy::OverProvision)
            .allocate(&f)
            .unwrap();
        assert!(
            ilp.hourly_cost <= greedy.hourly_cost + 1e-9,
            "ilp {} greedy {}",
            ilp.hourly_cost,
            greedy.hourly_cost
        );
        assert!(
            ilp.hourly_cost <= over.hourly_cost + 1e-9,
            "ilp {} over {}",
            ilp.hourly_cost,
            over.hourly_cost
        );
        assert!(greedy.covers(&f));
        assert!(over.covers(&f));
    }

    #[test]
    fn growing_workload_increases_cost_monotonically() {
        let alloc = allocator(AllocationPolicy::IlpExact);
        let mut last_cost = 0.0;
        for load in [10usize, 100, 400, 800] {
            let a = alloc
                .allocate(&forecast(&[(1, load), (2, load), (3, load / 2)]))
                .unwrap();
            assert!(
                a.hourly_cost >= last_cost - 1e-9,
                "cost must not shrink as load grows"
            );
            last_cost = a.hourly_cost;
        }
    }

    #[test]
    fn infeasible_when_workload_exceeds_account_cap() {
        let alloc = allocator(AllocationPolicy::IlpExact).with_account_cap(2);
        // three groups with a minimum of one instance each cannot fit in 2
        let err = alloc
            .allocate(&forecast(&[(1, 1), (2, 1), (3, 1)]))
            .unwrap_err();
        assert!(matches!(err, CoreError::AllocationInfeasible { .. }));
    }

    #[test]
    fn greedy_reports_infeasible_over_cap() {
        let alloc = allocator(AllocationPolicy::GreedyCheapest).with_account_cap(3);
        let err = alloc
            .allocate(&forecast(&[(1, 100_000), (2, 0), (3, 0)]))
            .unwrap_err();
        assert!(matches!(err, CoreError::AllocationInfeasible { .. }));
    }

    #[test]
    fn overprovision_allocates_spares() {
        let f = forecast(&[(1, 10), (2, 10), (3, 10)]);
        let over = allocator(AllocationPolicy::OverProvision)
            .allocate(&f)
            .unwrap();
        let exact = allocator(AllocationPolicy::IlpExact).allocate(&f).unwrap();
        assert!(over.total_instances() > exact.total_instances());
        assert!(over.hourly_cost >= exact.hourly_cost);
    }

    #[test]
    fn capacities_grow_with_acceleration_level() {
        let alloc = allocator(AllocationPolicy::IlpExact);
        let c1 = alloc.capacity_of(AccelerationGroupId(1), mca_cloudsim::InstanceType::T2Nano);
        let c2 = alloc.capacity_of(AccelerationGroupId(2), mca_cloudsim::InstanceType::T2Large);
        let c3 = alloc.capacity_of(
            AccelerationGroupId(3),
            mca_cloudsim::InstanceType::M4_4XLarge,
        );
        assert!(c1 < c2 && c2 < c3, "{c1} {c2} {c3}");
        assert_eq!(
            alloc.capacity_of(AccelerationGroupId(1), mca_cloudsim::InstanceType::T2Large),
            0
        );
    }

    #[test]
    fn ilp_reports_solver_statistics() {
        let alloc = allocator(AllocationPolicy::IlpExact);
        let a = alloc
            .allocate(&forecast(&[(1, 60), (2, 120), (3, 40)]))
            .unwrap();
        assert!(a.stats.nodes >= 1, "{:?}", a.stats);
        assert!(a.stats.pivots >= 1, "{:?}", a.stats);
        // greedy policies do no solver work
        let g = allocator(AllocationPolicy::GreedyCheapest)
            .allocate(&forecast(&[(1, 60), (2, 120), (3, 40)]))
            .unwrap();
        assert_eq!(g.stats, AllocationStats::default());
    }

    #[test]
    fn revised_and_dense_backends_allocate_identically() {
        use mca_lp::LpBackend;
        let revised = allocator(AllocationPolicy::IlpExact);
        let dense = allocator(AllocationPolicy::IlpExact).with_lp_backend(LpBackend::DenseTableau);
        assert_eq!(dense.lp_backend(), LpBackend::DenseTableau);
        for loads in [
            [(1u8, 0usize), (2, 0), (3, 0)],
            [(1, 60), (2, 120), (3, 40)],
            [(1, 150), (2, 300), (3, 100)],
            [(1, 777), (2, 13), (3, 333)],
        ] {
            let f = forecast(&loads);
            let a = revised.allocate(&f).unwrap();
            let b = dense.allocate(&f).unwrap();
            // equality ignores stats: same instances, cost and capacities
            assert_eq!(a, b, "loads {loads:?}");
        }
    }

    #[test]
    fn pool_allocation_lists_every_type_once() {
        let f = forecast(&[(1, 200), (2, 50), (3, 10)]);
        let a = allocator(AllocationPolicy::IlpExact).allocate(&f).unwrap();
        let mut types: Vec<_> = a.pool_allocation().iter().map(|(t, _)| *t).collect();
        let before = types.len();
        types.dedup();
        assert_eq!(before, types.len());
    }
}
