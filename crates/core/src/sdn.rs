//! The SDN-accelerator front-end (§V, Fig. 3).
//!
//! The Request Handler (RH) is the entry point for offloading requests; the
//! Code Offloader (CO) determines the acceleration level a request needs and
//! routes it to the corresponding group of instances, logging every processed
//! request. The total response time decomposes as
//! `T_response = T1 + T2 + T_cloud` (Fig. 7a) where `T1` is the mobile ↔
//! front-end communication, `T2` the front-end ↔ back-end routing (≈150 ms,
//! Fig. 8a) and `T_cloud` the execution time in the chosen instance.

use crate::accel::AccelerationGroups;
use crate::config::SystemConfig;
use crate::error::CoreError;
use crate::logs::TraceLog;
use mca_cloudsim::{InstanceType, Server};
use mca_network::TransferModel;
use mca_offload::{AccelerationGroupId, OffloadRequest, TraceRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome of routing one request through the SDN-accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedRequest {
    /// The trace record logged for the request (timing decomposition and
    /// outcome).
    pub record: TraceRecord,
    /// The acceleration group that served the request (after clamping).
    pub group: AccelerationGroupId,
    /// The instance type the request was executed on.
    pub instance_type: InstanceType,
    /// Number of requests concurrently in service on the chosen group's
    /// servers when this one was admitted (including the background load).
    pub concurrency: usize,
}

/// The SDN-accelerator: request handler, code offloader/router and log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdnAccelerator {
    groups: AccelerationGroups,
    config: SystemConfig,
    transfer: TransferModel,
    log: TraceLog,
    /// Representative server per group (used for the execution-time model;
    /// keeps CPU-credit state across requests).
    servers: HashMap<u8, Server>,
    /// Number of instances currently allocated per group.
    instances: HashMap<u8, usize>,
    /// Completion times of outstanding requests per group.
    outstanding: HashMap<u8, Vec<f64>>,
    requests_handled: u64,
    requests_dropped: u64,
}

impl SdnAccelerator {
    /// Creates an accelerator for the given system configuration, with one
    /// instance initially allocated per group.
    pub fn new(config: SystemConfig) -> Self {
        let groups = config.groups.clone();
        let mut servers = HashMap::new();
        let mut instances = HashMap::new();
        let mut outstanding = HashMap::new();
        for g in groups.groups() {
            let ty = g
                .cheapest_instance()
                .expect("validated groups have instance types");
            servers.insert(g.id.0, Server::new(ty));
            instances.insert(g.id.0, 1);
            outstanding.insert(g.id.0, Vec::new());
        }
        Self {
            groups,
            transfer: TransferModel::for_technology(config.network.profile().technology),
            config,
            log: TraceLog::new(),
            servers,
            instances,
            outstanding,
            requests_handled: 0,
            requests_dropped: 0,
        }
    }

    /// The acceleration groups the accelerator routes to.
    pub fn groups(&self) -> &AccelerationGroups {
        &self.groups
    }

    /// The request log accumulated so far.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Total number of requests handled.
    pub fn requests_handled(&self) -> u64 {
        self.requests_handled
    }

    /// Total number of requests dropped (no capacity in the target group).
    pub fn requests_dropped(&self) -> u64 {
        self.requests_dropped
    }

    /// Applies a new allocation: updates the instance count of every group
    /// (groups absent from the allocation keep at least one instance so that
    /// routing stays possible).
    pub fn apply_allocation(&mut self, per_group: &[(AccelerationGroupId, usize)]) {
        for (group, count) in per_group {
            self.instances.insert(group.0, (*count).max(1));
        }
    }

    /// Number of instances currently serving `group`.
    pub fn instances_of(&self, group: AccelerationGroupId) -> usize {
        self.instances.get(&group.0).copied().unwrap_or(0)
    }

    /// Number of requests currently in service in `group` at time `now_ms`.
    pub fn outstanding_in(&mut self, group: AccelerationGroupId, now_ms: f64) -> usize {
        let entry = self.outstanding.entry(group.0).or_default();
        entry.retain(|&finish| finish > now_ms);
        entry.len()
    }

    /// Handles one offloading request at simulation time `now_ms`: clamps the
    /// requested group, samples the communication time `T1`, the routing time
    /// `T2` and the cloud execution time `T_cloud`, logs the trace record and
    /// returns the routed result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownGroup`] only if the system has no groups at
    /// all (never for a validated configuration).
    pub fn handle<R: Rng + ?Sized>(
        &mut self,
        request: &OffloadRequest,
        now_ms: f64,
        rng: &mut R,
    ) -> Result<RoutedRequest, CoreError> {
        let group_id = self.groups.clamp(request.group);
        let group = self
            .groups
            .get(group_id)
            .ok_or(CoreError::UnknownGroup {
                group: request.group,
            })?
            .clone();
        let instance_type = group
            .cheapest_instance()
            .ok_or(CoreError::NoInstanceAvailable { group: group_id })?;

        // T1: cellular RTT plus payload transfer both ways.
        let hour = self.config.start_hour_of_day + now_ms / 3_600_000.0;
        let rtt = self.config.network.sample_rtt_ms(hour, rng);
        let t1 = rtt
            + self.transfer.uplink_time_ms(request.payload_bytes)
            + self.transfer.downlink_time_ms(self.config.result_bytes);

        // T2: SDN routing overhead (≈150 ms, Fig. 8a), mildly noisy.
        let t2 = (self.config.routing_overhead_ms * rng.gen_range(0.85..1.15)).max(1.0);

        // T_cloud: execution on the group's servers, with the concurrency
        // spread across the allocated instances plus the background load.
        let instances = self.instances_of(group_id).max(1);
        let queued = self.outstanding_in(group_id, now_ms);
        let concurrency = queued / instances + self.config.background_load + 1;
        let work = request.task.work_units();
        let server = self
            .servers
            .get_mut(&group_id.0)
            .expect("every group has a representative server");
        let t_cloud = server.sample_execution_ms(work, concurrency, rng);

        let response = t1 + t2 + t_cloud;
        self.outstanding
            .entry(group_id.0)
            .or_default()
            .push(now_ms + response);

        let record = TraceRecord {
            timestamp_ms: now_ms + response,
            user: request.user,
            group: group_id,
            battery_level: request.battery_level,
            round_trip_ms: response,
            t1_ms: t1,
            t2_ms: t2,
            t_cloud_ms: t_cloud,
            success: true,
        };
        self.log.append(record.clone());
        self.requests_handled += 1;
        Ok(RoutedRequest {
            record,
            group: group_id,
            instance_type,
            concurrency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use mca_offload::{RequestId, TaskSpec, UserId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn request(group: u8, user: u32) -> OffloadRequest {
        OffloadRequest::new(
            RequestId(u64::from(user)),
            UserId(user),
            AccelerationGroupId(group),
            TaskSpec::paper_static_minimax(),
            90.0,
            0.0,
        )
    }

    fn accelerator() -> SdnAccelerator {
        SdnAccelerator::new(SystemConfig::paper_three_groups().with_background_load(50))
    }

    #[test]
    fn response_decomposes_into_t1_t2_tcloud() {
        let mut sdn = accelerator();
        let mut rng = StdRng::seed_from_u64(1);
        let routed = sdn.handle(&request(1, 1), 0.0, &mut rng).unwrap();
        let r = &routed.record;
        assert!(r.is_consistent(1e-6));
        assert!(r.t1_ms > 0.0 && r.t2_ms > 0.0 && r.t_cloud_ms > 0.0);
        assert_eq!(sdn.log().len(), 1);
        assert_eq!(sdn.requests_handled(), 1);
    }

    #[test]
    fn routing_overhead_is_about_150_ms() {
        let mut sdn = accelerator();
        let mut rng = StdRng::seed_from_u64(2);
        let mut total = 0.0;
        let n = 200;
        for i in 0..n {
            total += sdn
                .handle(&request(1, i), i as f64 * 10_000.0, &mut rng)
                .unwrap()
                .record
                .t2_ms;
        }
        let mean = total / f64::from(n);
        assert!((mean - 150.0).abs() < 15.0, "mean routing {mean} ms");
    }

    #[test]
    fn t1_is_well_under_a_second_on_lte() {
        let mut sdn = accelerator();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..100 {
            let r = sdn
                .handle(&request(2, i), i as f64 * 5_000.0, &mut rng)
                .unwrap()
                .record;
            assert!(r.t1_ms < 1_000.0, "T1 {}", r.t1_ms);
        }
    }

    #[test]
    fn fig7_tcloud_dominates_and_decreases_with_acceleration() {
        let mut sdn = accelerator();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mean_cloud = [0.0f64; 3];
        let samples = 60;
        for level in 1u8..=3 {
            let mut total = 0.0;
            for i in 0..samples {
                // spread requests out so queues stay empty; the background
                // load of 50 users dominates the concurrency
                let t = (u32::from(level) * 10_000 + i) as f64 * 20_000.0;
                let r = sdn.handle(&request(level, i), t, &mut rng).unwrap().record;
                total += r.t_cloud_ms;
                assert!(r.t_cloud_ms > r.t2_ms, "T_cloud must dominate routing");
            }
            mean_cloud[usize::from(level) - 1] = total / f64::from(samples);
        }
        assert!(
            mean_cloud[0] > mean_cloud[1] && mean_cloud[1] > mean_cloud[2],
            "{mean_cloud:?}"
        );
        // Acceleration 1 under a 50-user background load sits in the ≈2–2.5 s
        // band the paper reports (Fig. 7b / Fig. 9b).
        assert!(
            mean_cloud[0] > 1_500.0 && mean_cloud[0] < 3_200.0,
            "{mean_cloud:?}"
        );
    }

    #[test]
    fn out_of_range_group_requests_are_clamped() {
        let mut sdn = accelerator();
        let mut rng = StdRng::seed_from_u64(5);
        let routed = sdn.handle(&request(200, 1), 0.0, &mut rng).unwrap();
        assert_eq!(routed.group, AccelerationGroupId(3));
        let routed_low = sdn.handle(&request(0, 2), 0.0, &mut rng).unwrap();
        assert_eq!(routed_low.group, AccelerationGroupId(1));
    }

    #[test]
    fn more_instances_reduce_effective_concurrency() {
        let mut sdn =
            SdnAccelerator::new(SystemConfig::paper_three_groups().with_background_load(0));
        let mut rng = StdRng::seed_from_u64(6);
        // pile up 40 simultaneous requests on group 1 with a single instance
        for i in 0..40 {
            sdn.handle(&request(1, i), 0.0, &mut rng).unwrap();
        }
        let single_concurrency = sdn
            .handle(&request(1, 99), 1.0, &mut rng)
            .unwrap()
            .concurrency;
        // now give the group 8 instances and admit another request
        sdn.apply_allocation(&[(AccelerationGroupId(1), 8)]);
        let spread_concurrency = sdn
            .handle(&request(1, 100), 2.0, &mut rng)
            .unwrap()
            .concurrency;
        assert!(
            spread_concurrency < single_concurrency,
            "allocation must spread the load: {spread_concurrency} vs {single_concurrency}"
        );
    }

    #[test]
    fn outstanding_requests_expire_over_time() {
        let mut sdn = accelerator();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..10 {
            sdn.handle(&request(1, i), 0.0, &mut rng).unwrap();
        }
        assert!(sdn.outstanding_in(AccelerationGroupId(1), 1.0) > 0);
        assert_eq!(sdn.outstanding_in(AccelerationGroupId(1), 1e9), 0);
    }

    #[test]
    fn instances_never_drop_to_zero() {
        let mut sdn = accelerator();
        sdn.apply_allocation(&[(AccelerationGroupId(1), 0)]);
        assert_eq!(sdn.instances_of(AccelerationGroupId(1)), 1);
    }
}
