//! The billing backends behind the bill stage of the
//! score→learn→predict→allocate→**bill** cycle.
//!
//! The paper prices an allocation arithmetically: hourly rate × instance
//! count, prorated to the provisioning slot (§IV-C). That stayed hard-wired
//! into [`crate::System`] and the fleet's tenant shards long after every
//! other stage of the loop grew a policy seam. This module splits the bill
//! step behind the [`BillingBackend`] trait with two implementations:
//!
//! * [`ArithmeticBilling`] — today's path, the unchanged default: apply the
//!   allocation to the instance pool and charge the prorated hourly cost.
//! * [`DatacenterBilling`] — the same pool transaction and *bit-identical*
//!   cost, but the allocation additionally lands on a simulated
//!   [`Datacenter`](mca_cloudsim::Datacenter): instances are placed onto
//!   finite-capacity hosts under a deterministic policy, the slot's actual
//!   arrivals are scored against the capacity the *previous* forecast
//!   provisioned (the SLA signal), and host power is metered over the slot
//!   (the energy signal).
//!
//! The settlement result ([`SlotSettlement`]) carries cost plus the
//! SLA/energy/placement counters; callers fold it into their metrics. The
//! cost field is computed with the exact expression the arithmetic path
//! always used (`hourly_cost × slot_ms / 3 600 000`), so enabling the
//! datacenter backend cannot move a single bit of any cost, forecast or
//! prediction metric — the determinism suite in `mca-fleet` asserts this.

use crate::allocator::Allocation;
use mca_cloudsim::{
    Datacenter, DatacenterConfig, GroupDemand, InstancePool, PlacementError, SlaAssessment,
};
use mca_offload::AccelerationGroupId;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};

/// The outcome of settling one provisioning slot against a billing backend.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotSettlement {
    /// Cost of the slot, USD — `hourly_cost × slot_length_ms / 3 600 000`,
    /// identical under every backend.
    pub cost: f64,
    /// Whether the pool accepted the allocation (the account cap can refuse
    /// it; the allocator normally never exceeds the cap it was built with).
    pub pool_applied: bool,
    /// Group-slots whose actual arrivals violated the SLA of the standing
    /// allocation (zero under [`ArithmeticBilling`]).
    pub sla_violations: usize,
    /// Users beyond the admission limit of their serving instances.
    pub sla_dropped_users: usize,
    /// Modeled worst-response latency summed over scored groups, ms.
    pub sla_latency_ms: f64,
    /// Energy the standing placement drew over the slot, watt-hours.
    pub energy_wh: f64,
    /// Instances placed onto hosts for the next slot.
    pub placements: usize,
    /// Placement transactions that failed (host exhaustion); the datacenter
    /// is cleared and the error retained for [`BillingEngine::placement_error`].
    pub placement_failures: usize,
}

/// Datacenter usage accumulated over a whole run — the rollup of every
/// slot's [`SlotSettlement`], reported by [`crate::SystemReport`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DatacenterUsage {
    /// Total SLA-violated group-slots.
    pub sla_violations: usize,
    /// Total users dropped beyond admission limits.
    pub sla_dropped_users: usize,
    /// Total modeled worst-response latency, ms.
    pub sla_latency_ms: f64,
    /// Total energy metered, watt-hours.
    pub energy_wh: f64,
    /// Total instance placements.
    pub placements: usize,
    /// Total failed placement transactions.
    pub placement_failures: usize,
}

impl DatacenterUsage {
    /// Folds one slot's settlement into the rollup.
    pub fn absorb(&mut self, settlement: &SlotSettlement) {
        self.sla_violations += settlement.sla_violations;
        self.sla_dropped_users += settlement.sla_dropped_users;
        self.sla_latency_ms += settlement.sla_latency_ms;
        self.energy_wh += settlement.energy_wh;
        self.placements += settlement.placements;
        self.placement_failures += settlement.placement_failures;
    }
}

/// A billing backend: how the bill stage turns an allocation into money —
/// and, depending on the backend, SLA and energy signals.
///
/// `observed` is the slot's actual per-group demand (the arrivals the slot
/// really brought), which the datacenter backend scores against the capacity
/// the *previous* settle provisioned. Backends must be deterministic pure
/// state machines: same call sequence, same results, on any thread.
pub trait BillingBackend: std::fmt::Debug {
    /// Settles one slot: applies `allocation` to `pool` at `now_ms` and
    /// returns the slot's cost and accounting signals.
    fn settle(
        &mut self,
        pool: &mut InstancePool,
        allocation: &Allocation,
        observed: &[(AccelerationGroupId, usize)],
        slot_length_ms: f64,
        now_ms: f64,
    ) -> SlotSettlement;

    /// Clears all standing state (tenant decommission / end of run).
    fn reset(&mut self);
}

/// The paper's arithmetic billing: pool transaction plus prorated hourly
/// cost, nothing else. The default backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ArithmeticBilling;

impl BillingBackend for ArithmeticBilling {
    fn settle(
        &mut self,
        pool: &mut InstancePool,
        allocation: &Allocation,
        _observed: &[(AccelerationGroupId, usize)],
        slot_length_ms: f64,
        now_ms: f64,
    ) -> SlotSettlement {
        let pool_applied = pool
            .apply_allocation(&allocation.pool_allocation(), now_ms)
            .is_ok();
        SlotSettlement {
            cost: allocation.hourly_cost * slot_length_ms / 3_600_000.0,
            pool_applied,
            ..SlotSettlement::default()
        }
    }

    fn reset(&mut self) {}
}

/// Billing as a transaction against a simulated datacenter: the arithmetic
/// path's pool transaction and bit-identical cost, plus placement onto
/// finite hosts, SLA scoring of actual arrivals against the standing
/// capacity, and per-slot energy metering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatacenterBilling {
    datacenter: Datacenter,
    /// Capacity per group the standing allocation provisioned — what the
    /// next slot's arrivals are scored against (`None` until the first
    /// successful settle, or after a placement failure).
    standing_capacity: Option<Vec<(AccelerationGroupId, usize)>>,
    /// The most recent placement failure, if the standing transaction
    /// failed.
    last_error: Option<PlacementError>,
}

impl DatacenterBilling {
    /// Builds the backend over an empty datacenter.
    pub fn new(config: &DatacenterConfig) -> Self {
        Self {
            datacenter: Datacenter::new(config),
            standing_capacity: None,
            last_error: None,
        }
    }

    /// The simulated datacenter (standing placement included).
    pub fn datacenter(&self) -> &Datacenter {
        &self.datacenter
    }

    /// The most recent placement failure, if the standing placement
    /// transaction failed.
    pub fn last_error(&self) -> Option<&PlacementError> {
        self.last_error.as_ref()
    }

    fn assess(&self, observed: &[(AccelerationGroupId, usize)]) -> SlaAssessment {
        match &self.standing_capacity {
            None => SlaAssessment::default(),
            Some(capacity) => {
                let demands: Vec<GroupDemand> = observed
                    .iter()
                    .map(|&(group, demand)| GroupDemand {
                        group,
                        demand,
                        capacity: capacity
                            .iter()
                            .find(|(g, _)| *g == group)
                            .map(|(_, c)| *c)
                            .unwrap_or(0),
                    })
                    .collect();
                self.datacenter.assess(&demands)
            }
        }
    }
}

impl BillingBackend for DatacenterBilling {
    fn settle(
        &mut self,
        pool: &mut InstancePool,
        allocation: &Allocation,
        observed: &[(AccelerationGroupId, usize)],
        slot_length_ms: f64,
        now_ms: f64,
    ) -> SlotSettlement {
        let mut settlement = SlotSettlement::default();
        // 1. score the slot that just elapsed against the standing placement
        let sla = self.assess(observed);
        settlement.sla_violations = sla.violations;
        settlement.sla_dropped_users = sla.dropped_users;
        settlement.sla_latency_ms = sla.latency_ms;
        // 2. meter the energy that placement drew over the slot
        settlement.energy_wh = self.datacenter.energy_wh(slot_length_ms / 3_600_000.0);
        // 3. the pool transaction the arithmetic path performs (account cap
        //    enforced atomically inside)
        settlement.pool_applied = pool
            .apply_allocation(&allocation.pool_allocation(), now_ms)
            .is_ok();
        // 4. place the new allocation for the next slot — transactionally
        match self.datacenter.place_allocation(&allocation.per_group) {
            Ok(placed) => {
                settlement.placements = placed;
                self.standing_capacity = Some(allocation.capacity_per_group.clone());
                self.last_error = None;
            }
            Err(error) => {
                settlement.placement_failures = 1;
                self.datacenter.clear();
                self.standing_capacity = None;
                self.last_error = Some(error);
            }
        }
        // 5. the cost, with the exact arithmetic-path expression — enabling
        //    the datacenter must not move a bit of it
        settlement.cost = allocation.hourly_cost * slot_length_ms / 3_600_000.0;
        settlement
    }

    fn reset(&mut self) {
        self.datacenter.clear();
        self.standing_capacity = None;
        self.last_error = None;
    }
}

/// The clonable, serializable dispatch over the built-in backends — what
/// [`crate::SystemConfig::build_billing`] returns and what a fleet tenant
/// shard stores (shards are `Clone`, so a `Box<dyn BillingBackend>` would
/// not do; the enum gives static dispatch on the hot path as a bonus).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BillingEngine {
    /// Arithmetic billing — the default.
    Arithmetic(ArithmeticBilling),
    /// Billing against a simulated datacenter.
    Datacenter(DatacenterBilling),
}

impl BillingEngine {
    /// Whether this backend scores observed demand (callers can skip
    /// collecting per-group demand for backends that ignore it).
    pub fn observes_demand(&self) -> bool {
        matches!(self, BillingEngine::Datacenter(_))
    }

    /// The simulated datacenter, when this engine bills against one.
    pub fn datacenter(&self) -> Option<&Datacenter> {
        match self {
            BillingEngine::Arithmetic(_) => None,
            BillingEngine::Datacenter(backend) => Some(backend.datacenter()),
        }
    }

    /// The standing placement failure, when the datacenter backend's most
    /// recent placement transaction failed.
    pub fn placement_error(&self) -> Option<&PlacementError> {
        match self {
            BillingEngine::Arithmetic(_) => None,
            BillingEngine::Datacenter(backend) => backend.last_error(),
        }
    }
}

impl Default for BillingEngine {
    fn default() -> Self {
        BillingEngine::Arithmetic(ArithmeticBilling)
    }
}

impl BillingBackend for BillingEngine {
    fn settle(
        &mut self,
        pool: &mut InstancePool,
        allocation: &Allocation,
        observed: &[(AccelerationGroupId, usize)],
        slot_length_ms: f64,
        now_ms: f64,
    ) -> SlotSettlement {
        match self {
            BillingEngine::Arithmetic(backend) => {
                backend.settle(pool, allocation, observed, slot_length_ms, now_ms)
            }
            BillingEngine::Datacenter(backend) => {
                backend.settle(pool, allocation, observed, slot_length_ms, now_ms)
            }
        }
    }

    fn reset(&mut self) {
        match self {
            BillingEngine::Arithmetic(backend) => backend.reset(),
            BillingEngine::Datacenter(backend) => backend.reset(),
        }
    }
}

impl Snapshot for DatacenterUsage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.sla_violations.encode(out);
        self.sla_dropped_users.encode(out);
        self.sla_latency_ms.encode(out);
        self.energy_wh.encode(out);
        self.placements.encode(out);
        self.placement_failures.encode(out);
    }
}

impl Restore for DatacenterUsage {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            sla_violations: usize::decode(cur)?,
            sla_dropped_users: usize::decode(cur)?,
            sla_latency_ms: f64::decode(cur)?,
            energy_wh: f64::decode(cur)?,
            placements: usize::decode(cur)?,
            placement_failures: usize::decode(cur)?,
        })
    }
}

impl Snapshot for DatacenterBilling {
    fn encode(&self, out: &mut Vec<u8>) {
        self.datacenter.encode(out);
        self.standing_capacity.encode(out);
        self.last_error.encode(out);
    }
}

impl Restore for DatacenterBilling {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            datacenter: Datacenter::decode(cur)?,
            standing_capacity: Option::<Vec<(AccelerationGroupId, usize)>>::decode(cur)?,
            last_error: Option::<PlacementError>::decode(cur)?,
        })
    }
}

impl Snapshot for BillingEngine {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BillingEngine::Arithmetic(ArithmeticBilling) => 0u8.encode(out),
            BillingEngine::Datacenter(backend) => {
                1u8.encode(out);
                backend.encode(out);
            }
        }
    }
}

impl Restore for BillingEngine {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        match u8::decode(cur)? {
            0 => Ok(BillingEngine::Arithmetic(ArithmeticBilling)),
            1 => Ok(BillingEngine::Datacenter(DatacenterBilling::decode(cur)?)),
            _ => Err(SnapshotError::Malformed {
                context: "billing engine tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AccelerationGroups;
    use crate::allocator::ResourceAllocator;
    use crate::predictor::WorkloadForecast;
    use mca_cloudsim::PlacementKind;

    fn forecast(per_group: &[(u8, usize)]) -> WorkloadForecast {
        WorkloadForecast {
            per_group: per_group
                .iter()
                .map(|&(g, n)| (AccelerationGroupId(g), n))
                .collect(),
            matched_slot: None,
        }
    }

    fn allocation_for(per_group: &[(u8, usize)]) -> Allocation {
        ResourceAllocator::new(AccelerationGroups::paper_three_groups())
            .allocate(&forecast(per_group))
            .expect("small forecasts fit the cap")
    }

    #[test]
    fn both_backends_charge_the_same_bits_and_apply_the_pool() {
        let allocation = allocation_for(&[(1, 10), (2, 5), (3, 2)]);
        let observed = [(AccelerationGroupId(1), 10usize)];
        let mut arithmetic_pool = InstancePool::new();
        let mut datacenter_pool = InstancePool::new();
        let mut arithmetic = BillingEngine::default();
        let mut datacenter =
            BillingEngine::Datacenter(DatacenterBilling::new(&DatacenterConfig::paper_default()));

        let a = arithmetic.settle(&mut arithmetic_pool, &allocation, &observed, 60_000.0, 0.0);
        let d = datacenter.settle(&mut datacenter_pool, &allocation, &observed, 60_000.0, 0.0);
        assert_eq!(a.cost.to_bits(), d.cost.to_bits(), "cost must be identical");
        assert!(a.pool_applied && d.pool_applied);
        assert_eq!(
            arithmetic_pool.count_by_type(),
            datacenter_pool.count_by_type()
        );
        // the arithmetic backend carries no datacenter signals
        assert_eq!((a.sla_violations, a.placements, a.energy_wh), (0, 0, 0.0));
        // the datacenter backend placed every instance
        assert_eq!(d.placements, allocation.total_instances());
        assert_eq!(d.placement_failures, 0);
        assert!(datacenter.datacenter().unwrap().active_hosts() > 0);
    }

    #[test]
    fn sla_scores_the_previous_standing_allocation() {
        let allocation = allocation_for(&[(1, 10)]);
        let mut pool = InstancePool::new();
        let mut backend = DatacenterBilling::new(&DatacenterConfig::paper_default());
        // first settle: nothing standing yet, so nothing to score — but
        // energy of the empty datacenter is zero too
        let first = backend.settle(
            &mut pool,
            &allocation,
            &[(AccelerationGroupId(1), 50)],
            60_000.0,
            0.0,
        );
        assert_eq!(first.sla_violations, 0);
        assert_eq!(first.energy_wh, 0.0);
        // second settle: the observed demand is scored against the capacity
        // the first settle provisioned (10 users forecast), and the standing
        // placement drew energy over the slot
        let second = backend.settle(
            &mut pool,
            &allocation,
            &[(AccelerationGroupId(1), 500)],
            60_000.0,
            60_000.0,
        );
        assert!(second.sla_violations >= 1, "500 actual vs 10 forecast");
        assert!(second.energy_wh > 0.0);
        // within-capacity demand scores clean
        let third = backend.settle(
            &mut pool,
            &allocation,
            &[(AccelerationGroupId(1), 1)],
            60_000.0,
            120_000.0,
        );
        assert_eq!(third.sla_violations, 0);
    }

    #[test]
    fn placement_failure_is_counted_and_clears_standing_state() {
        let allocation = allocation_for(&[(1, 5), (2, 5), (3, 5)]);
        let mut pool = InstancePool::new();
        // a datacenter far too small for the m4.4xlarge group
        let config = DatacenterConfig::paper_default()
            .with_hosts(1, 2, 4.0)
            .with_placement(PlacementKind::BestFit);
        let mut engine = BillingEngine::Datacenter(DatacenterBilling::new(&config));
        let settlement = engine.settle(&mut pool, &allocation, &[], 60_000.0, 0.0);
        assert_eq!(settlement.placement_failures, 1);
        assert_eq!(settlement.placements, 0);
        assert!(settlement.pool_applied, "the pool transaction still lands");
        assert!(engine.placement_error().is_some());
        assert_eq!(engine.datacenter().unwrap().active_hosts(), 0);
        // cost is still the arithmetic prorate — the bill does not vanish
        assert!(settlement.cost > 0.0);
        engine.reset();
        assert!(engine.placement_error().is_none());
    }

    #[test]
    fn usage_rollup_absorbs_settlements() {
        let mut usage = DatacenterUsage::default();
        usage.absorb(&SlotSettlement {
            cost: 1.0,
            pool_applied: true,
            sla_violations: 2,
            sla_dropped_users: 3,
            sla_latency_ms: 40.0,
            energy_wh: 5.0,
            placements: 6,
            placement_failures: 1,
        });
        usage.absorb(&SlotSettlement::default());
        assert_eq!(usage.sla_violations, 2);
        assert_eq!(usage.sla_dropped_users, 3);
        assert_eq!(usage.sla_latency_ms, 40.0);
        assert_eq!(usage.energy_wh, 5.0);
        assert_eq!(usage.placements, 6);
        assert_eq!(usage.placement_failures, 1);
    }
}
