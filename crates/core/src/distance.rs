//! The distance metric of §IV-B-1.
//!
//! Given two time slots `t_x` and `t_z`, the per-group distance `δ` is zero
//! when the group has exactly the same assigned users in both slots and an
//! edit distance `D > 0` otherwise; the slot distance `Δ` is the sum of the
//! per-group distances. The paper computes `D` with the R `RecordLinkage`
//! package (Levenshtein edit distance); for sets of user ids the natural edit
//! distance is the number of insertions plus deletions that turn one user set
//! into the other, i.e. the size of the symmetric difference. Both are
//! provided, together with the Marzal–Vidal normalized edit distance used as
//! an ablation.
//!
//! # Performance
//!
//! This module sits in the hottest loop of the closed-loop system: the
//! predictor evaluates a slot distance against every historical slot, every
//! provisioning interval. [`TimeSlot::users_in`] returns a borrowed sorted
//! slice, so [`group_distance`] and [`slot_distance`] run as linear merges
//! with **zero heap allocations**. Every distance also has a `*_bounded`
//! variant that abandons the computation as soon as the accumulating
//! distance exceeds a caller-provided cap — the nearest-neighbour search
//! passes its best-so-far so hopeless candidates exit early — and a
//! `*_naive` reference that keeps the original set/full-matrix formulation
//! for property testing and benchmarking.

use crate::timeslot::TimeSlot;
use mca_offload::{AccelerationGroupId, UserId};
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Edit distance between the user sets of one acceleration group in two
/// slots: the minimum number of single-user insertions and deletions that
/// turn one set into the other (`|A \ B| + |B \ A|`, the symmetric
/// difference). Returns 0 exactly when the sets are equal, matching the
/// paper's definition of `δ`.
///
/// Both inputs must be sorted and deduplicated, which
/// [`TimeSlot::users_in`] guarantees; the distance is then a single linear
/// merge with no allocation.
pub fn group_distance(a: &[UserId], b: &[UserId]) -> usize {
    let (mut i, mut j) = (0, 0);
    let mut distance = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                distance += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                distance += 1;
                j += 1;
            }
        }
    }
    distance + (a.len() - i) + (b.len() - j)
}

/// [`group_distance`] with an early exit: returns `None` as soon as the
/// distance is known to exceed `cap`.
pub fn group_distance_bounded(a: &[UserId], b: &[UserId], cap: usize) -> Option<usize> {
    // each side's surplus length is an unavoidable contribution
    if a.len().abs_diff(b.len()) > cap {
        return None;
    }
    let (mut i, mut j) = (0, 0);
    let mut distance = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                distance += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                distance += 1;
                j += 1;
            }
        }
        if distance > cap {
            return None;
        }
    }
    distance += (a.len() - i) + (b.len() - j);
    (distance <= cap).then_some(distance)
}

/// Reference implementation of [`group_distance`] through
/// `BTreeSet::symmetric_difference`, as the seed implementation computed it
/// (including its per-call set construction). Kept for property tests and
/// as the benchmark baseline.
pub fn group_distance_naive(a: &[UserId], b: &[UserId]) -> usize {
    let a: BTreeSet<UserId> = a.iter().copied().collect();
    let b: BTreeSet<UserId> = b.iter().copied().collect();
    a.symmetric_difference(&b).count()
}

/// The slot distance `Δ(t_x, t_z)`: the sum of per-group distances `δ` over
/// the acceleration groups in `groups`. Allocation-free.
pub fn slot_distance(a: &TimeSlot, b: &TimeSlot, groups: &[AccelerationGroupId]) -> usize {
    groups
        .iter()
        .map(|g| group_distance(a.users_in(*g), b.users_in(*g)))
        .sum()
}

/// [`slot_distance`] with an early exit once the accumulated distance
/// exceeds `cap`.
pub fn slot_distance_bounded(
    a: &TimeSlot,
    b: &TimeSlot,
    groups: &[AccelerationGroupId],
    cap: usize,
) -> Option<usize> {
    let mut total = 0;
    for g in groups {
        total += group_distance_bounded(a.users_in(*g), b.users_in(*g), cap - total)?;
    }
    Some(total)
}

/// Reference implementation of [`slot_distance`] over [`group_distance_naive`].
pub fn slot_distance_naive(a: &TimeSlot, b: &TimeSlot, groups: &[AccelerationGroupId]) -> usize {
    groups
        .iter()
        .map(|g| group_distance_naive(a.users_in(*g), b.users_in(*g)))
        .sum()
}

/// A coarser distance that only compares per-group user *counts* (ignoring
/// identities). Used as an ablation of the distance metric.
///
/// Because every per-group edit distance — set edit or Levenshtein — is at
/// least the difference of the two user counts, this is also a lower bound
/// on [`slot_distance`] and [`slot_levenshtein_distance`]; the predictor's
/// pruned nearest-neighbour search exploits exactly that.
pub fn count_distance(a: &TimeSlot, b: &TimeSlot, groups: &[AccelerationGroupId]) -> usize {
    groups
        .iter()
        .map(|g| a.load_of(*g).abs_diff(b.load_of(*g)))
        .sum()
}

/// Reusable buffers for the banded and bit-parallel Levenshtein
/// computations, so the nearest-neighbour search allocates once per query
/// instead of once per candidate.
#[derive(Debug, Default, Clone)]
pub struct DistanceScratch {
    prev: Vec<usize>,
    cur: Vec<usize>,
    /// `(symbol, position)` pairs of the Myers pattern, sorted by symbol.
    peq_symbols: Vec<(u32, u32)>,
    /// Per-block equality mask of the current text symbol (Myers `Peq`).
    eq_words: Vec<u64>,
    /// Myers vertical-positive delta words, one per 64-row block.
    vp: Vec<u64>,
    /// Myers vertical-negative delta words, one per 64-row block.
    vn: Vec<u64>,
    grows: usize,
}

impl DistanceScratch {
    /// Fresh, empty buffers (they grow to the longest sequence compared).
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times any buffer had to grow beyond its capacity. Once the
    /// scratch has seen the longest inputs of a scan this stays constant —
    /// the per-candidate allocation-freedom the pruned scans rely on, and
    /// what the regression tests assert.
    pub fn grows(&self) -> usize {
        self.grows
    }
}

/// Classic Levenshtein edit distance between two sequences (the paper's
/// `RecordLinkage` primitive operates on strings; user-id sequences sorted by
/// id are the equivalent here). This is the full-matrix reference; the
/// nearest-neighbour search uses [`levenshtein_bounded`] instead.
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            current[j + 1] = (prev[j + 1] + 1).min(current[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Banded Levenshtein with early exit: returns `Some(d)` when the edit
/// distance `d` is at most `cap`, `None` otherwise.
///
/// Only the diagonal band of width `2·cap + 1` is evaluated (cells outside
/// it are provably further than `cap`), and the computation abandons a
/// candidate as soon as a whole row exceeds the cap — the "best-so-far"
/// early exit of the pruned nearest-neighbour search.
pub fn levenshtein_bounded<T: PartialEq>(a: &[T], b: &[T], cap: usize) -> Option<usize> {
    levenshtein_bounded_with(a, b, cap, &mut DistanceScratch::new())
}

/// [`levenshtein_bounded`] against caller-owned scratch buffers (no
/// allocation once the scratch has grown to the sequence length).
pub fn levenshtein_bounded_with<T: PartialEq>(
    a: &[T],
    b: &[T],
    cap: usize,
    scratch: &mut DistanceScratch,
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > cap {
        return None;
    }
    if n == 0 || m == 0 {
        // covered by the length bound above: the distance is max(n, m) <= cap
        return Some(n.max(m));
    }
    // the distance never exceeds the longer length, so a larger cap adds
    // nothing (and would overflow the band arithmetic)
    let cap = cap.min(n.max(m));
    const UNREACHED: usize = usize::MAX / 2;
    if scratch.prev.capacity() <= m || scratch.cur.capacity() <= m {
        scratch.grows += 1;
    }
    let prev = &mut scratch.prev;
    let cur = &mut scratch.cur;
    prev.clear();
    prev.resize(m + 1, UNREACHED);
    cur.clear();
    cur.resize(m + 1, UNREACHED);
    #[allow(clippy::needless_range_loop)]
    for j in 0..=m.min(cap) {
        prev[j] = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(cap);
        let hi = (i + cap).min(m);
        let mut row_min = UNREACHED;
        for j in lo..=hi {
            let value = if j == 0 {
                i // reachable only while i <= cap, which lo == 0 implies
            } else {
                let delete = prev[j].saturating_add(1);
                let insert = if j > lo { cur[j - 1] + 1 } else { UNREACHED };
                let substitute = prev[j - 1].saturating_add(usize::from(a[i - 1] != b[j - 1]));
                delete.min(insert).min(substitute)
            };
            cur[j] = value;
            row_min = row_min.min(value);
        }
        if row_min > cap {
            return None;
        }
        // the next row's band extends one cell right; that cell still holds
        // a value from two rows ago and must read as unreached
        if hi < m {
            cur[hi + 1] = UNREACHED;
        }
        std::mem::swap(prev, cur);
    }
    let distance = prev[m];
    (distance <= cap).then_some(distance)
}

/// Myers' bit-parallel Levenshtein distance between two user-id sequences
/// (Myers 1999, in Hyyrö's blocked formulation): the pattern — the shorter
/// sequence — is packed into ⌈m/64⌉ vertical-delta words, and each text
/// symbol advances all m dynamic-programming cells of its column with a
/// handful of word operations per block, so an unpruned candidate costs
/// word-parallel rather than cell-by-cell work. Exact for any inputs,
/// including duplicate-heavy and unsorted sequences.
pub fn levenshtein_myers(a: &[UserId], b: &[UserId]) -> usize {
    levenshtein_myers_bounded(a, b, a.len().max(b.len()))
        .expect("distance never exceeds max length")
}

/// [`levenshtein_myers`] with an early exit once the distance provably
/// exceeds `cap` (allocating fresh scratch; the scans reuse one via
/// [`levenshtein_myers_bounded_with`]).
pub fn levenshtein_myers_bounded(a: &[UserId], b: &[UserId], cap: usize) -> Option<usize> {
    levenshtein_myers_bounded_with(a, b, cap, &mut DistanceScratch::new())
}

/// [`levenshtein_myers`] with a cap and caller-owned scratch: the score
/// after `j` text symbols is `D(j, m)`, and each further symbol lowers it by
/// at most one, so the candidate is abandoned as soon as
/// `score - remaining > cap`.
pub fn levenshtein_myers_bounded_with(
    a: &[UserId],
    b: &[UserId],
    cap: usize,
    scratch: &mut DistanceScratch,
) -> Option<usize> {
    if a.len().abs_diff(b.len()) > cap {
        return None;
    }
    if a.is_empty() || b.is_empty() {
        // covered by the length bound above: the distance is max(n, m) <= cap
        return Some(a.len().max(b.len()));
    }
    // the shorter sequence becomes the bit-packed pattern: fewest blocks
    let (text, pattern) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let (n, m) = (text.len(), pattern.len());
    let cap = cap.min(n); // the distance never exceeds the longer length
    let blocks = m.div_ceil(64);
    let DistanceScratch {
        peq_symbols,
        eq_words,
        vp,
        vn,
        grows,
        ..
    } = scratch;
    if peq_symbols.capacity() < m
        || eq_words.capacity() < blocks
        || vp.capacity() < blocks
        || vn.capacity() < blocks
    {
        *grows += 1;
    }
    // Peq table: every pattern symbol with its row, sorted by symbol, so one
    // binary search finds a text symbol's occurrence run. The sorted runs
    // `TimeSlot::users_in` hands out skip the sort outright.
    peq_symbols.clear();
    peq_symbols.extend(pattern.iter().enumerate().map(|(j, u)| (u.0, j as u32)));
    if !pattern.windows(2).all(|w| w[0] <= w[1]) {
        peq_symbols.sort_unstable();
    }
    eq_words.clear();
    eq_words.resize(blocks, 0);
    vp.clear();
    vp.resize(blocks, !0u64);
    vn.clear();
    vn.resize(blocks, 0);
    let last_bit = 1u64 << ((m - 1) % 64);
    let mut score = m;
    for (j, tj) in text.iter().enumerate() {
        let run_start = peq_symbols.partition_point(|&(s, _)| s < tj.0);
        for &(_, row) in peq_symbols[run_start..]
            .iter()
            .take_while(|&&(s, _)| s == tj.0)
        {
            eq_words[(row / 64) as usize] |= 1u64 << (row % 64);
        }
        // carry chain bottom-up: each block's horizontal delta out of its
        // top row feeds the next block; the boundary row D(j, 0) = j always
        // increments, so block 0 sees +1
        let mut hin: i32 = 1;
        for (k, (pv_k, mv_k)) in vp.iter_mut().zip(vn.iter_mut()).enumerate() {
            let mut eq = eq_words[k];
            let (pv, mv) = (*pv_k, *mv_k);
            let xv = eq | mv;
            if hin < 0 {
                eq |= 1;
            }
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let mut ph = mv | !(xh | pv);
            let mut mh = pv & xh;
            let top = if k + 1 == blocks {
                last_bit
            } else {
                1u64 << 63
            };
            let hout = i32::from(ph & top != 0) - i32::from(mh & top != 0);
            ph <<= 1;
            mh <<= 1;
            match hin.cmp(&0) {
                std::cmp::Ordering::Greater => ph |= 1,
                std::cmp::Ordering::Less => mh |= 1,
                std::cmp::Ordering::Equal => {}
            }
            *pv_k = mh | !(xv | ph);
            *mv_k = ph & xv;
            hin = hout;
        }
        score = score.wrapping_add_signed(hin as isize);
        for &(_, row) in peq_symbols[run_start..]
            .iter()
            .take_while(|&&(s, _)| s == tj.0)
        {
            eq_words[(row / 64) as usize] = 0;
        }
        // each remaining text symbol lowers the score by at most one
        let remaining = n - j - 1;
        if score > cap.saturating_add(remaining) {
            return None;
        }
    }
    (score <= cap).then_some(score)
}

/// Capped Levenshtein between two user-id runs, dispatching between the
/// banded scalar computation ([`levenshtein_bounded_with`]) and the Myers
/// bit-vector kernel: the band costs ~`min(2·cap+1, m)` cells per text
/// symbol, the bit-parallel kernel ~`⌈m/64⌉` words, so Myers wins exactly
/// when the cap is loose relative to the pattern's block count. Both are
/// exact, so the dispatch is invisible in the result.
pub fn id_levenshtein_bounded_with(
    a: &[UserId],
    b: &[UserId],
    cap: usize,
    scratch: &mut DistanceScratch,
) -> Option<usize> {
    let (n, m) = (a.len().max(b.len()), a.len().min(b.len()));
    let blocks = m.div_ceil(64);
    let band = (2 * cap.min(n)).saturating_add(1).min(m + 1);
    if m >= 32 && blocks * 4 < band {
        levenshtein_myers_bounded_with(a, b, cap, scratch)
    } else {
        levenshtein_bounded_with(a, b, cap, scratch)
    }
}

/// Marzal–Vidal normalized edit distance between two sequences: the edit
/// distance divided by the length of the longer sequence, in `[0, 1]`.
/// (The exact Marzal–Vidal definition normalizes over editing paths; the
/// length normalization is the standard practical approximation and
/// preserves the `[0, 1]` range and the identity-of-indiscernibles
/// property.)
pub fn normalized_levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / longest as f64
}

/// Slot distance computed with Levenshtein over the sorted user-id sequences
/// of each group (an ablation variant closest to the paper's string-based
/// implementation).
pub fn slot_levenshtein_distance(
    a: &TimeSlot,
    b: &TimeSlot,
    groups: &[AccelerationGroupId],
) -> usize {
    groups
        .iter()
        .map(|g| levenshtein(a.users_in(*g), b.users_in(*g)))
        .sum()
}

/// [`slot_levenshtein_distance`] with early exit against a cap, taking the
/// banded-or-bit-parallel dispatch of [`id_levenshtein_bounded_with`] per
/// group.
pub fn slot_levenshtein_distance_bounded(
    a: &TimeSlot,
    b: &TimeSlot,
    groups: &[AccelerationGroupId],
    cap: usize,
    scratch: &mut DistanceScratch,
) -> Option<usize> {
    let mut total = 0;
    for g in groups {
        total += id_levenshtein_bounded_with(a.users_in(*g), b.users_in(*g), cap - total, scratch)?;
    }
    Some(total)
}

/// One acceleration group's user run as a word-aligned u64 bitset: bit
/// `id % 64` of word `id / 64 - first_word` is set exactly for the assigned
/// user ids. Because both sides align words to absolute `id / 64` positions,
/// the symmetric difference — [`group_distance`] — is a straight
/// XOR-popcount over the overlapping words with no bit shifting.
///
/// Construction refuses runs whose id span is sparse relative to their
/// population (the words would dwarf the run itself); callers fall back to
/// the linear merge, so the guard never affects results. The metric index
/// caches one bitset per retained slot and group for the set-edit distance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupBitset {
    first_word: u32,
    words: Vec<u64>,
}

impl GroupBitset {
    /// Densest span allowed: at most `max(16, len)` words for `len` ids,
    /// i.e. on average at least one assigned id per 64-id word.
    const MAX_WORDS_FACTOR: usize = 1;

    /// Packs a sorted, deduplicated user run ([`TimeSlot::users_in`]'s
    /// guarantee) into a bitset, or `None` when the id span is too sparse
    /// for the packing to pay off.
    pub fn from_run(users: &[UserId]) -> Option<Self> {
        let (Some(first), Some(last)) = (users.first(), users.last()) else {
            return Some(Self::default());
        };
        let first_word = first.0 / 64;
        let span = (last.0 / 64 - first_word) as usize + 1;
        if span > users.len().saturating_mul(Self::MAX_WORDS_FACTOR).max(16) {
            return None;
        }
        let mut words = vec![0u64; span];
        for u in users {
            words[(u.0 / 64 - first_word) as usize] |= 1u64 << (u.0 % 64);
        }
        Some(Self { first_word, words })
    }

    /// Number of assigned ids in the bitset.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Half-open absolute word range `[first_word, first_word + len)`.
    fn word_range(&self) -> (usize, usize) {
        (
            self.first_word as usize,
            self.first_word as usize + self.words.len(),
        )
    }
}

impl Snapshot for GroupBitset {
    fn encode(&self, out: &mut Vec<u8>) {
        self.first_word.encode(out);
        self.words.encode(out);
    }
}

impl Restore for GroupBitset {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            first_word: u32::decode(cur)?,
            words: Vec::<u64>::decode(cur)?,
        })
    }
}

/// [`group_distance`] over two packed runs: the popcount of the XOR of the
/// aligned words. Exact — the bitsets encode the full sets.
pub fn bitset_group_distance(a: &GroupBitset, b: &GroupBitset) -> usize {
    bitset_group_distance_bounded(a, b, usize::MAX).expect("an uncapped distance always evaluates")
}

/// [`bitset_group_distance`] with an early exit once the accumulated
/// popcount exceeds `cap`.
pub fn bitset_group_distance_bounded(
    a: &GroupBitset,
    b: &GroupBitset,
    cap: usize,
) -> Option<usize> {
    if a.words.is_empty() || b.words.is_empty() {
        let distance = a.count() + b.count(); // one of the two is zero
        return (distance <= cap).then_some(distance);
    }
    let (a_lo, a_hi) = a.word_range();
    let (b_lo, b_hi) = b.word_range();
    let mut distance = 0usize;
    // words covered by only one side contribute their own popcount; the
    // overlap contributes the popcount of the XOR
    let lo = a_lo.max(b_lo); // >= both starts
    let hi = a_hi.min(b_hi);
    for w in &a.words[..lo.min(a_hi) - a_lo] {
        distance += w.count_ones() as usize;
    }
    for w in &b.words[..lo.min(b_hi) - b_lo] {
        distance += w.count_ones() as usize;
    }
    if distance > cap {
        return None;
    }
    if lo < hi {
        for (wa, wb) in a.words[lo - a_lo..hi - a_lo]
            .iter()
            .zip(&b.words[lo - b_lo..hi - b_lo])
        {
            distance += (wa ^ wb).count_ones() as usize;
            if distance > cap {
                return None;
            }
        }
    }
    for w in &a.words[(hi.clamp(a_lo, a_hi)) - a_lo..] {
        distance += w.count_ones() as usize;
    }
    for w in &b.words[(hi.clamp(b_lo, b_hi)) - b_lo..] {
        distance += w.count_ones() as usize;
    }
    (distance <= cap).then_some(distance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(ids: &[u32]) -> Vec<UserId> {
        let set: BTreeSet<UserId> = ids.iter().map(|&i| UserId(i)).collect();
        set.into_iter().collect()
    }

    fn slot(index: usize, pairs: &[(u8, u32)]) -> TimeSlot {
        TimeSlot::from_assignments(
            index,
            pairs
                .iter()
                .map(|&(g, u)| (AccelerationGroupId(g), UserId(u))),
        )
    }

    const GROUPS: [AccelerationGroupId; 3] = [
        AccelerationGroupId(1),
        AccelerationGroupId(2),
        AccelerationGroupId(3),
    ];

    #[test]
    fn group_distance_is_zero_iff_equal() {
        assert_eq!(group_distance(&users(&[1, 2, 3]), &users(&[1, 2, 3])), 0);
        assert_eq!(group_distance(&users(&[]), &users(&[])), 0);
        assert!(group_distance(&users(&[1, 2]), &users(&[1, 2, 3])) > 0);
    }

    #[test]
    fn group_distance_counts_insertions_and_deletions() {
        assert_eq!(group_distance(&users(&[1, 2, 3]), &users(&[2, 3, 4])), 2);
        assert_eq!(group_distance(&users(&[1, 2]), &users(&[3, 4])), 4);
        assert_eq!(group_distance(&users(&[]), &users(&[7, 8, 9])), 3);
    }

    #[test]
    fn group_distance_is_a_metric() {
        let sets = [
            users(&[1, 2]),
            users(&[2, 3]),
            users(&[1, 2, 3, 4]),
            users(&[]),
        ];
        for a in &sets {
            assert_eq!(group_distance(a, a), 0);
            for b in &sets {
                assert_eq!(group_distance(a, b), group_distance(b, a), "symmetry");
                for c in &sets {
                    assert!(
                        group_distance(a, c) <= group_distance(a, b) + group_distance(b, c),
                        "triangle inequality"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_distance_agrees_with_naive_reference() {
        let cases = [
            (users(&[]), users(&[])),
            (users(&[1]), users(&[])),
            (users(&[1, 5, 9]), users(&[2, 5, 8])),
            (users(&[1, 2, 3, 4]), users(&[3, 4, 5, 6])),
            (users(&[10, 20, 30]), users(&[10, 20, 30])),
        ];
        for (a, b) in &cases {
            assert_eq!(group_distance(a, b), group_distance_naive(a, b));
            let d = group_distance(a, b);
            assert_eq!(group_distance_bounded(a, b, d), Some(d));
            if d > 0 {
                assert_eq!(group_distance_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn slot_distance_sums_over_groups() {
        let a = slot(0, &[(1, 1), (1, 2), (2, 5)]);
        let b = slot(1, &[(1, 1), (2, 5), (2, 6), (3, 9)]);
        // group 1: {1,2} vs {1} -> 1; group 2: {5} vs {5,6} -> 1; group 3: {} vs {9} -> 1
        assert_eq!(slot_distance(&a, &b, &GROUPS), 3);
        assert_eq!(slot_distance(&a, &a, &GROUPS), 0);
        assert_eq!(
            slot_distance(&a, &b, &GROUPS),
            slot_distance(&b, &a, &GROUPS)
        );
        assert_eq!(slot_distance_naive(&a, &b, &GROUPS), 3);
        assert_eq!(slot_distance_bounded(&a, &b, &GROUPS, 3), Some(3));
        assert_eq!(slot_distance_bounded(&a, &b, &GROUPS, 2), None);
    }

    #[test]
    fn count_distance_ignores_identities() {
        let a = slot(0, &[(1, 1), (1, 2)]);
        let b = slot(1, &[(1, 7), (1, 8)]);
        assert_eq!(count_distance(&a, &b, &GROUPS), 0);
        assert_eq!(slot_distance(&a, &b, &GROUPS), 4);
    }

    #[test]
    fn count_distance_lower_bounds_both_edit_distances() {
        let a = slot(0, &[(1, 1), (1, 2), (1, 3), (2, 9), (3, 4)]);
        let b = slot(1, &[(1, 2), (1, 7), (2, 9), (2, 10), (3, 5)]);
        let lower = count_distance(&a, &b, &GROUPS);
        assert!(lower <= slot_distance(&a, &b, &GROUPS));
        assert!(lower <= slot_levenshtein_distance(&a, &b, &GROUPS));
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abc", b""), 3);
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[2, 3, 4]), 2);
    }

    #[test]
    fn bounded_levenshtein_agrees_within_cap_and_prunes_beyond() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"kitten", b"sitting"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"abc", b"abc"),
            (b"abcdefgh", b"ABCDEFGH"),
            (b"ab", b"ba"),
        ];
        for (a, b) in cases {
            let exact = levenshtein(a, b);
            for cap in 0..=(a.len().max(b.len()) + 2) {
                let bounded = levenshtein_bounded(a, b, cap);
                if cap >= exact {
                    assert_eq!(bounded, Some(exact), "{a:?} vs {b:?} cap {cap}");
                } else {
                    assert_eq!(bounded, None, "{a:?} vs {b:?} cap {cap}");
                }
            }
        }
    }

    #[test]
    fn bounded_levenshtein_reuses_scratch() {
        let mut scratch = DistanceScratch::new();
        assert_eq!(
            levenshtein_bounded_with(b"kitten", b"sitting", 10, &mut scratch),
            Some(3)
        );
        assert_eq!(
            levenshtein_bounded_with(b"ab", b"cd", 1, &mut scratch),
            None
        );
        assert_eq!(
            levenshtein_bounded_with(b"xy", b"xy", 0, &mut scratch),
            Some(0)
        );
    }

    fn ids(raw: &[u32]) -> Vec<UserId> {
        raw.iter().map(|&i| UserId(i)).collect()
    }

    #[test]
    fn myers_agrees_with_scalar_levenshtein() {
        let cases: Vec<(Vec<UserId>, Vec<UserId>)> = vec![
            (ids(&[]), ids(&[])),
            (ids(&[1]), ids(&[])),
            (ids(&[1, 2, 3]), ids(&[2, 3, 4])),
            (ids(&[5, 5, 5, 5]), ids(&[5, 5])), // duplicates
            (ids(&[9, 1, 4, 4, 2]), ids(&[4, 9, 9, 1])), // unsorted
            (
                (0..200).map(UserId).collect(),
                (3..180).map(|i| UserId(i * 2)).collect(),
            ),
            (
                (0..70).map(UserId).collect(),
                (0..70).map(|i| UserId(i + 1)).collect(),
            ),
        ];
        for (a, b) in &cases {
            let exact = levenshtein(a, b);
            assert_eq!(levenshtein_myers(a, b), exact, "{a:?} vs {b:?}");
            for cap in [0, 1, exact.saturating_sub(1), exact, exact + 3] {
                let expect = (exact <= cap).then_some(exact);
                assert_eq!(levenshtein_myers_bounded(a, b, cap), expect, "cap {cap}");
                let mut scratch = DistanceScratch::new();
                assert_eq!(id_levenshtein_bounded_with(a, b, cap, &mut scratch), expect);
            }
        }
    }

    #[test]
    fn myers_crosses_word_boundaries_exactly() {
        // patterns of 64, 65, 128 and 129 rows exercise the inter-block
        // carry chain on both sides of every boundary
        for m in [63usize, 64, 65, 127, 128, 129, 200] {
            let a: Vec<UserId> = (0..m as u32).map(UserId).collect();
            for shift in [0u32, 1, 7, 64] {
                let b: Vec<UserId> = (0..m as u32).map(|i| UserId(i + shift)).collect();
                assert_eq!(
                    levenshtein_myers(&a, &b),
                    levenshtein(&a, &b),
                    "m={m} shift={shift}"
                );
            }
        }
    }

    #[test]
    fn bitset_distance_matches_merge_and_naive() {
        let cases = [
            (users(&[]), users(&[])),
            (users(&[1, 2, 3]), users(&[])),
            (users(&[1, 2, 3]), users(&[2, 3, 4])),
            (users(&[0, 63, 64, 127, 128]), users(&[63, 64, 65])),
            (users(&[1_000_000, 1_000_001]), users(&[1, 2])), // disjoint spans
            (users(&[10, 20, 700]), users(&[15, 700])),
        ];
        for (a, b) in &cases {
            let (Some(ba), Some(bb)) = (GroupBitset::from_run(a), GroupBitset::from_run(b)) else {
                panic!("dense test runs always pack");
            };
            let expect = group_distance(a, b);
            assert_eq!(expect, group_distance_naive(a, b));
            assert_eq!(bitset_group_distance(&ba, &bb), expect, "{a:?} vs {b:?}");
            assert_eq!(
                bitset_group_distance_bounded(&ba, &bb, expect),
                Some(expect)
            );
            if expect > 0 {
                assert_eq!(bitset_group_distance_bounded(&ba, &bb, expect - 1), None);
            }
            assert_eq!(ba.count(), a.len());
        }
    }

    #[test]
    fn sparse_runs_refuse_to_pack() {
        let sparse: Vec<UserId> = (0..20u32).map(|i| UserId(i * 10_000)).collect();
        assert_eq!(GroupBitset::from_run(&sparse), None);
        // a dense run packs even when short
        assert!(GroupBitset::from_run(&users(&[5, 6, 7])).is_some());
    }

    #[test]
    fn scratch_growth_settles_after_the_largest_input() {
        let mut scratch = DistanceScratch::new();
        let a: Vec<UserId> = (0..150u32).map(UserId).collect();
        let b: Vec<UserId> = (0..140u32).map(|i| UserId(i + 5)).collect();
        levenshtein_bounded_with(&a, &b, 300, &mut scratch);
        levenshtein_myers_bounded_with(&a, &b, 300, &mut scratch);
        levenshtein_bounded_with(&b, &a, 300, &mut scratch);
        levenshtein_myers_bounded_with(&b, &a, 300, &mut scratch);
        let grown = scratch.grows();
        assert!(grown > 0, "first calls grow the fresh buffers");
        for _ in 0..50 {
            levenshtein_bounded_with(&a, &b, 300, &mut scratch);
            levenshtein_myers_bounded_with(&a, &b, 300, &mut scratch);
            levenshtein_bounded_with(&b, &a, 10, &mut scratch);
            levenshtein_myers_bounded_with(&b, &a, 10, &mut scratch);
        }
        assert_eq!(scratch.grows(), grown, "warm scratch never regrows");
    }

    #[test]
    fn normalized_levenshtein_range() {
        assert_eq!(normalized_levenshtein::<u8>(&[], &[]), 0.0);
        assert_eq!(normalized_levenshtein(b"abc", b"abc"), 0.0);
        assert_eq!(normalized_levenshtein(b"abc", b"xyz"), 1.0);
        let d = normalized_levenshtein(b"kitten", b"sitting");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn slot_levenshtein_close_to_set_distance_for_sorted_ids() {
        let a = slot(0, &[(1, 1), (1, 2), (1, 3)]);
        let b = slot(1, &[(1, 1), (1, 2), (1, 4)]);
        // substitute 3 -> 4
        assert_eq!(slot_levenshtein_distance(&a, &b, &GROUPS), 1);
        // the set distance counts the same change as one deletion + one insertion
        assert_eq!(slot_distance(&a, &b, &GROUPS), 2);
        let mut scratch = DistanceScratch::new();
        assert_eq!(
            slot_levenshtein_distance_bounded(&a, &b, &GROUPS, 1, &mut scratch),
            Some(1)
        );
        assert_eq!(
            slot_levenshtein_distance_bounded(&a, &b, &GROUPS, 0, &mut scratch),
            None
        );
    }
}
