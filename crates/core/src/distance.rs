//! The distance metric of §IV-B-1.
//!
//! Given two time slots `t_x` and `t_z`, the per-group distance `δ` is zero
//! when the group has exactly the same assigned users in both slots and an
//! edit distance `D > 0` otherwise; the slot distance `Δ` is the sum of the
//! per-group distances. The paper computes `D` with the R `RecordLinkage`
//! package (Levenshtein edit distance); for sets of user ids the natural edit
//! distance is the number of insertions plus deletions that turn one user set
//! into the other, i.e. the size of the symmetric difference. Both are
//! provided, together with the Marzal–Vidal normalized edit distance used as
//! an ablation.

use crate::timeslot::TimeSlot;
use mca_offload::{AccelerationGroupId, UserId};
use std::collections::BTreeSet;

/// Edit distance between the user sets of one acceleration group in two
/// slots: the minimum number of single-user insertions and deletions that
/// turn one set into the other (`|A \ B| + |B \ A|`, the symmetric
/// difference). Returns 0 exactly when the sets are equal, matching the
/// paper's definition of `δ`.
pub fn group_distance(a: &BTreeSet<UserId>, b: &BTreeSet<UserId>) -> usize {
    a.symmetric_difference(b).count()
}

/// The slot distance `Δ(t_x, t_z)`: the sum of per-group distances `δ` over
/// the acceleration groups in `groups`.
pub fn slot_distance(a: &TimeSlot, b: &TimeSlot, groups: &[AccelerationGroupId]) -> usize {
    groups.iter().map(|g| group_distance(&a.users_in(*g), &b.users_in(*g))).sum()
}

/// A coarser distance that only compares per-group user *counts* (ignoring
/// identities). Used as an ablation of the distance metric.
pub fn count_distance(a: &TimeSlot, b: &TimeSlot, groups: &[AccelerationGroupId]) -> usize {
    groups
        .iter()
        .map(|g| a.load_of(*g).abs_diff(b.load_of(*g)))
        .sum()
}

/// Classic Levenshtein edit distance between two sequences (the paper's
/// `RecordLinkage` primitive operates on strings; user-id sequences sorted by
/// id are the equivalent here).
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            current[j + 1] = (prev[j + 1] + 1).min(current[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut current);
    }
    prev[b.len()]
}

/// Marzal–Vidal normalized edit distance between two sequences: the edit
/// distance divided by the length of the longer sequence, in `[0, 1]`.
/// (The exact Marzal–Vidal definition normalizes over editing paths; the
/// length normalization is the standard practical approximation and
/// preserves the `[0, 1]` range and the identity-of-indiscernibles
/// property.)
pub fn normalized_levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / longest as f64
}

/// Slot distance computed with Levenshtein over the sorted user-id sequences
/// of each group (an ablation variant closest to the paper's string-based
/// implementation).
pub fn slot_levenshtein_distance(
    a: &TimeSlot,
    b: &TimeSlot,
    groups: &[AccelerationGroupId],
) -> usize {
    groups
        .iter()
        .map(|g| {
            let ua: Vec<UserId> = a.users_in(*g).into_iter().collect();
            let ub: Vec<UserId> = b.users_in(*g).into_iter().collect();
            levenshtein(&ua, &ub)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<UserId> {
        ids.iter().map(|&i| UserId(i)).collect()
    }

    fn slot(index: usize, pairs: &[(u8, u32)]) -> TimeSlot {
        TimeSlot::from_assignments(
            index,
            pairs.iter().map(|&(g, u)| (AccelerationGroupId(g), UserId(u))),
        )
    }

    const GROUPS: [AccelerationGroupId; 3] =
        [AccelerationGroupId(1), AccelerationGroupId(2), AccelerationGroupId(3)];

    #[test]
    fn group_distance_is_zero_iff_equal() {
        assert_eq!(group_distance(&set(&[1, 2, 3]), &set(&[1, 2, 3])), 0);
        assert_eq!(group_distance(&set(&[]), &set(&[])), 0);
        assert!(group_distance(&set(&[1, 2]), &set(&[1, 2, 3])) > 0);
    }

    #[test]
    fn group_distance_counts_insertions_and_deletions() {
        assert_eq!(group_distance(&set(&[1, 2, 3]), &set(&[2, 3, 4])), 2);
        assert_eq!(group_distance(&set(&[1, 2]), &set(&[3, 4])), 4);
        assert_eq!(group_distance(&set(&[]), &set(&[7, 8, 9])), 3);
    }

    #[test]
    fn group_distance_is_a_metric() {
        let sets = [set(&[1, 2]), set(&[2, 3]), set(&[1, 2, 3, 4]), set(&[])];
        for a in &sets {
            assert_eq!(group_distance(a, a), 0);
            for b in &sets {
                assert_eq!(group_distance(a, b), group_distance(b, a), "symmetry");
                for c in &sets {
                    assert!(
                        group_distance(a, c) <= group_distance(a, b) + group_distance(b, c),
                        "triangle inequality"
                    );
                }
            }
        }
    }

    #[test]
    fn slot_distance_sums_over_groups() {
        let a = slot(0, &[(1, 1), (1, 2), (2, 5)]);
        let b = slot(1, &[(1, 1), (2, 5), (2, 6), (3, 9)]);
        // group 1: {1,2} vs {1} -> 1; group 2: {5} vs {5,6} -> 1; group 3: {} vs {9} -> 1
        assert_eq!(slot_distance(&a, &b, &GROUPS), 3);
        assert_eq!(slot_distance(&a, &a, &GROUPS), 0);
        assert_eq!(slot_distance(&a, &b, &GROUPS), slot_distance(&b, &a, &GROUPS));
    }

    #[test]
    fn count_distance_ignores_identities() {
        let a = slot(0, &[(1, 1), (1, 2)]);
        let b = slot(1, &[(1, 7), (1, 8)]);
        assert_eq!(count_distance(&a, &b, &GROUPS), 0);
        assert_eq!(slot_distance(&a, &b, &GROUPS), 4);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abc", b""), 3);
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[2, 3, 4]), 2);
    }

    #[test]
    fn normalized_levenshtein_range() {
        assert_eq!(normalized_levenshtein::<u8>(&[], &[]), 0.0);
        assert_eq!(normalized_levenshtein(b"abc", b"abc"), 0.0);
        assert_eq!(normalized_levenshtein(b"abc", b"xyz"), 1.0);
        let d = normalized_levenshtein(b"kitten", b"sitting");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn slot_levenshtein_close_to_set_distance_for_sorted_ids() {
        let a = slot(0, &[(1, 1), (1, 2), (1, 3)]);
        let b = slot(1, &[(1, 1), (1, 2), (1, 4)]);
        // substitute 3 -> 4
        assert_eq!(slot_levenshtein_distance(&a, &b, &GROUPS), 1);
        // the set distance counts the same change as one deletion + one insertion
        assert_eq!(slot_distance(&a, &b, &GROUPS), 2);
    }
}
