//! # mca-core — software-defined code acceleration
//!
//! The primary contribution of *Modeling Mobile Code Acceleration in the
//! Cloud* (ICDCS 2017): an SDN-style front-end that routes mobile code
//! offloading requests to **acceleration groups** of cloud instances, plus an
//! **adaptive model** that (a) predicts the per-group workload of the next
//! provisioning interval from the history of time slots using an edit
//! distance, and (b) allocates the cheapest combination of instances able to
//! serve the predicted workload through Integer Linear Programming.
//!
//! Crate layout (matching §IV–§V of the paper):
//!
//! * [`accel`] — acceleration groups `A = {a_1 … a_N}`: which instance types
//!   provide which level of acceleration, with what capacity.
//! * [`logs`] — the request log (the paper's MySQL trace store).
//! * [`timeslot`] — time slots `T = {t_i}`: per-slot assignment of users to
//!   acceleration groups, built from the log. Each slot stores one sorted,
//!   deduplicated `Vec<UserId>` run per group, so
//!   [`TimeSlot::users_in`](timeslot::TimeSlot::users_in) hands out a
//!   borrowed `&[UserId]` (zero-copy); [`SlotHistory`](timeslot::SlotHistory)
//!   optionally retains only a sliding window of recent slots.
//! * [`distance`] — the distance metric of §IV-B-1: per-group edit distance
//!   `δ` and slot distance `Δ` as allocation-free linear merges over the
//!   sorted runs, plus banded early-exit Levenshtein / normalized variants
//!   and the retained `*_naive` references.
//! * [`index`] — the vantage-point metric index over retained slots: cached
//!   pivot distances turn the triangle inequality into a sublinear
//!   nearest-slot search for 100k+ slot histories, maintained incrementally
//!   alongside the predictor's signatures.
//! * [`predictor`] — workload prediction (§IV-B): pruned nearest-neighbour
//!   search over the slot history (cached per-slot count signatures give an
//!   `O(groups)` lower bound that skips most candidates), with alternative
//!   strategies for ablation and the naive full scan as baseline.
//! * [`metrics`] — prediction accuracy (the paper's 87.5 % headline metric)
//!   and k-fold cross-validation.
//! * [`window`] — [`SlotWindower`](window::SlotWindower): folds timestamped
//!   events (log records, trace arrivals, live streams) into
//!   provisioning-slot batches — out-of-order tolerance within a slot,
//!   empty slots for gaps, deterministic boundary assignment, late-event
//!   accounting. The bridge every ingestion path shares.
//! * [`allocator`] — dynamic resource allocation (§IV-C): the ILP and two
//!   baseline policies (greedy, over-provisioning).
//! * [`billing`] — the bill stage behind the [`billing::BillingBackend`]
//!   trait: pure arithmetic (the default) or a transaction against a
//!   simulated datacenter with placement, SLA and energy accounting.
//! * [`sdn`] — the SDN-accelerator front-end: request handler, code
//!   offloader/router, per-component timing `T1`/`T2`/`T_cloud` (Fig. 7a).
//! * [`system`] — the closed-loop system of Fig. 2: workload →
//!   SDN-accelerator → back-end pool, with per-interval re-provisioning and
//!   client-side promotions.
//! * [`config`] — system configuration builder.
//!
//! # Quick start
//!
//! ```
//! use mca_core::{AccelerationGroups, SystemConfig, System};
//! use mca_workload::WorkloadGenerator;
//! use mca_offload::{TaskPool, TaskSpec};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let config = SystemConfig::paper_three_groups();
//! let mut system = System::new(config);
//! let workload = WorkloadGenerator::inter_arrival(
//!     20,
//!     TaskPool::static_load(TaskSpec::paper_static_minimax()),
//! )
//! .generate(10.0 * 60_000.0, &mut rng);
//! let report = system.run(&workload, &mut rng);
//! assert!(report.records.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod allocator;
pub mod billing;
pub mod config;
pub mod distance;
pub mod error;
pub mod index;
pub mod logs;
pub mod metrics;
pub mod predictor;
pub mod sdn;
pub mod system;
pub mod timeslot;
pub mod window;

pub use accel::{AccelerationGroup, AccelerationGroups};
pub use allocator::{Allocation, AllocationPolicy, AllocationStats, ResourceAllocator};
pub use billing::{
    ArithmeticBilling, BillingBackend, BillingEngine, DatacenterBilling, DatacenterUsage,
    SlotSettlement,
};
pub use config::SystemConfig;
pub use error::CoreError;
pub use index::IndexPolicy;
pub use logs::TraceLog;
pub use metrics::{
    accuracy, cross_validate, learning_curve, CrossValidationReport, PredictionQuality,
};
pub use predictor::{
    DistanceKind, ParallelismPolicy, PredictionStrategy, PredictorStats, PredictorStatsSnapshot,
    WorkloadForecast, WorkloadPredictor,
};
pub use sdn::{RoutedRequest, SdnAccelerator};
pub use system::{PromotionEvent, SlotObservation, System, SystemReport, UserPerception};
pub use timeslot::{SlotHistory, TimeSlot, TimeSlotBuilder};
pub use window::SlotWindower;
