//! The closed-loop system of Fig. 2: workload → SDN-accelerator → back-end
//! pool, with per-interval prediction, allocation and client-side promotion.

use crate::allocator::{Allocation, ResourceAllocator};
use crate::billing::{BillingBackend, BillingEngine, DatacenterUsage, SlotSettlement};
use crate::config::SystemConfig;
use crate::metrics::accuracy;
use crate::predictor::{WorkloadForecast, WorkloadPredictor};
use crate::sdn::SdnAccelerator;
use crate::timeslot::TimeSlot;
use mca_cloudsim::InstancePool;
use mca_mobile::{Battery, DeviceProfile, Moderator};
use mca_offload::{AccelerationGroupId, OffloadRequest, RequestId, TraceRecord, UserId};
use mca_workload::ArrivalTrace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One promotion performed by a device's moderator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PromotionEvent {
    /// The promoted user.
    pub user: UserId,
    /// Simulation time of the promotion, ms.
    pub time_ms: f64,
    /// The group the user moved to.
    pub to_group: AccelerationGroupId,
}

/// What one provisioning slot looked like: the observed workload, the
/// forecast made for the *next* slot, and the allocation applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotObservation {
    /// Slot index.
    pub index: usize,
    /// Observed number of users per group during the slot.
    pub actual: Vec<(AccelerationGroupId, usize)>,
    /// Forecast produced at the end of the slot for the next slot.
    pub forecast: Option<WorkloadForecast>,
    /// Accuracy of the forecast made at the end of the *previous* slot,
    /// evaluated against this slot's actual workload.
    pub previous_forecast_accuracy: Option<f64>,
    /// Hourly cost of the allocation applied for the next slot, USD.
    pub allocation_cost: f64,
    /// Total instances allocated for the next slot.
    pub allocated_instances: usize,
}

/// Per-user view of the experiment: every response the user perceived, in
/// order, with the serving acceleration group (the data behind Fig. 9b/9c and
/// Fig. 10b/10c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserPerception {
    /// The user.
    pub user: UserId,
    /// `(response time ms, serving group)` per request, in request order.
    pub responses: Vec<(f64, AccelerationGroupId)>,
    /// Number of promotions the user went through.
    pub promotions: u32,
}

impl UserPerception {
    /// Mean perceived response time, ms.
    pub fn mean_response_ms(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.responses.iter().map(|(r, _)| r).sum::<f64>() / self.responses.len() as f64
    }

    /// The highest group the user reached.
    pub fn final_group(&self) -> Option<AccelerationGroupId> {
        self.responses.last().map(|(_, g)| *g)
    }
}

/// The report produced by a system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Every processed request, in completion order.
    pub records: Vec<TraceRecord>,
    /// Every promotion, in time order.
    pub promotions: Vec<PromotionEvent>,
    /// Per-slot observations (actual vs forecast, allocation).
    pub slots: Vec<SlotObservation>,
    /// Per-user perception traces.
    pub perceptions: Vec<UserPerception>,
    /// Total cloud bill of the run, USD.
    pub total_cost: f64,
    /// Mean end-to-end response time over all requests, ms.
    pub mean_response_ms: f64,
    /// Datacenter accounting rollup — all zeros unless the configuration
    /// enabled [`SystemConfig::with_datacenter`].
    pub datacenter: DatacenterUsage,
}

impl SystemReport {
    /// The perception trace of one user, if it issued any request.
    pub fn perception_of(&self, user: UserId) -> Option<&UserPerception> {
        self.perceptions.iter().find(|p| p.user == user)
    }

    /// Mean accuracy of the workload forecasts over the run (ignoring slots
    /// without a prior forecast).
    pub fn mean_prediction_accuracy(&self) -> Option<f64> {
        let scores: Vec<f64> = self
            .slots
            .iter()
            .filter_map(|s| s.previous_forecast_accuracy)
            .collect();
        if scores.is_empty() {
            None
        } else {
            Some(scores.iter().sum::<f64>() / scores.len() as f64)
        }
    }

    /// Fraction of users that ended the run in a higher group than the entry
    /// group (the promotion rate of Fig. 10c).
    pub fn promoted_user_fraction(&self, entry_group: AccelerationGroupId) -> f64 {
        if self.perceptions.is_empty() {
            return 0.0;
        }
        let promoted = self
            .perceptions
            .iter()
            .filter(|p| p.final_group().map(|g| g > entry_group).unwrap_or(false))
            .count();
        promoted as f64 / self.perceptions.len() as f64
    }
}

struct DeviceState {
    moderator: Moderator,
    battery: Battery,
    requests_issued: u64,
}

/// The closed-loop SDN code-acceleration system.
pub struct System {
    config: SystemConfig,
    sdn: SdnAccelerator,
    allocator: ResourceAllocator,
    predictor: WorkloadPredictor,
    pool: InstancePool,
    billing: BillingEngine,
    usage: DatacenterUsage,
    devices: HashMap<UserId, DeviceState>,
    next_request_id: u64,
}

impl System {
    /// Builds a system from a configuration.
    pub fn new(config: SystemConfig) -> Self {
        let allocator = config.build_allocator();
        let predictor = config.build_predictor();
        let pool = config.build_pool();
        let billing = config.build_billing();
        let sdn = SdnAccelerator::new(config.clone());
        Self {
            config,
            sdn,
            allocator,
            predictor,
            pool,
            billing,
            usage: DatacenterUsage::default(),
            devices: HashMap::new(),
            next_request_id: 1,
        }
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the system over an arrival trace and returns the full report.
    ///
    /// Every arrival is routed through the SDN-accelerator, each device's
    /// moderator observes the response and may request a promotion, and at
    /// every slot boundary the predictor forecasts the next slot's workload
    /// and the allocator re-provisions the back-end.
    pub fn run<R: Rng + ?Sized>(&mut self, workload: &ArrivalTrace, rng: &mut R) -> SystemReport {
        let slot_len = self.config.slot_length_ms;
        let mut current_slot = TimeSlot::new(0);
        let mut slot_start = 0.0f64;
        let mut slot_index = 0usize;
        let mut slots: Vec<SlotObservation> = Vec::new();
        let mut pending_forecast: Option<WorkloadForecast> = None;
        let mut promotions = Vec::new();

        // Initial minimum fleet.
        let initial = self
            .allocator
            .allocate(&WorkloadForecast {
                per_group: self.config.groups.ids().iter().map(|g| (*g, 0)).collect(),
                matched_slot: None,
            })
            .expect("the minimum fleet always fits the account cap");
        self.settle_allocation(&initial, &[], 0.0);

        for arrival in workload.iter() {
            // Close every slot boundary we have passed.
            while arrival.time_ms >= slot_start + slot_len {
                let observation = self.close_slot(
                    slot_index,
                    &current_slot,
                    &mut pending_forecast,
                    slot_start + slot_len,
                );
                slots.push(observation);
                current_slot = TimeSlot::new(slot_index + 1);
                slot_index += 1;
                slot_start += slot_len;
            }

            let user = arrival.user;
            let groups = &self.config.groups;
            let entry_group = groups.lowest().id;
            let highest = groups.highest().id;
            let device_class = self.config.device_class;
            let policy = self.config.promotion_policy;
            let state = self.devices.entry(user).or_insert_with(|| {
                let profile = DeviceProfile::for_class(device_class);
                DeviceState {
                    moderator: Moderator::new(profile, policy, entry_group, highest),
                    battery: Battery::new(profile.battery_capacity_mwh),
                    requests_issued: 0,
                }
            });

            let request = OffloadRequest::new(
                RequestId(self.next_request_id),
                user,
                state.moderator.current_group(),
                arrival.task,
                state.battery.level_percent(),
                arrival.time_ms,
            );
            self.next_request_id += 1;
            state.requests_issued += 1;

            let routed = self
                .sdn
                .handle(&request, arrival.time_ms, rng)
                .expect("validated configurations always route");
            current_slot.assign(routed.group, user);

            // Device-side bookkeeping: battery drain while the radio waits for
            // the result, then the moderator's promotion decision.
            let radio_power = state.moderator.device().radio_power_mw;
            state
                .battery
                .drain(radio_power, routed.record.round_trip_ms);
            let event = state.moderator.observe(
                arrival.task.kind.name(),
                routed.record.round_trip_ms,
                state.battery.level_percent(),
                rng,
            );
            if let mca_mobile::ModeratorEvent::Promote(to_group) = event {
                promotions.push(PromotionEvent {
                    user,
                    time_ms: arrival.time_ms,
                    to_group,
                });
            }
        }

        // Close the final (partial) slot.
        let final_time = slot_start + slot_len;
        let observation =
            self.close_slot(slot_index, &current_slot, &mut pending_forecast, final_time);
        slots.push(observation);

        self.pool.terminate_all(final_time);
        self.billing.reset();

        let records: Vec<TraceRecord> = self.sdn.log().records().to_vec();
        let mean_response_ms = self.sdn.log().mean_response_ms();
        let perceptions = self.build_perceptions(&records);
        SystemReport {
            records,
            promotions,
            slots,
            perceptions,
            total_cost: self.pool.billing().total_cost(),
            mean_response_ms,
            datacenter: std::mem::take(&mut self.usage),
        }
    }

    fn close_slot(
        &mut self,
        index: usize,
        slot: &TimeSlot,
        pending_forecast: &mut Option<WorkloadForecast>,
        now_ms: f64,
    ) -> SlotObservation {
        let groups = self.config.groups.ids();
        let actual: Vec<(AccelerationGroupId, usize)> =
            groups.iter().map(|g| (*g, slot.load_of(*g))).collect();

        // Score the forecast that was made for this slot.
        let previous_forecast_accuracy = pending_forecast
            .as_ref()
            .map(|f| accuracy(f, slot, &groups).overall);

        // Learn from this slot and forecast the next one (the fast path is
        // exactly observe_slot + predict on the same slot).
        let forecast = self.predictor.observe_and_predict(slot.clone()).ok();

        let (allocation_cost, allocated_instances) = if let Some(f) = &forecast {
            match self.allocator.allocate(f) {
                Ok(allocation) => {
                    self.settle_allocation(&allocation, &actual, now_ms);
                    (allocation.hourly_cost, allocation.total_instances())
                }
                Err(_) => (0.0, 0),
            }
        } else {
            (0.0, 0)
        };

        *pending_forecast = forecast.clone();
        SlotObservation {
            index,
            actual,
            forecast,
            previous_forecast_accuracy,
            allocation_cost,
            allocated_instances,
        }
    }

    /// Settles an allocation through the billing backend: the pool
    /// transaction (and, under datacenter billing, SLA scoring of `observed`
    /// against the standing placement, energy metering and re-placement),
    /// then the SDN capacity update when the pool accepted it.
    fn settle_allocation(
        &mut self,
        allocation: &Allocation,
        observed: &[(AccelerationGroupId, usize)],
        now_ms: f64,
    ) -> SlotSettlement {
        let settlement = self.billing.settle(
            &mut self.pool,
            allocation,
            observed,
            self.config.slot_length_ms,
            now_ms,
        );
        self.usage.absorb(&settlement);
        if settlement.pool_applied {
            let per_group: Vec<(AccelerationGroupId, usize)> = allocation
                .per_group
                .iter()
                .map(|(g, counts)| (*g, counts.iter().map(|(_, n)| n).sum()))
                .collect();
            self.sdn.apply_allocation(&per_group);
        }
        settlement
    }

    fn build_perceptions(&self, records: &[TraceRecord]) -> Vec<UserPerception> {
        let mut map: HashMap<UserId, UserPerception> = HashMap::new();
        for r in records {
            let entry = map.entry(r.user).or_insert_with(|| UserPerception {
                user: r.user,
                responses: Vec::new(),
                promotions: 0,
            });
            entry.responses.push((r.round_trip_ms, r.group));
        }
        for (user, perception) in &mut map {
            if let Some(state) = self.devices.get(user) {
                perception.promotions = state.moderator.promotions();
            }
        }
        let mut perceptions: Vec<UserPerception> = map.into_values().collect();
        perceptions.sort_by_key(|p| p.user);
        perceptions
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("groups", &self.config.groups.len())
            .field("devices", &self.devices.len())
            .field("requests", &self.sdn.requests_handled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_mobile::PromotionPolicy;
    use mca_offload::{TaskPool, TaskSpec};
    use mca_workload::WorkloadGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn minimax_workload(users: usize, duration_ms: f64, seed: u64) -> ArrivalTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        WorkloadGenerator::inter_arrival(
            users,
            TaskPool::static_load(TaskSpec::paper_static_minimax()),
        )
        .generate(duration_ms, &mut rng)
    }

    #[test]
    fn run_processes_every_arrival_and_logs_consistently() {
        let mut rng = StdRng::seed_from_u64(1);
        let workload = minimax_workload(10, 5.0 * 60_000.0, 11);
        let mut system = System::new(
            SystemConfig::paper_three_groups()
                .with_slot_length_ms(60_000.0)
                .with_background_load(10),
        );
        let report = system.run(&workload, &mut rng);
        assert_eq!(report.records.len(), workload.len());
        assert!(report.records.iter().all(|r| r.is_consistent(1e-6)));
        assert!(report.mean_response_ms > 0.0);
        assert_eq!(report.perceptions.len(), 10);
        assert!(report.total_cost > 0.0);
    }

    #[test]
    fn never_promoting_keeps_every_user_in_the_entry_group() {
        let mut rng = StdRng::seed_from_u64(2);
        let workload = minimax_workload(8, 4.0 * 60_000.0, 12);
        let mut system = System::new(
            SystemConfig::paper_three_groups()
                .with_promotion_policy(PromotionPolicy::Never)
                .with_slot_length_ms(60_000.0),
        );
        let report = system.run(&workload, &mut rng);
        assert!(report.promotions.is_empty());
        assert!(report
            .records
            .iter()
            .all(|r| r.group == AccelerationGroupId(1)));
        assert_eq!(report.promoted_user_fraction(AccelerationGroupId(1)), 0.0);
    }

    #[test]
    fn aggressive_promotion_moves_users_to_the_top_group_and_speeds_them_up() {
        let mut rng = StdRng::seed_from_u64(3);
        let workload = minimax_workload(6, 8.0 * 60_000.0, 13);
        let mut system = System::new(
            SystemConfig::paper_three_groups()
                .with_promotion_policy(PromotionPolicy::ResponseTimeThreshold {
                    threshold_ms: 100.0,
                })
                .with_slot_length_ms(2.0 * 60_000.0),
        );
        let report = system.run(&workload, &mut rng);
        assert!(!report.promotions.is_empty());
        assert_eq!(report.promoted_user_fraction(AccelerationGroupId(1)), 1.0);
        // Fig. 9c behaviour: the response time after reaching group 3 is lower
        // than while in group 1.
        for p in &report.perceptions {
            let g1: Vec<f64> = p
                .responses
                .iter()
                .filter(|(_, g)| *g == AccelerationGroupId(1))
                .map(|(r, _)| *r)
                .collect();
            let g3: Vec<f64> = p
                .responses
                .iter()
                .filter(|(_, g)| *g == AccelerationGroupId(3))
                .map(|(r, _)| *r)
                .collect();
            if !g1.is_empty() && !g3.is_empty() {
                let m1 = g1.iter().sum::<f64>() / g1.len() as f64;
                let m3 = g3.iter().sum::<f64>() / g3.len() as f64;
                assert!(m3 < m1, "user {} group3 {m3} >= group1 {m1}", p.user);
            }
        }
    }

    #[test]
    fn slots_record_forecasts_and_allocations() {
        let mut rng = StdRng::seed_from_u64(4);
        let workload = minimax_workload(12, 10.0 * 60_000.0, 14);
        let mut system = System::new(
            SystemConfig::paper_three_groups()
                .with_slot_length_ms(2.0 * 60_000.0)
                .with_background_load(5),
        );
        let report = system.run(&workload, &mut rng);
        assert!(report.slots.len() >= 5);
        // every closed slot carries a forecast and an applied allocation
        assert!(report.slots.iter().all(|s| s.forecast.is_some()));
        assert!(report.slots.iter().all(|s| s.allocated_instances >= 3));
        // forecasts are scored from the second slot onwards
        assert!(report
            .slots
            .iter()
            .skip(1)
            .all(|s| s.previous_forecast_accuracy.is_some()));
        let acc = report.mean_prediction_accuracy().unwrap();
        assert!(acc > 0.3 && acc <= 1.0, "accuracy {acc}");
    }

    #[test]
    fn bounded_history_window_keeps_the_system_running() {
        let mut rng = StdRng::seed_from_u64(7);
        let workload = minimax_workload(8, 10.0 * 60_000.0, 17);
        let mut system = System::new(
            SystemConfig::paper_three_groups()
                .with_slot_length_ms(60_000.0)
                .with_history_window(3),
        );
        let report = system.run(&workload, &mut rng);
        assert_eq!(report.records.len(), workload.len());
        assert!(report.slots.len() >= 9);
        // forecasts keep flowing after eviction starts, and every match
        // references a retained (global) slot index
        assert!(report.slots.iter().all(|s| s.forecast.is_some()));
        for observation in &report.slots {
            let matched = observation.forecast.as_ref().unwrap().matched_slot.unwrap();
            assert!(matched <= observation.index);
            assert!(
                matched + 3 > observation.index,
                "match fell out of the window"
            );
        }
    }

    #[test]
    fn user_perception_tracks_groups_and_promotions() {
        let mut rng = StdRng::seed_from_u64(5);
        let workload = minimax_workload(3, 6.0 * 60_000.0, 15);
        let mut system = System::new(
            SystemConfig::paper_three_groups()
                .with_promotion_policy(PromotionPolicy::ResponseTimeThreshold {
                    threshold_ms: 50.0,
                })
                .with_slot_length_ms(60_000.0),
        );
        let report = system.run(&workload, &mut rng);
        let perception = report.perception_of(UserId(0)).unwrap();
        assert!(!perception.responses.is_empty());
        assert!(perception.promotions >= 1);
        assert_eq!(perception.final_group(), Some(AccelerationGroupId(3)));
        assert!(perception.mean_response_ms() > 0.0);
        assert!(report.perception_of(UserId(999)).is_none());
    }

    #[test]
    fn datacenter_billing_changes_no_bit_of_the_run_but_adds_accounting() {
        use mca_cloudsim::DatacenterConfig;
        let workload = minimax_workload(10, 8.0 * 60_000.0, 18);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let base_config = SystemConfig::paper_three_groups()
            .with_slot_length_ms(60_000.0)
            .with_background_load(5);
        let plain = System::new(base_config.clone()).run(&workload, &mut rng_a);
        let datacenter =
            System::new(base_config.with_datacenter(DatacenterConfig::paper_default()))
                .run(&workload, &mut rng_b);
        // identical records, forecasts, allocations and bill — to the bit
        assert_eq!(plain.records, datacenter.records);
        assert_eq!(plain.slots, datacenter.slots);
        assert_eq!(plain.total_cost.to_bits(), datacenter.total_cost.to_bits());
        // but only the datacenter run carries placement/energy accounting
        assert_eq!(plain.datacenter, DatacenterUsage::default());
        assert!(datacenter.datacenter.placements > 0);
        assert!(datacenter.datacenter.energy_wh > 0.0);
        assert_eq!(datacenter.datacenter.placement_failures, 0);
    }

    #[test]
    fn higher_background_load_increases_response_times() {
        let workload = minimax_workload(5, 4.0 * 60_000.0, 16);
        let mut rng_a = StdRng::seed_from_u64(6);
        let mut rng_b = StdRng::seed_from_u64(6);
        let light = System::new(
            SystemConfig::paper_three_groups()
                .with_background_load(0)
                .with_slot_length_ms(60_000.0),
        )
        .run(&workload, &mut rng_a);
        let heavy = System::new(
            SystemConfig::paper_three_groups()
                .with_background_load(80)
                .with_slot_length_ms(60_000.0),
        )
        .run(&workload, &mut rng_b);
        assert!(heavy.mean_response_ms > light.mean_response_ms * 1.5);
    }
}
