//! The vantage-point metric index over retained slots.
//!
//! # The pivot / triangle-inequality invariant
//!
//! Every distance the nearest-slot search runs on — the set-edit slot
//! distance and the Levenshtein slot distance — is a metric over time
//! slots: non-negative, symmetric, and satisfying the triangle inequality
//! (property-tested in [`crate::distance`]). The index exploits exactly
//! that: it fixes a few retained slots as **pivots** `p_0 … p_{K-1}` and
//! caches, for every retained slot `s`, the exact distances `d(s, p_k)`.
//! For any probe `t` the triangle inequality gives, per pivot,
//!
//! ```text
//! d(t, s)  >=  |d(t, p_k) - d(s, p_k)|
//! ```
//!
//! so one `O(K)` pass over cached numbers lower-bounds the true distance
//! without touching the candidate's user lists. The search keeps the
//! candidates ordered by their distance to pivot 0 (a `BTreeSet` of
//! `(d(s, p_0), global slot index)` keys) and expands outward from the
//! probe's own `d(t, p_0)`: every candidate in the ring at offset `r` is at
//! least `r` away from the probe, the offsets are visited in non-decreasing
//! order, and the walk stops as soon as the ring offset alone exceeds the
//! best distance found — everything beyond is refuted wholesale, which is
//! what makes the scan sublinear when the history clusters. Within the
//! probe's own ring (offset zero) candidates are visited in ascending
//! global index, so a perfect match terminates at the **earliest** equal
//! slot, preserving the first-minimum tie-break of the linear scans
//! bit-for-bit.
//!
//! The index is maintained incrementally alongside the predictor's
//! count/id-range signatures: each observed slot appends its pivot
//! distances (and, for the set-edit distance, its cached
//! [`GroupBitset`] packings) and window eviction drains them from the
//! front. Pivots are snapshots, so eviction never invalidates cached
//! distances. The ring pivot `p_0` is a clone of the **most recent**
//! retained slot: probes are current slots and workloads drift slowly, so
//! the probe's ring walk starts in the recent cluster and the far past
//! sits in rings the walk never reaches; the remaining pivots spread
//! evenly across the history so drifted-apart epochs still separate in
//! the per-candidate bounds. The
//! whole index is rebuilt with fresh pivots once as many slots have been
//! observed as were retained at build time, keeping the pivots
//! representative of a drifting population at amortized `O(K)` distance
//! evaluations per observation.

use crate::distance::{slot_distance, slot_levenshtein_distance, GroupBitset};
use crate::predictor::DistanceKind;
use crate::timeslot::TimeSlot;
use mca_offload::AccelerationGroupId;
use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Whether (and how) the predictor's nearest-slot search uses the
/// vantage-point metric index.
///
/// Like [`crate::predictor::ParallelismPolicy`] this is purely a
/// performance knob: the indexed search returns bit-identical forecasts to
/// the serial and chunked scans at any configuration, because the triangle
/// inequality only ever *refutes* candidates. When both an index policy and
/// a parallelism policy are active, an eligible history takes the indexed
/// path (its pruning strictly dominates fanning the linear scan out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexPolicy {
    /// Number of pivot slots (`0` disables the index entirely).
    pub pivots: usize,
    /// Minimum retained history length before the index is first built.
    /// Below it the linear scans win: the per-probe pivot distances cost
    /// more than they prune.
    pub min_indexed_slots: usize,
}

impl IndexPolicy {
    /// Default pivot count: enough for drifted populations to separate,
    /// cheap enough that per-probe pivot distances stay negligible.
    pub const DEFAULT_PIVOTS: usize = 4;
    /// Default build threshold, aligned with
    /// [`crate::predictor::ParallelismPolicy::DEFAULT_MIN_PARALLEL_SLOTS`].
    pub const DEFAULT_MIN_INDEXED_SLOTS: usize = 4096;

    /// The linear policy (the default): never build the index.
    pub fn linear() -> Self {
        Self {
            pivots: 0,
            min_indexed_slots: Self::DEFAULT_MIN_INDEXED_SLOTS,
        }
    }

    /// Builds the index with the default pivot count once the history
    /// reaches the default threshold.
    pub fn indexed() -> Self {
        Self {
            pivots: Self::DEFAULT_PIVOTS,
            min_indexed_slots: Self::DEFAULT_MIN_INDEXED_SLOTS,
        }
    }

    /// Overrides the pivot count (clamped to at least one; use
    /// [`IndexPolicy::linear`] to disable the index).
    pub fn with_pivots(mut self, pivots: usize) -> Self {
        self.pivots = pivots.max(1);
        self
    }

    /// Overrides the build threshold.
    pub fn with_min_indexed_slots(mut self, min_indexed_slots: usize) -> Self {
        self.min_indexed_slots = min_indexed_slots;
        self
    }

    /// Whether this policy ever builds the index.
    pub fn is_indexed(&self) -> bool {
        self.pivots > 0
    }
}

impl Default for IndexPolicy {
    fn default() -> Self {
        Self::linear()
    }
}

impl Snapshot for IndexPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pivots.encode(out);
        self.min_indexed_slots.encode(out);
    }
}

impl Restore for IndexPolicy {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            pivots: usize::decode(cur)?,
            min_indexed_slots: usize::decode(cur)?,
        })
    }
}

/// The distance between two slots under the metric the index accelerates.
/// The count distance never builds an index — its signature scan is already
/// `O(groups)` per candidate.
fn metric(kind: DistanceKind, groups: &[AccelerationGroupId], a: &TimeSlot, b: &TimeSlot) -> usize {
    match kind {
        DistanceKind::SetEdit => slot_distance(a, b, groups),
        DistanceKind::Levenshtein => slot_levenshtein_distance(a, b, groups),
        DistanceKind::CountDifference => {
            unreachable!("the count distance takes its dedicated linear scan")
        }
    }
}

/// Saturating cast of a slot distance into the index's `u32` keys. If a
/// distance ever saturates, `|sat(x) - sat(y)| <= |x - y|`, so every cached
/// bound stays a valid lower bound and the search stays exact.
fn key_distance(d: usize) -> u32 {
    u32::try_from(d).unwrap_or(u32::MAX)
}

/// The incremental vantage-point index. See the module docs for the
/// invariant; [`crate::predictor::WorkloadPredictor`] owns one per
/// configured [`IndexPolicy`] and keeps it aligned with the retained
/// history.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct SlotIndex {
    /// Pivot snapshots (clones survive window eviction).
    pivots: Vec<TimeSlot>,
    /// Flat cached distances, `pivots.len()` entries per retained slot,
    /// aligned with the predictor's signatures.
    pivot_distances: Vec<u32>,
    /// `(d(s, p_0), global index of s)` for every retained slot: the ring
    /// order the search walks outward from the probe's own key.
    order: BTreeSet<(u32, u64)>,
    /// Cached set-edit bitset packings, `groups.len()` entries per retained
    /// slot (`None` per group when the run is too sparse to pack, empty
    /// altogether for the Levenshtein metric).
    bitsets: Vec<Option<GroupBitset>>,
    /// Global index of the first covered slot.
    first_index: usize,
    /// Retained history length when the pivots were (re)chosen.
    built_len: usize,
    /// Observations since the pivots were (re)chosen.
    observed_since_build: usize,
}

impl SlotIndex {
    /// Builds a fresh index over the retained slots: pivots chosen evenly
    /// across the history, every slot's pivot distances (and bitsets, for
    /// the set-edit metric) computed from scratch.
    pub(crate) fn build(
        slots: &[TimeSlot],
        first_index: usize,
        kind: DistanceKind,
        groups: &[AccelerationGroupId],
        pivot_count: usize,
    ) -> Self {
        let len = slots.len();
        debug_assert!(len > 0 && pivot_count > 0);
        let pivot_count = pivot_count.min(len);
        // Pivot 0 — the ring-order pivot — is the most recent retained
        // slot: probes are current slots and workloads drift slowly, so the
        // probe's own ring lands in the recent cluster and far-past
        // candidates fall in distant rings the walk never reaches. The
        // remaining pivots spread evenly across the history so drifted-apart
        // epochs still separate in the per-candidate bounds.
        let pivots: Vec<TimeSlot> = (0..pivot_count)
            .map(|i| {
                let position = if i == 0 {
                    len - 1
                } else {
                    (i - 1) * (len - 1) / (pivot_count - 1)
                };
                slots[position].clone()
            })
            .collect();
        let mut index = Self {
            pivots,
            pivot_distances: Vec::with_capacity(len * pivot_count),
            order: BTreeSet::new(),
            bitsets: Vec::new(),
            first_index,
            built_len: len,
            observed_since_build: 0,
        };
        for (position, slot) in slots.iter().enumerate() {
            index.append(slot, first_index + position, kind, groups);
        }
        index
    }

    /// Whether enough observations accumulated since the last build that
    /// the pivots should be re-chosen (the doubling rule: amortized `O(K)`
    /// distance evaluations per observation, periodic refresh under a
    /// retention window).
    pub(crate) fn should_rebuild(&self) -> bool {
        self.observed_since_build >= self.built_len.max(1)
    }

    /// Appends one observed slot: cache its pivot distances, insert its
    /// ring key, pack its bitsets.
    pub(crate) fn push(
        &mut self,
        slot: &TimeSlot,
        global_index: usize,
        kind: DistanceKind,
        groups: &[AccelerationGroupId],
    ) {
        self.append(slot, global_index, kind, groups);
        self.observed_since_build += 1;
    }

    fn append(
        &mut self,
        slot: &TimeSlot,
        global_index: usize,
        kind: DistanceKind,
        groups: &[AccelerationGroupId],
    ) {
        debug_assert_eq!(
            global_index,
            self.first_index + self.pivot_distances.len() / self.pivots.len().max(1)
        );
        let mut ring_key = 0;
        for (k, pivot) in self.pivots.iter().enumerate() {
            let d = key_distance(metric(kind, groups, slot, pivot));
            if k == 0 {
                ring_key = d;
            }
            self.pivot_distances.push(d);
        }
        self.order.insert((ring_key, global_index as u64));
        if kind == DistanceKind::SetEdit {
            self.bitsets.extend(
                groups
                    .iter()
                    .map(|g| GroupBitset::from_run(slot.users_in(*g))),
            );
        }
    }

    /// Drops every slot before `first_index` (window eviction from the
    /// front), removing their ring keys through the cached distances.
    pub(crate) fn evict_to(&mut self, first_index: usize, group_count: usize) {
        if first_index <= self.first_index {
            return;
        }
        let pivot_count = self.pivots.len();
        let drop = (first_index - self.first_index).min(self.len());
        for position in 0..drop {
            let ring_key = self.pivot_distances[position * pivot_count];
            let removed = self
                .order
                .remove(&(ring_key, (self.first_index + position) as u64));
            debug_assert!(removed, "every covered slot has a ring key");
        }
        self.pivot_distances.drain(0..drop * pivot_count);
        if !self.bitsets.is_empty() {
            self.bitsets.drain(0..drop * group_count);
        }
        self.first_index = first_index;
    }

    /// Number of covered slots.
    pub(crate) fn len(&self) -> usize {
        self.pivot_distances.len() / self.pivots.len().max(1)
    }

    /// Global index of the first covered slot.
    pub(crate) fn first_index(&self) -> usize {
        self.first_index
    }

    /// The pivot snapshots.
    pub(crate) fn pivots(&self) -> &[TimeSlot] {
        &self.pivots
    }

    /// Cached pivot distances of the slot at `position` (local, within the
    /// retained slots).
    pub(crate) fn pivot_distances_of(&self, position: usize) -> &[u32] {
        let k = self.pivots.len();
        &self.pivot_distances[position * k..(position + 1) * k]
    }

    /// Cached bitset packings of the slot at `position`, or an empty slice
    /// for the Levenshtein metric.
    pub(crate) fn bitsets_of(&self, position: usize, group_count: usize) -> &[Option<GroupBitset>] {
        if self.bitsets.is_empty() {
            return &[];
        }
        &self.bitsets[position * group_count..(position + 1) * group_count]
    }

    /// Walks the candidates in non-decreasing ring offset `|d(s, p_0) -
    /// probe_key|` — the triangle lower bound each ring guarantees — with
    /// the probe's own ring first in ascending global index.
    pub(crate) fn ring_walk(&self, probe_key: u32) -> RingWalk<'_> {
        RingWalk {
            own: self
                .order
                .range((probe_key, u64::MIN)..=(probe_key, u64::MAX)),
            down: self.order.range(..(probe_key, u64::MIN)).rev(),
            up: self.order.range((
                std::ops::Bound::Excluded((probe_key, u64::MAX)),
                std::ops::Bound::Unbounded,
            )),
            probe_key,
        }
    }
}

/// The ring order is derived state — `(pivot_distances[position * K],
/// first_index + position)` for every covered slot — so the wire carries
/// only the caches and the decode rebuilds the `BTreeSet` deterministically.
impl Snapshot for SlotIndex {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pivots.encode(out);
        self.pivot_distances.encode(out);
        self.bitsets.encode(out);
        self.first_index.encode(out);
        self.built_len.encode(out);
        self.observed_since_build.encode(out);
    }
}

impl Restore for SlotIndex {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let pivots = Vec::<TimeSlot>::decode(cur)?;
        let pivot_distances = Vec::<u32>::decode(cur)?;
        let bitsets = Vec::<Option<GroupBitset>>::decode(cur)?;
        let first_index = usize::decode(cur)?;
        let built_len = usize::decode(cur)?;
        let observed_since_build = usize::decode(cur)?;
        let pivot_count = pivots.len();
        if pivot_count == 0 {
            return Err(SnapshotError::Malformed {
                context: "slot index with no pivots",
            });
        }
        if pivot_distances.len() % pivot_count != 0 {
            return Err(SnapshotError::Malformed {
                context: "pivot distance cache not a multiple of the pivot count",
            });
        }
        let len = pivot_distances.len() / pivot_count;
        let mut order = BTreeSet::new();
        for position in 0..len {
            let ring_key = pivot_distances[position * pivot_count];
            if !order.insert((ring_key, (first_index + position) as u64)) {
                return Err(SnapshotError::Malformed {
                    context: "duplicate ring key in slot index",
                });
            }
        }
        Ok(Self {
            pivots,
            pivot_distances,
            order,
            bitsets,
            first_index,
            built_len,
            observed_since_build,
        })
    }
}

/// Iterator over `(ring offset, global slot index)` in non-decreasing ring
/// offset; see [`SlotIndex::ring_walk`].
pub(crate) struct RingWalk<'a> {
    own: std::collections::btree_set::Range<'a, (u32, u64)>,
    down: std::iter::Rev<std::collections::btree_set::Range<'a, (u32, u64)>>,
    up: std::collections::btree_set::Range<'a, (u32, u64)>,
    probe_key: u32,
}

impl Iterator for RingWalk<'_> {
    type Item = (u32, u64);

    fn next(&mut self) -> Option<(u32, u64)> {
        if let Some(&(_, global)) = self.own.next() {
            return Some((0, global));
        }
        // merge the two outward directions by ring offset; clone() of a
        // BTreeSet range is a cheap cursor copy, so peeking stays allocation-free
        let down = self
            .down
            .clone()
            .next()
            .map(|&(key, _)| self.probe_key - key);
        let up = self.up.clone().next().map(|&(key, _)| key - self.probe_key);
        match (down, up) {
            (Some(d), Some(u)) if d <= u => {
                self.down.next().map(|&(key, g)| (self.probe_key - key, g))
            }
            (Some(_), Some(_)) => self.up.next().map(|&(key, g)| (key - self.probe_key, g)),
            (Some(_), None) => self.down.next().map(|&(key, g)| (self.probe_key - key, g)),
            (None, Some(_)) => self.up.next().map(|&(key, g)| (key - self.probe_key, g)),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::UserId;

    const GROUPS: [AccelerationGroupId; 2] = [AccelerationGroupId(1), AccelerationGroupId(2)];

    fn slot(index: usize, base: u32, n: u32) -> TimeSlot {
        TimeSlot::from_assignments(
            index,
            (0..n).map(|u| (AccelerationGroupId(1 + (u % 2) as u8), UserId(base + u))),
        )
    }

    #[test]
    fn policy_defaults_to_linear() {
        let policy = IndexPolicy::default();
        assert_eq!(policy, IndexPolicy::linear());
        assert!(!policy.is_indexed());
        assert!(IndexPolicy::indexed().is_indexed());
        assert_eq!(IndexPolicy::indexed().with_pivots(0).pivots, 1, "clamped");
        assert_eq!(
            IndexPolicy::indexed()
                .with_min_indexed_slots(7)
                .min_indexed_slots,
            7
        );
    }

    #[test]
    fn cached_distances_are_exact_and_survive_eviction() {
        let slots: Vec<TimeSlot> = (0..20).map(|i| slot(i, (i as u32) * 3, 10)).collect();
        let mut index = SlotIndex::build(&slots, 0, DistanceKind::SetEdit, &GROUPS, 3);
        assert_eq!(index.len(), 20);
        for (position, s) in slots.iter().enumerate() {
            for (k, pivot) in index.pivots().to_vec().iter().enumerate() {
                assert_eq!(
                    index.pivot_distances_of(position)[k] as usize,
                    slot_distance(s, pivot, &GROUPS)
                );
            }
        }
        index.evict_to(5, GROUPS.len());
        assert_eq!(index.len(), 15);
        assert_eq!(index.first_index(), 5);
        // cached distances still refer to the original pivots
        assert_eq!(
            index.pivot_distances_of(0)[0] as usize,
            slot_distance(&slots[5], &index.pivots()[0], &GROUPS)
        );
    }

    #[test]
    fn ring_walk_visits_every_slot_in_nondecreasing_offset() {
        let slots: Vec<TimeSlot> = (0..30).map(|i| slot(i, (i as u32) * 7, 8)).collect();
        let index = SlotIndex::build(&slots, 0, DistanceKind::SetEdit, &GROUPS, 2);
        for probe_key in [0u32, 3, 10, 500] {
            let visited: Vec<(u32, u64)> = index.ring_walk(probe_key).collect();
            assert_eq!(visited.len(), 30, "every candidate appears exactly once");
            let mut seen: Vec<u64> = visited.iter().map(|&(_, g)| g).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..30u64).collect::<Vec<_>>());
            for pair in visited.windows(2) {
                assert!(pair[0].0 <= pair[1].0, "ring offsets are non-decreasing");
            }
            // the probe's own ring comes first, in ascending global index
            let own: Vec<u64> = visited
                .iter()
                .take_while(|&&(ring, _)| ring == 0)
                .map(|&(_, g)| g)
                .collect();
            assert!(own.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn rebuild_trigger_follows_the_doubling_rule() {
        let slots: Vec<TimeSlot> = (0..8).map(|i| slot(i, i as u32, 4)).collect();
        let mut index = SlotIndex::build(&slots, 0, DistanceKind::SetEdit, &GROUPS, 2);
        assert!(!index.should_rebuild());
        for i in 8..16 {
            index.push(&slot(i, i as u32, 4), i, DistanceKind::SetEdit, &GROUPS);
        }
        assert!(index.should_rebuild(), "as many observed as built over");
    }
}
