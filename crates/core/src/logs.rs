//! The request log of the SDN-accelerator.
//!
//! "The CO also logs information about each request processed into a MySQL
//! database" (§V); "the logs store information about each request processed
//! by the system as a trace, which contains … `<timestamp, user-id,
//! acceleration-group, battery-level, round-trip-time>`" (§IV-A). The log is
//! the evidence the predictor learns from.

use mca_offload::{AccelerationGroupId, TraceRecord, UserId};
use serde::{Deserialize, Serialize};

/// In-memory, append-only store of processed-request traces.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record. Records are expected (and kept) in roughly
    /// chronological order; queries sort lazily where needed.
    pub fn append(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records whose timestamp falls in `[from_ms, to_ms)`.
    pub fn range(&self, from_ms: f64, to_ms: f64) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.timestamp_ms >= from_ms && r.timestamp_ms < to_ms)
            .collect()
    }

    /// Records belonging to one user.
    pub fn for_user(&self, user: UserId) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.user == user).collect()
    }

    /// Records served by one acceleration group.
    pub fn for_group(&self, group: AccelerationGroupId) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.group == group).collect()
    }

    /// Mean round-trip time of successful requests, ms (0 when none).
    pub fn mean_response_ms(&self) -> f64 {
        let ok: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.success)
            .map(|r| r.round_trip_ms)
            .collect();
        if ok.is_empty() {
            0.0
        } else {
            ok.iter().sum::<f64>() / ok.len() as f64
        }
    }

    /// Fraction of requests that completed successfully (1.0 for an empty
    /// log).
    pub fn success_ratio(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.success).count() as f64 / self.records.len() as f64
    }

    /// Bridges the log into timestamped `(group, user)` assignment events —
    /// the form the slot windower ([`crate::SlotWindower`]) and the fleet
    /// ingestion layer consume when replaying a recorded log into per-slot
    /// record batches.
    pub fn assignments(&self) -> impl Iterator<Item = (f64, AccelerationGroupId, UserId)> + '_ {
        self.records
            .iter()
            .map(|r| (r.timestamp_ms, r.group, r.user))
    }

    /// The distinct users that appear in the log.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.records.iter().map(|r| r.user).collect();
        users.sort();
        users.dedup();
        users
    }
}

impl Extend<TraceRecord> for TraceLog {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl FromIterator<TraceRecord> for TraceLog {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Self {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: f64, user: u32, group: u8, rtt: f64, success: bool) -> TraceRecord {
        TraceRecord {
            timestamp_ms: t,
            user: UserId(user),
            group: AccelerationGroupId(group),
            battery_level: 80.0,
            round_trip_ms: rtt,
            t1_ms: 40.0,
            t2_ms: 150.0,
            t_cloud_ms: rtt - 190.0,
            success,
        }
    }

    #[test]
    fn append_and_query_by_range_user_group() {
        let mut log = TraceLog::new();
        log.append(record(100.0, 1, 1, 500.0, true));
        log.append(record(200.0, 2, 2, 700.0, true));
        log.append(record(5_000.0, 1, 1, 600.0, false));
        assert_eq!(log.len(), 3);
        assert_eq!(log.range(0.0, 1_000.0).len(), 2);
        assert_eq!(log.for_user(UserId(1)).len(), 2);
        assert_eq!(log.for_group(AccelerationGroupId(2)).len(), 1);
        assert_eq!(log.users(), vec![UserId(1), UserId(2)]);
    }

    #[test]
    fn mean_response_ignores_failures() {
        let log: TraceLog = vec![
            record(1.0, 1, 1, 400.0, true),
            record(2.0, 1, 1, 600.0, true),
            record(3.0, 1, 1, 10_000.0, false),
        ]
        .into_iter()
        .collect();
        assert_eq!(log.mean_response_ms(), 500.0);
        assert!((log.success_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_defaults() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        assert_eq!(log.mean_response_ms(), 0.0);
        assert_eq!(log.success_ratio(), 1.0);
        assert!(log.users().is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut log = TraceLog::new();
        log.extend(vec![
            record(1.0, 1, 1, 100.0, true),
            record(2.0, 2, 1, 100.0, true),
        ]);
        assert_eq!(log.len(), 2);
    }
}
