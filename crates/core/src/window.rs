//! Slot windowing: folding timestamped events into provisioning-slot batches.
//!
//! The paper's model consumes *time slots* (§IV-A), but every real workload
//! source is timestamped — the SDN-accelerator's request log, a recorded
//! arrival trace, a live record stream. [`SlotWindower`] is the bridge: it
//! buckets events by `floor(timestamp / slot_length)` and hands slots out in
//! chronological order, with three properties the ingestion layer relies on:
//!
//! * **out-of-order tolerance within a slot** — events may arrive in any
//!   order; a slot's batch is complete once the slot is taken, and batch
//!   order is irrelevant downstream ([`crate::TimeSlotBuilder`] sorts),
//! * **empty slots for gaps** — [`SlotWindower::take_next`] yields an empty
//!   batch for interior slots no event fell into, so the provisioning clock
//!   never skips,
//! * **deterministic boundary assignment** — an event whose timestamp lies
//!   exactly on a slot boundary `k * slot_length` belongs to slot `k` (the
//!   slot it *opens*), the same floor rule
//!   [`crate::SlotHistory::from_log`] and the trace aggregation helpers use.
//!
//! Events that arrive for a slot that was already taken are **late**: they
//! are dropped and counted ([`SlotWindower::late_events`]), never silently
//! folded into a wrong slot.

use std::collections::BTreeMap;

/// Folds timestamped events into provisioning-slot batches.
///
/// Generic over the event payload `T` so the same windower serves the core
/// trace-replay path (`(group, user)` assignments) and the fleet ingestion
/// layer (tenant-tagged records).
///
/// ```
/// use mca_core::SlotWindower;
///
/// let mut windower = SlotWindower::new(1_000.0);
/// windower.push(250.0, "a");
/// windower.push(2_500.0, "c"); // slot 2: leaves slot 1 as a gap
/// windower.push(100.0, "b");   // out of order within slot 0: fine
/// assert_eq!(windower.take_next(), vec!["a", "b"]);
/// assert_eq!(windower.take_next(), Vec::<&str>::new()); // the gap slot
/// assert!(!windower.push(500.0, "late")); // slot 0 was already taken
/// assert_eq!(windower.take_next(), vec!["c"]);
/// assert_eq!(windower.late_events(), 1);
/// assert!(windower.is_drained());
/// ```
#[derive(Debug, Clone)]
pub struct SlotWindower<T> {
    slot_length_ms: f64,
    /// Events awaiting their slot, keyed by slot index.
    pending: BTreeMap<usize, Vec<T>>,
    /// The next slot [`SlotWindower::take_next`] will emit.
    next_slot: usize,
    /// Events dropped because their slot was already emitted.
    late_events: usize,
}

impl<T> SlotWindower<T> {
    /// Creates a windower over slots of `slot_length_ms` milliseconds,
    /// starting at slot 0.
    ///
    /// # Panics
    ///
    /// Panics if the slot length is not strictly positive.
    pub fn new(slot_length_ms: f64) -> Self {
        assert!(slot_length_ms > 0.0, "slot length must be positive");
        Self {
            slot_length_ms,
            pending: BTreeMap::new(),
            next_slot: 0,
            late_events: 0,
        }
    }

    /// The slot length, ms.
    pub fn slot_length_ms(&self) -> f64 {
        self.slot_length_ms
    }

    /// The slot a timestamp falls into: `floor(time / slot_length)`, clamped
    /// at 0. A timestamp exactly on a boundary opens the later slot.
    pub fn slot_of(&self, time_ms: f64) -> usize {
        (time_ms / self.slot_length_ms).floor().max(0.0) as usize
    }

    /// Buckets one event. Returns `false` (and counts the event as late)
    /// when its slot was already emitted.
    pub fn push(&mut self, time_ms: f64, event: T) -> bool {
        let slot = self.slot_of(time_ms);
        if slot < self.next_slot {
            self.late_events += 1;
            return false;
        }
        self.pending.entry(slot).or_default().push(event);
        true
    }

    /// Index of the next slot [`SlotWindower::take_next`] will emit.
    pub fn next_slot(&self) -> usize {
        self.next_slot
    }

    /// The highest slot currently holding a pending event, if any.
    pub fn last_pending_slot(&self) -> Option<usize> {
        self.pending.keys().next_back().copied()
    }

    /// Number of buffered events across all pending slots.
    pub fn pending_events(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Returns `true` when no event is waiting for a future slot.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }

    /// Events dropped so far because their slot had already been emitted.
    pub fn late_events(&self) -> usize {
        self.late_events
    }

    /// Emits the next slot's batch, in push order, and advances the window.
    /// Gap slots (no event fell into them) yield an empty batch, so calling
    /// this repeatedly walks every slot up to the last pending one.
    pub fn take_next(&mut self) -> Vec<T> {
        let batch = self.pending.remove(&self.next_slot).unwrap_or_default();
        self.next_slot += 1;
        batch
    }

    /// Decomposes the windower into its raw state, for checkpointing:
    /// `(slot_length_ms, pending batches, next slot, late-event count)`.
    /// The windower is generic over `T`, so serializing the pending batches
    /// is the caller's job; [`SlotWindower::from_parts`] is the inverse.
    pub fn into_parts(self) -> (f64, BTreeMap<usize, Vec<T>>, usize, usize) {
        (
            self.slot_length_ms,
            self.pending,
            self.next_slot,
            self.late_events,
        )
    }

    /// Borrowing view of the raw state ([`SlotWindower::into_parts`] without
    /// consuming the windower).
    pub fn parts(&self) -> (f64, &BTreeMap<usize, Vec<T>>, usize, usize) {
        (
            self.slot_length_ms,
            &self.pending,
            self.next_slot,
            self.late_events,
        )
    }

    /// Rebuilds a windower from [`SlotWindower::into_parts`] state. Returns
    /// `None` instead of panicking when the state is inconsistent — a
    /// non-positive (or NaN) slot length, or a pending batch for a slot the
    /// window already emitted.
    pub fn from_parts(
        slot_length_ms: f64,
        pending: BTreeMap<usize, Vec<T>>,
        next_slot: usize,
        late_events: usize,
    ) -> Option<Self> {
        if slot_length_ms.is_nan() || slot_length_ms <= 0.0 {
            return None;
        }
        if pending.keys().next().is_some_and(|&slot| slot < next_slot) {
            return None;
        }
        Some(Self {
            slot_length_ms,
            pending,
            next_slot,
            late_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_events_open_the_later_slot() {
        let mut windower = SlotWindower::new(1_000.0);
        windower.push(0.0, 0u32); // boundary of slot 0
        windower.push(999.999, 1);
        windower.push(1_000.0, 2); // boundary: slot 1, deterministically
        windower.push(2_000.0, 3);
        assert_eq!(windower.take_next(), vec![0, 1]);
        assert_eq!(windower.take_next(), vec![2]);
        assert_eq!(windower.take_next(), vec![3]);
    }

    #[test]
    fn out_of_order_within_a_slot_is_tolerated_in_push_order() {
        let mut windower = SlotWindower::new(100.0);
        windower.push(90.0, "c");
        windower.push(10.0, "a");
        windower.push(50.0, "b");
        assert_eq!(windower.take_next(), vec!["c", "a", "b"]);
        assert_eq!(windower.late_events(), 0);
    }

    #[test]
    fn gaps_emit_empty_slots_and_drain_reports_pending() {
        let mut windower = SlotWindower::new(100.0);
        windower.push(10.0, 1u8);
        windower.push(410.0, 2);
        assert_eq!(windower.last_pending_slot(), Some(4));
        assert_eq!(windower.pending_events(), 2);
        assert_eq!(windower.take_next(), vec![1]);
        for gap in 1..4 {
            assert_eq!(windower.take_next(), Vec::<u8>::new(), "slot {gap}");
            assert_eq!(windower.next_slot(), gap + 1);
        }
        assert!(!windower.is_drained());
        assert_eq!(windower.take_next(), vec![2]);
        assert!(windower.is_drained());
    }

    #[test]
    fn late_events_are_dropped_and_counted() {
        let mut windower = SlotWindower::new(100.0);
        windower.push(10.0, 1u8);
        assert_eq!(windower.take_next(), vec![1]);
        assert!(!windower.push(50.0, 2), "slot 0 already emitted");
        assert!(windower.push(150.0, 3), "slot 1 still open");
        assert_eq!(windower.late_events(), 1);
        assert_eq!(windower.take_next(), vec![3]);
    }

    #[test]
    fn negative_timestamps_clamp_to_slot_zero() {
        let mut windower = SlotWindower::new(100.0);
        windower.push(-50.0, 1u8);
        windower.push(20.0, 2);
        assert_eq!(windower.take_next(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "slot length must be positive")]
    fn zero_slot_length_panics() {
        let _ = SlotWindower::<u8>::new(0.0);
    }
}
