//! Prediction accuracy and cross-validation (§VI-C-2, Fig. 10a).
//!
//! The paper reports the model's accuracy at "estimating the number of users
//! in each acceleration group" as ≈87.5 %, obtained through a 10-fold cross
//! validation over 16 hours of history, and shows how the accuracy grows with
//! the amount of data available for learning.

use crate::predictor::{DistanceKind, PredictionStrategy, WorkloadForecast, WorkloadPredictor};
use crate::timeslot::{SlotHistory, TimeSlot};
use mca_offload::AccelerationGroupId;
use serde::{Deserialize, Serialize};

/// Accuracy of one forecast against the slot that actually materialized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionQuality {
    /// Per-group accuracy in `[0, 1]`.
    pub per_group: Vec<(AccelerationGroupId, f64)>,
    /// Mean accuracy across groups in `[0, 1]`.
    pub overall: f64,
    /// Mean absolute error of the per-group user counts.
    pub mean_absolute_error: f64,
}

/// Accuracy of a forecast: per group, `1 - |predicted - actual| /
/// max(predicted, actual, 1)`, averaged over the groups. A perfect forecast
/// scores 1.0; predicting 0 users for a busy group scores 0.0 for that group.
pub fn accuracy(
    forecast: &WorkloadForecast,
    actual: &TimeSlot,
    groups: &[AccelerationGroupId],
) -> PredictionQuality {
    let mut per_group = Vec::with_capacity(groups.len());
    let mut abs_err = 0.0;
    for g in groups {
        let predicted = forecast.load_of(*g) as f64;
        let observed = actual.load_of(*g) as f64;
        let denom = predicted.max(observed).max(1.0);
        let acc = 1.0 - (predicted - observed).abs() / denom;
        per_group.push((*g, acc));
        abs_err += (predicted - observed).abs();
    }
    let overall = if per_group.is_empty() {
        1.0
    } else {
        per_group.iter().map(|(_, a)| a).sum::<f64>() / per_group.len() as f64
    };
    PredictionQuality {
        overall,
        mean_absolute_error: if groups.is_empty() {
            0.0
        } else {
            abs_err / groups.len() as f64
        },
        per_group,
    }
}

/// Result of a k-fold cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidationReport {
    /// Mean accuracy of each fold.
    pub fold_accuracies: Vec<f64>,
    /// Mean accuracy over all folds (the paper's headline number).
    pub mean_accuracy: f64,
    /// Total number of (current slot → next slot) predictions evaluated.
    pub evaluated_predictions: usize,
}

/// K-fold cross-validation of the predictor over a slot history.
///
/// Transitions `(t_i, t_{i+1})` are partitioned into `k` folds; for each fold
/// the knowledge base is built from the slots of the *other* folds and every
/// transition in the fold is predicted and scored with [`accuracy`].
///
/// # Panics
///
/// Panics if `k < 2` or the history has fewer than `k + 1` slots.
pub fn cross_validate(
    history: &SlotHistory,
    groups: &[AccelerationGroupId],
    strategy: PredictionStrategy,
    distance: DistanceKind,
    k: usize,
) -> CrossValidationReport {
    assert!(k >= 2, "cross-validation requires at least two folds");
    let transitions = history.len().saturating_sub(1);
    assert!(
        transitions >= k,
        "history too short for {k}-fold cross-validation"
    );

    let mut fold_accuracies = Vec::with_capacity(k);
    let mut evaluated = 0usize;
    for fold in 0..k {
        // transition i belongs to fold (i % k)
        let mut train = SlotHistory::new(history.slot_length_ms);
        for (i, slot) in history.slots().iter().enumerate() {
            // a slot is part of the training set when the transition starting
            // at it is not in the evaluated fold
            if i % k != fold {
                train.push(slot.clone());
            }
        }
        let mut predictor = WorkloadPredictor::new(groups.to_vec(), history.slot_length_ms)
            .with_strategy(strategy)
            .with_distance(distance);
        predictor.set_history(train);

        let mut scores = Vec::new();
        for i in (0..transitions).filter(|i| i % k == fold) {
            let current = &history.slots()[i];
            let actual = &history.slots()[i + 1];
            if let Ok(forecast) = predictor.predict(current) {
                scores.push(accuracy(&forecast, actual, groups).overall);
                evaluated += 1;
            }
        }
        let fold_acc = if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        };
        fold_accuracies.push(fold_acc);
    }
    let mean_accuracy = fold_accuracies.iter().sum::<f64>() / fold_accuracies.len() as f64;
    CrossValidationReport {
        fold_accuracies,
        mean_accuracy,
        evaluated_predictions: evaluated,
    }
}

/// Learning curve (Fig. 10a): accuracy as a function of the amount of history
/// available. For each history size `h` the knowledge base is the first `h`
/// slots and every later transition is predicted and scored.
///
/// Returns `(history size, mean accuracy)` pairs for sizes `2 ..= len - 1`.
pub fn learning_curve(
    history: &SlotHistory,
    groups: &[AccelerationGroupId],
    strategy: PredictionStrategy,
    distance: DistanceKind,
) -> Vec<(usize, f64)> {
    let len = history.len();
    let mut curve = Vec::new();
    for h in 2..len {
        let mut train = SlotHistory::new(history.slot_length_ms);
        for slot in &history.slots()[..h] {
            train.push(slot.clone());
        }
        let mut predictor = WorkloadPredictor::new(groups.to_vec(), history.slot_length_ms)
            .with_strategy(strategy)
            .with_distance(distance);
        predictor.set_history(train);
        let mut scores = Vec::new();
        for i in h..len - 1 {
            if let Ok(forecast) = predictor.predict(&history.slots()[i]) {
                scores.push(accuracy(&forecast, &history.slots()[i + 1], groups).overall);
            }
        }
        if !scores.is_empty() {
            curve.push((h, scores.iter().sum::<f64>() / scores.len() as f64));
        }
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use mca_offload::UserId;

    const GROUPS: [AccelerationGroupId; 3] = [
        AccelerationGroupId(1),
        AccelerationGroupId(2),
        AccelerationGroupId(3),
    ];

    fn slot(n1: u32, n2: u32, n3: u32) -> TimeSlot {
        let mut pairs = Vec::new();
        for u in 0..n1 {
            pairs.push((AccelerationGroupId(1), UserId(u)));
        }
        for u in 0..n2 {
            pairs.push((AccelerationGroupId(2), UserId(1_000 + u)));
        }
        for u in 0..n3 {
            pairs.push((AccelerationGroupId(3), UserId(2_000 + u)));
        }
        TimeSlot::from_assignments(0, pairs)
    }

    fn forecast(n1: usize, n2: usize, n3: usize) -> WorkloadForecast {
        WorkloadForecast {
            per_group: vec![
                (AccelerationGroupId(1), n1),
                (AccelerationGroupId(2), n2),
                (AccelerationGroupId(3), n3),
            ],
            matched_slot: None,
        }
    }

    #[test]
    fn perfect_forecast_scores_one() {
        let q = accuracy(&forecast(10, 5, 2), &slot(10, 5, 2), &GROUPS);
        assert_eq!(q.overall, 1.0);
        assert_eq!(q.mean_absolute_error, 0.0);
        assert!(q.per_group.iter().all(|(_, a)| *a == 1.0));
    }

    #[test]
    fn missing_a_busy_group_scores_zero_for_that_group() {
        let q = accuracy(&forecast(0, 5, 2), &slot(10, 5, 2), &GROUPS);
        let g1 = q
            .per_group
            .iter()
            .find(|(g, _)| *g == AccelerationGroupId(1))
            .unwrap()
            .1;
        assert_eq!(g1, 0.0);
        assert!(q.overall < 1.0 && q.overall > 0.5);
    }

    #[test]
    fn empty_groups_with_empty_prediction_are_perfect() {
        let q = accuracy(&forecast(0, 0, 0), &slot(0, 0, 0), &GROUPS);
        assert_eq!(q.overall, 1.0);
    }

    #[test]
    fn accuracy_is_symmetric_in_over_and_under_prediction() {
        let over = accuracy(&forecast(20, 0, 0), &slot(10, 0, 0), &GROUPS);
        let under = accuracy(&forecast(10, 0, 0), &slot(20, 0, 0), &GROUPS);
        assert!((over.overall - under.overall).abs() < 1e-12);
    }

    /// A smooth diurnal-style history (small changes between consecutive
    /// hours, like the trace-driven 16-hour workload of the paper): the
    /// predictor should learn it well.
    fn periodic_history(hours: usize) -> SlotHistory {
        let mut history = SlotHistory::hourly();
        for h in 0..hours {
            // gentle ramp up and down with period 8 (diffs of 2 users/hour)
            let ramp = [2u32, 4, 6, 8, 6, 4, 2, 0][h % 8];
            let g1 = 12 + ramp;
            history.push(slot(g1, g1 / 4, g1 / 8));
        }
        history
    }

    #[test]
    fn cross_validation_on_periodic_history_is_accurate() {
        let history = periodic_history(16);
        let report = cross_validate(
            &history,
            &GROUPS,
            PredictionStrategy::NearestSlot,
            DistanceKind::SetEdit,
            10,
        );
        assert_eq!(report.fold_accuracies.len(), 10);
        assert!(report.evaluated_predictions >= 10);
        // The nearest-slot strategy matches the current slot's shape; on a
        // slowly varying trace this lands near the paper's ≈87.5 % headline.
        assert!(
            report.mean_accuracy > 0.75,
            "accuracy {}",
            report.mean_accuracy
        );
        assert!(report.mean_accuracy <= 1.0);
    }

    #[test]
    fn both_history_strategies_learn_the_periodic_pattern() {
        let history = periodic_history(24);
        let nearest = cross_validate(
            &history,
            &GROUPS,
            PredictionStrategy::NearestSlot,
            DistanceKind::SetEdit,
            8,
        );
        let successor = cross_validate(
            &history,
            &GROUPS,
            PredictionStrategy::SuccessorOfNearest,
            DistanceKind::SetEdit,
            8,
        );
        // On a smooth ramp both strategies land in the same high-accuracy
        // band (the ramp is symmetric, so "the slot after the nearest match"
        // is ambiguous and does not strictly dominate plain matching).
        assert!(
            nearest.mean_accuracy > 0.7,
            "nearest {}",
            nearest.mean_accuracy
        );
        assert!(
            successor.mean_accuracy > nearest.mean_accuracy - 0.15,
            "successor {} vs nearest {}",
            successor.mean_accuracy,
            nearest.mean_accuracy
        );
    }

    #[test]
    fn learning_curve_reaches_high_accuracy_with_enough_data() {
        let history = periodic_history(20);
        let curve = learning_curve(
            &history,
            &GROUPS,
            PredictionStrategy::NearestSlot,
            DistanceKind::SetEdit,
        );
        assert!(!curve.is_empty());
        assert!(curve.windows(2).all(|w| w[1].0 > w[0].0), "sizes increase");
        let last = curve.last().unwrap().1;
        let first = curve.first().unwrap().1;
        assert!(
            last >= first - 0.1,
            "accuracy should not collapse with more data"
        );
        assert!(last > 0.6, "final accuracy {last}");
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn cross_validation_needs_two_folds() {
        let history = periodic_history(8);
        let _ = cross_validate(
            &history,
            &GROUPS,
            PredictionStrategy::NearestSlot,
            DistanceKind::SetEdit,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "history too short")]
    fn cross_validation_needs_enough_history() {
        let history = periodic_history(4);
        let _ = cross_validate(
            &history,
            &GROUPS,
            PredictionStrategy::NearestSlot,
            DistanceKind::SetEdit,
            10,
        );
    }
}
