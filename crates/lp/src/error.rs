//! Error type shared by the LP/ILP solver.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a [`crate::Problem`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the direction of optimization.
    Unbounded,
    /// A coefficient, bound, or right-hand side was not finite.
    NonFiniteInput {
        /// Human readable location of the offending value.
        what: String,
    },
    /// A variable id referenced a variable that does not belong to the problem.
    UnknownVariable {
        /// The raw index carried by the offending [`crate::VarId`].
        index: usize,
    },
    /// The branch-and-bound search exceeded its node budget before proving
    /// optimality.
    NodeLimit {
        /// Number of nodes explored before giving up.
        explored: usize,
    },
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// A variable's lower bound exceeds its upper bound.
    InvalidBounds {
        /// Name of the variable with inconsistent bounds.
        name: String,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::NonFiniteInput { what } => {
                write!(f, "non-finite input encountered in {what}")
            }
            LpError::UnknownVariable { index } => {
                write!(f, "variable id {index} does not belong to this problem")
            }
            LpError::NodeLimit { explored } => {
                write!(
                    f,
                    "branch-and-bound node limit reached after {explored} nodes"
                )
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            LpError::InvalidBounds { name } => {
                write!(
                    f,
                    "variable `{name}` has lower bound greater than upper bound"
                )
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::NonFiniteInput {
                what: "objective".into(),
            },
            LpError::UnknownVariable { index: 3 },
            LpError::NodeLimit { explored: 10 },
            LpError::IterationLimit,
            LpError::InvalidBounds { name: "x".into() },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
