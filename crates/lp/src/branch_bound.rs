//! Branch-and-bound search over LP relaxations for integer variables.

use crate::error::LpError;
use crate::model::{Objective, Problem, Sense, Solution, SolveStats, VarKind};
use crate::simplex::{SimplexOutcome, SimplexSolver};
use crate::sparse::{Basis, SparseOutcome, SparseProblem};
use crate::VarId;
use serde::{Deserialize, Serialize};

/// Which LP engine solves the relaxation at every branch-and-bound node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LpBackend {
    /// Sparse revised simplex over one shared problem representation;
    /// every child node warm-starts from its parent's optimal [`Basis`]
    /// through dual-simplex re-entry (phase 1 is skipped).
    #[default]
    RevisedWarmStart,
    /// The original dense tableau, rebuilt and solved cold at every node.
    /// Kept as the reference implementation for agreement tests and the
    /// `bench_allocation` baseline.
    DenseTableau,
}

/// Tuning knobs for the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchBoundOptions {
    /// Maximum number of nodes (LP relaxations) to explore before giving up
    /// with [`LpError::NodeLimit`].
    pub max_nodes: usize,
    /// Integrality tolerance: an LP value within this distance of an integer
    /// is considered integral.
    pub integrality_tolerance: f64,
    /// Absolute gap below which an incumbent is accepted as optimal early.
    pub absolute_gap: f64,
    /// LP engine used for node relaxations.
    pub backend: LpBackend,
}

impl Default for BranchBoundOptions {
    fn default() -> Self {
        Self {
            max_nodes: 100_000,
            integrality_tolerance: 1e-6,
            absolute_gap: 1e-9,
            backend: LpBackend::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(VarId, Sense, f64)>,
    /// Optimal basis of the parent relaxation (revised backend only).
    parent_basis: Option<Basis>,
}

/// Outcome of one node relaxation, backend-agnostic.
enum NodeLp {
    Optimal {
        objective: f64,
        values: Vec<f64>,
        pivots: usize,
        phase1_skipped: bool,
        basis: Option<Basis>,
    },
    Infeasible,
    Unbounded,
}

/// Solves `problem` (which may contain integer variables) by branch-and-bound.
pub(crate) fn solve(problem: &Problem, options: &BranchBoundOptions) -> Result<Solution, LpError> {
    let maximize = problem.objective_sense() == Objective::Maximize;
    let integer_vars: Vec<usize> = problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();

    // The sparse row representation is built once and shared by every node;
    // only the per-node variable bounds differ.
    let sparse = match options.backend {
        LpBackend::RevisedWarmStart => Some(SparseProblem::from_problem(problem)),
        LpBackend::DenseTableau => None,
    };

    let mut stack = vec![Node {
        bounds: Vec::new(),
        parent_basis: None,
    }];
    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;
    let mut pivots = 0usize;
    let mut phase1_skips = 0usize;
    let mut root_infeasible = true;
    let mut root_unbounded = false;

    while let Some(node) = stack.pop() {
        if nodes >= options.max_nodes {
            return incumbent.ok_or(LpError::NodeLimit { explored: nodes });
        }
        nodes += 1;

        let relaxation = match &sparse {
            Some(sp) => {
                let outcome = match &node.parent_basis {
                    Some(basis) => sp.solve_warm(&node.bounds, basis)?,
                    None => sp.solve_cold(&node.bounds)?,
                };
                match outcome {
                    SparseOutcome::Optimal(sol) => NodeLp::Optimal {
                        objective: sol.objective,
                        values: sol.values,
                        pivots: sol.pivots,
                        // a stalled warm attempt that restarted cold is not a
                        // phase-1 skip, even if the cold solve needed none
                        phase1_skipped: sol.warm_started,
                        basis: sol.basis,
                    },
                    SparseOutcome::Infeasible => NodeLp::Infeasible,
                    SparseOutcome::Unbounded => NodeLp::Unbounded,
                }
            }
            None => match SimplexSolver::from_problem(problem, &node.bounds).solve_dense()? {
                SimplexOutcome::Optimal {
                    objective,
                    values,
                    pivots,
                } => NodeLp::Optimal {
                    objective,
                    values,
                    pivots,
                    phase1_skipped: false,
                    basis: None,
                },
                SimplexOutcome::Infeasible => NodeLp::Infeasible,
                SimplexOutcome::Unbounded => NodeLp::Unbounded,
            },
        };

        let (objective, values, node_basis) = match relaxation {
            NodeLp::Optimal {
                objective,
                values,
                pivots: node_pivots,
                phase1_skipped,
                basis,
            } => {
                pivots += node_pivots;
                if phase1_skipped {
                    phase1_skips += 1;
                }
                (objective, values, basis)
            }
            NodeLp::Infeasible => continue,
            NodeLp::Unbounded => {
                if node.bounds.is_empty() {
                    root_unbounded = true;
                }
                // An unbounded relaxation at the root means the ILP is
                // unbounded (or infeasible); deeper nodes are only more
                // constrained, so stop exploring this branch.
                continue;
            }
        };
        root_infeasible = false;

        // Bound: prune nodes that cannot beat the incumbent.
        if let Some(ref inc) = incumbent {
            let worse = if maximize {
                objective <= inc.objective + options.absolute_gap
            } else {
                objective >= inc.objective - options.absolute_gap
            };
            if worse {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let fractional = integer_vars
            .iter()
            .map(|&j| {
                let x = values[j];
                let frac = (x - x.round()).abs();
                (j, x, frac)
            })
            .filter(|&(_, _, frac)| frac > options.integrality_tolerance)
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));

        match fractional {
            None => {
                // Integral solution: round the integer coordinates exactly and
                // keep it if it improves the incumbent.
                let mut vals = values;
                for &j in &integer_vars {
                    vals[j] = vals[j].round();
                }
                let obj = problem.objective_value(&vals);
                let better = match &incumbent {
                    None => true,
                    Some(inc) => {
                        if maximize {
                            obj > inc.objective + options.absolute_gap
                        } else {
                            obj < inc.objective - options.absolute_gap
                        }
                    }
                };
                if better {
                    incumbent = Some(Solution {
                        objective: obj,
                        values: vals,
                        stats: SolveStats {
                            nodes,
                            pivots,
                            phase1_skips,
                        },
                    });
                }
            }
            Some((j, x, _frac)) => {
                let var = VarId(j);
                let floor = x.floor();
                let ceil = x.ceil();
                let mut down = node.bounds.clone();
                down.push((var, Sense::Le, floor));
                let mut up = node.bounds.clone();
                up.push((var, Sense::Ge, ceil));
                // Depth-first: push the "up" branch last so it is explored
                // first — for covering-style minimization problems (like the
                // paper's allocation) rounding up tends to reach feasibility
                // quickly and yields early incumbents for pruning. Both
                // children re-enter the revised simplex from this node's
                // optimal basis.
                stack.push(Node {
                    bounds: down,
                    parent_basis: node_basis.clone(),
                });
                stack.push(Node {
                    bounds: up,
                    parent_basis: node_basis,
                });
            }
        }
    }

    match incumbent {
        Some(mut sol) => {
            sol.stats = SolveStats {
                nodes,
                pivots,
                phase1_skips,
            };
            Ok(sol)
        }
        None if root_unbounded => Err(LpError::Unbounded),
        None if root_infeasible => Err(LpError::Infeasible),
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, VarKind};

    /// Brute-force reference for small integer problems over a box.
    fn brute_force_min(problem: &Problem, max_value: i64) -> Option<(f64, Vec<f64>)> {
        let n = problem.num_vars();
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut assignment = vec![0i64; n];
        loop {
            let xs: Vec<f64> = assignment.iter().map(|&v| v as f64).collect();
            if problem.is_feasible(&xs, 1e-9) {
                let obj = problem.objective_value(&xs);
                let better = match &best {
                    None => true,
                    Some((b, _)) => {
                        if problem.objective_sense() == Objective::Maximize {
                            obj > *b
                        } else {
                            obj < *b
                        }
                    }
                };
                if better {
                    best = Some((obj, xs));
                }
            }
            // increment mixed-radix counter
            let mut i = 0;
            loop {
                if i == n {
                    return best;
                }
                assignment[i] += 1;
                if assignment[i] > max_value {
                    assignment[i] = 0;
                    i += 1;
                } else {
                    break;
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_covering_problem() {
        // A miniature version of the paper's allocation problem: choose
        // instance counts to cover workloads at minimum cost.
        let mut p = Problem::minimize();
        let small = p.add_var("small", VarKind::Integer, 0.0, Some(8.0), 0.026);
        let medium = p.add_var("medium", VarKind::Integer, 0.0, Some(8.0), 0.052);
        let large = p.add_var("large", VarKind::Integer, 0.0, Some(8.0), 0.104);
        p.add_constraint(
            "capacity",
            &[(small, 30.0), (medium, 60.0), (large, 90.0)],
            Sense::Ge,
            200.0,
        );
        p.add_constraint(
            "cc",
            &[(small, 1.0), (medium, 1.0), (large, 1.0)],
            Sense::Le,
            8.0,
        );
        let sol = p.solve().unwrap();
        let (bf_obj, _) = brute_force_min(&p, 8).unwrap();
        assert!(
            (sol.objective - bf_obj).abs() < 1e-9,
            "bb={} bf={}",
            sol.objective,
            bf_obj
        );
        assert!(p.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn respects_node_limit() {
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..6)
            .map(|i| {
                p.add_var(
                    format!("x{i}"),
                    VarKind::Integer,
                    0.0,
                    Some(50.0),
                    1.0 + i as f64,
                )
            })
            .collect();
        let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 7.0)).collect();
        p.add_constraint("c", &terms, Sense::Ge, 100.0);
        let options = BranchBoundOptions {
            max_nodes: 1,
            ..Default::default()
        };
        // Either an incumbent was found within one node or we get NodeLimit;
        // with one node no incumbent can exist unless the relaxation is integral.
        match p.solve_with(&options) {
            Ok(sol) => assert!(p.is_feasible(&sol.values, 1e-6)),
            Err(LpError::NodeLimit { explored }) => assert_eq!(explored, 1),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + y, x integer, y continuous, x + y >= 3.5, x <= 2
        // best: x = 2 (cost 4), y = 1.5 (cost 1.5) -> 5.5; or x=1,y=2.5 -> 4.5; x=0,y=3.5 -> 3.5
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, Some(2.0), 2.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Ge, 3.5);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 3.5).abs() < 1e-6);
        assert_eq!(sol.value_rounded(x), 0);
    }

    #[test]
    fn all_integer_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, Some(3.0), 1.0);
        p.add_constraint("lo", &[(x, 2.0)], Sense::Ge, 100.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn integer_unbounded() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Integer, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, 1.0)], Sense::Ge, 0.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    use crate::test_rng::XorShift;

    fn dense_options() -> BranchBoundOptions {
        BranchBoundOptions {
            backend: LpBackend::DenseTableau,
            ..Default::default()
        }
    }

    #[test]
    fn warm_started_backend_matches_dense_cold_backend() {
        // Randomized covering ILPs (the allocation shape): the revised
        // warm-started search and the dense cold search must agree on the
        // optimal objective and on infeasibility, every time.
        let mut rng = XorShift(0xA076_1D64_78BD_642F);
        let mut warm_runs = 0usize;
        for case in 0..60 {
            let n = 2 + rng.below(4);
            let mut p = Problem::minimize();
            let vars: Vec<VarId> = (0..n)
                .map(|i| {
                    p.add_var(
                        format!("x{i}"),
                        VarKind::Integer,
                        0.0,
                        Some(8.0),
                        rng.uniform(0.05, 2.0),
                    )
                })
                .collect();
            let caps: Vec<(VarId, f64)> = vars
                .iter()
                .map(|&v| (v, rng.uniform(1.0, 12.0).round()))
                .collect();
            p.add_constraint("cover", &caps, Sense::Ge, rng.uniform(1.0, 60.0).round());
            let count: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint("cc", &count, Sense::Le, rng.uniform(2.0, 10.0).round());

            let revised = p.solve();
            let dense = p.solve_with(&dense_options());
            match (revised, dense) {
                (Ok(r), Ok(d)) => {
                    assert!(
                        (r.objective - d.objective).abs() < 1e-6,
                        "case {case}: revised {} vs dense {}",
                        r.objective,
                        d.objective
                    );
                    assert!(p.is_feasible(&r.values, 1e-6), "case {case}");
                    if r.stats.phase1_skips > 0 {
                        warm_runs += 1;
                    }
                    assert_eq!(d.stats.phase1_skips, 0, "dense never warm-starts");
                }
                (Err(re), Err(de)) => assert_eq!(re, de, "case {case}"),
                (r, d) => panic!("case {case}: revised {r:?} vs dense {d:?}"),
            }
        }
        assert!(
            warm_runs > 10,
            "branching cases should exercise warm starts: {warm_runs}"
        );
    }

    #[test]
    fn warm_starts_skip_phase_one_on_branching_problems() {
        // a problem that must branch: every explored child re-enters from
        // its parent's basis without phase 1
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, Some(10.0), 1.0);
        let y = p.add_var("y", VarKind::Integer, 0.0, Some(10.0), 1.3);
        p.add_constraint("c", &[(x, 2.0), (y, 3.0)], Sense::Ge, 12.5);
        let sol = p.solve().unwrap();
        assert!(sol.stats.nodes > 1, "the relaxation is fractional");
        // every non-root *optimal* node warm-starts (infeasible children
        // count as nodes but not as skips)
        assert!(
            sol.stats.phase1_skips >= 1 && sol.stats.phase1_skips < sol.stats.nodes,
            "warm starts expected: {:?}",
            sol.stats
        );
        let dense = p.solve_with(&dense_options()).unwrap();
        assert!((sol.objective - dense.objective).abs() < 1e-9);
        assert_eq!(sol.values, dense.values, "same incumbent on this problem");
    }

    #[test]
    fn maximization_knapsack_matches_brute_force() {
        let mut p = Problem::maximize();
        let a = p.add_var("a", VarKind::Integer, 0.0, Some(5.0), 10.0);
        let b = p.add_var("b", VarKind::Integer, 0.0, Some(5.0), 13.0);
        let c = p.add_var("c", VarKind::Integer, 0.0, Some(5.0), 7.0);
        p.add_constraint("w", &[(a, 4.0), (b, 6.0), (c, 3.0)], Sense::Le, 11.0);
        let sol = p.solve().unwrap();
        let (bf, _) = brute_force_min(&p, 5).unwrap();
        assert!((sol.objective - bf).abs() < 1e-9);
    }
}
