//! Branch-and-bound search over LP relaxations for integer variables.

use crate::error::LpError;
use crate::model::{Objective, Problem, Sense, Solution, SolveStats, VarKind};
use crate::simplex::{SimplexOutcome, SimplexSolver};
use crate::VarId;

/// Tuning knobs for the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchBoundOptions {
    /// Maximum number of nodes (LP relaxations) to explore before giving up
    /// with [`LpError::NodeLimit`].
    pub max_nodes: usize,
    /// Integrality tolerance: an LP value within this distance of an integer
    /// is considered integral.
    pub integrality_tolerance: f64,
    /// Absolute gap below which an incumbent is accepted as optimal early.
    pub absolute_gap: f64,
}

impl Default for BranchBoundOptions {
    fn default() -> Self {
        Self {
            max_nodes: 100_000,
            integrality_tolerance: 1e-6,
            absolute_gap: 1e-9,
        }
    }
}

#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(VarId, Sense, f64)>,
}

/// Solves `problem` (which may contain integer variables) by branch-and-bound.
pub(crate) fn solve(problem: &Problem, options: &BranchBoundOptions) -> Result<Solution, LpError> {
    let maximize = problem.objective_sense() == Objective::Maximize;
    let integer_vars: Vec<usize> = problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(j, _)| j)
        .collect();

    let mut stack = vec![Node { bounds: Vec::new() }];
    let mut incumbent: Option<Solution> = None;
    let mut nodes = 0usize;
    let mut pivots = 0usize;
    let mut root_infeasible = true;
    let mut root_unbounded = false;

    while let Some(node) = stack.pop() {
        if nodes >= options.max_nodes {
            return incumbent.ok_or(LpError::NodeLimit { explored: nodes });
        }
        nodes += 1;

        let solver = SimplexSolver::from_problem(problem, &node.bounds);
        let (objective, values, node_pivots) = match solver.solve()? {
            SimplexOutcome::Optimal {
                objective,
                values,
                pivots,
            } => (objective, values, pivots),
            SimplexOutcome::Infeasible => continue,
            SimplexOutcome::Unbounded => {
                if node.bounds.is_empty() {
                    root_unbounded = true;
                }
                // An unbounded relaxation at the root means the ILP is
                // unbounded (or infeasible); deeper nodes are only more
                // constrained, so stop exploring this branch.
                continue;
            }
        };
        root_infeasible = false;
        pivots += node_pivots;

        // Bound: prune nodes that cannot beat the incumbent.
        if let Some(ref inc) = incumbent {
            let worse = if maximize {
                objective <= inc.objective + options.absolute_gap
            } else {
                objective >= inc.objective - options.absolute_gap
            };
            if worse {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let fractional = integer_vars
            .iter()
            .map(|&j| {
                let x = values[j];
                let frac = (x - x.round()).abs();
                (j, x, frac)
            })
            .filter(|&(_, _, frac)| frac > options.integrality_tolerance)
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));

        match fractional {
            None => {
                // Integral solution: round the integer coordinates exactly and
                // keep it if it improves the incumbent.
                let mut vals = values;
                for &j in &integer_vars {
                    vals[j] = vals[j].round();
                }
                let obj = problem.objective_value(&vals);
                let better = match &incumbent {
                    None => true,
                    Some(inc) => {
                        if maximize {
                            obj > inc.objective + options.absolute_gap
                        } else {
                            obj < inc.objective - options.absolute_gap
                        }
                    }
                };
                if better {
                    incumbent = Some(Solution {
                        objective: obj,
                        values: vals,
                        stats: SolveStats { nodes, pivots },
                    });
                }
            }
            Some((j, x, _frac)) => {
                let var = VarId(j);
                let floor = x.floor();
                let ceil = x.ceil();
                let mut down = node.bounds.clone();
                down.push((var, Sense::Le, floor));
                let mut up = node.bounds.clone();
                up.push((var, Sense::Ge, ceil));
                // Depth-first: push the "up" branch last so it is explored
                // first — for covering-style minimization problems (like the
                // paper's allocation) rounding up tends to reach feasibility
                // quickly and yields early incumbents for pruning.
                stack.push(Node { bounds: down });
                stack.push(Node { bounds: up });
            }
        }
    }

    match incumbent {
        Some(mut sol) => {
            sol.stats = SolveStats { nodes, pivots };
            Ok(sol)
        }
        None if root_unbounded => Err(LpError::Unbounded),
        None if root_infeasible => Err(LpError::Infeasible),
        None => Err(LpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, VarKind};

    /// Brute-force reference for small integer problems over a box.
    fn brute_force_min(problem: &Problem, max_value: i64) -> Option<(f64, Vec<f64>)> {
        let n = problem.num_vars();
        let mut best: Option<(f64, Vec<f64>)> = None;
        let mut assignment = vec![0i64; n];
        loop {
            let xs: Vec<f64> = assignment.iter().map(|&v| v as f64).collect();
            if problem.is_feasible(&xs, 1e-9) {
                let obj = problem.objective_value(&xs);
                let better = match &best {
                    None => true,
                    Some((b, _)) => {
                        if problem.objective_sense() == Objective::Maximize {
                            obj > *b
                        } else {
                            obj < *b
                        }
                    }
                };
                if better {
                    best = Some((obj, xs));
                }
            }
            // increment mixed-radix counter
            let mut i = 0;
            loop {
                if i == n {
                    return best;
                }
                assignment[i] += 1;
                if assignment[i] > max_value {
                    assignment[i] = 0;
                    i += 1;
                } else {
                    break;
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_on_covering_problem() {
        // A miniature version of the paper's allocation problem: choose
        // instance counts to cover workloads at minimum cost.
        let mut p = Problem::minimize();
        let small = p.add_var("small", VarKind::Integer, 0.0, Some(8.0), 0.026);
        let medium = p.add_var("medium", VarKind::Integer, 0.0, Some(8.0), 0.052);
        let large = p.add_var("large", VarKind::Integer, 0.0, Some(8.0), 0.104);
        p.add_constraint(
            "capacity",
            &[(small, 30.0), (medium, 60.0), (large, 90.0)],
            Sense::Ge,
            200.0,
        );
        p.add_constraint(
            "cc",
            &[(small, 1.0), (medium, 1.0), (large, 1.0)],
            Sense::Le,
            8.0,
        );
        let sol = p.solve().unwrap();
        let (bf_obj, _) = brute_force_min(&p, 8).unwrap();
        assert!(
            (sol.objective - bf_obj).abs() < 1e-9,
            "bb={} bf={}",
            sol.objective,
            bf_obj
        );
        assert!(p.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn respects_node_limit() {
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..6)
            .map(|i| {
                p.add_var(
                    format!("x{i}"),
                    VarKind::Integer,
                    0.0,
                    Some(50.0),
                    1.0 + i as f64,
                )
            })
            .collect();
        let terms: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 7.0)).collect();
        p.add_constraint("c", &terms, Sense::Ge, 100.0);
        let options = BranchBoundOptions {
            max_nodes: 1,
            ..Default::default()
        };
        // Either an incumbent was found within one node or we get NodeLimit;
        // with one node no incumbent can exist unless the relaxation is integral.
        match p.solve_with(&options) {
            Ok(sol) => assert!(p.is_feasible(&sol.values, 1e-6)),
            Err(LpError::NodeLimit { explored }) => assert_eq!(explored, 1),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + y, x integer, y continuous, x + y >= 3.5, x <= 2
        // best: x = 2 (cost 4), y = 1.5 (cost 1.5) -> 5.5; or x=1,y=2.5 -> 4.5; x=0,y=3.5 -> 3.5
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, Some(2.0), 2.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, 1.0), (y, 1.0)], Sense::Ge, 3.5);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 3.5).abs() < 1e-6);
        assert_eq!(sol.value_rounded(x), 0);
    }

    #[test]
    fn all_integer_infeasible() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, Some(3.0), 1.0);
        p.add_constraint("lo", &[(x, 2.0)], Sense::Ge, 100.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn integer_unbounded() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Integer, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, 1.0)], Sense::Ge, 0.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn maximization_knapsack_matches_brute_force() {
        let mut p = Problem::maximize();
        let a = p.add_var("a", VarKind::Integer, 0.0, Some(5.0), 10.0);
        let b = p.add_var("b", VarKind::Integer, 0.0, Some(5.0), 13.0);
        let c = p.add_var("c", VarKind::Integer, 0.0, Some(5.0), 7.0);
        p.add_constraint("w", &[(a, 4.0), (b, 6.0), (c, 3.0)], Sense::Le, 11.0);
        let sol = p.solve().unwrap();
        let (bf, _) = brute_force_min(&p, 5).unwrap();
        assert!((sol.objective - bf).abs() < 1e-9);
    }
}
