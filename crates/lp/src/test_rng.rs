//! Deterministic xorshift generator shared by the crate's randomized
//! agreement tests (the lp crate carries no dev-dependencies).

pub struct XorShift(pub u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A uniform draw in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// A uniform index in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}
