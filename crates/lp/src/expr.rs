//! Variable handles and linear expressions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul};

/// Opaque handle to a decision variable owned by a [`crate::Problem`].
///
/// `VarId`s are only meaningful for the problem that created them; using a
/// handle with a different problem yields [`crate::LpError::UnknownVariable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw column index of the variable inside its owning problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression `sum_j c_j * x_j` over problem variables.
///
/// Terms referring to the same variable are merged. The expression is used to
/// build constraints and objectives incrementally.
///
/// ```
/// use mca_lp::{LinearExpr, Problem, VarKind};
/// let mut p = Problem::minimize();
/// let x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
/// let y = p.add_var("y", VarKind::Continuous, 0.0, None, 1.0);
/// let expr = LinearExpr::term(x, 2.0) + LinearExpr::term(y, 3.0);
/// assert_eq!(expr.coefficient(x), 2.0);
/// assert_eq!(expr.coefficient(y), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinearExpr {
    terms: BTreeMap<VarId, f64>,
}

impl LinearExpr {
    /// Creates the empty expression (all coefficients zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression consisting of a single term `coeff * var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = Self::new();
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff * var` to the expression, merging with an existing term.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        *self.terms.entry(var).or_insert(0.0) += coeff;
        self
    }

    /// Returns the coefficient of `var` (zero when absent).
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of distinct variables with a stored coefficient.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` when the expression has no stored terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression against a dense assignment indexed by
    /// [`VarId::index`].
    ///
    /// Variables whose index falls outside `assignment` contribute zero.
    pub fn evaluate(&self, assignment: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(v, c)| c * assignment.get(v.0).copied().unwrap_or(0.0))
            .sum()
    }

    /// Returns `true` if every stored coefficient is finite.
    pub fn is_finite(&self) -> bool {
        self.terms.values().all(|c| c.is_finite())
    }
}

impl FromIterator<(VarId, f64)> for LinearExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> Self {
        let mut e = Self::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e
    }
}

impl Extend<(VarId, f64)> for LinearExpr {
    fn extend<I: IntoIterator<Item = (VarId, f64)>>(&mut self, iter: I) {
        for (v, c) in iter {
            self.add_term(v, c);
        }
    }
}

impl Add for LinearExpr {
    type Output = LinearExpr;

    fn add(mut self, rhs: LinearExpr) -> LinearExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self
    }
}

impl AddAssign for LinearExpr {
    fn add_assign(&mut self, rhs: LinearExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
    }
}

impl Mul<f64> for LinearExpr {
    type Output = LinearExpr;

    fn mul(mut self, rhs: f64) -> LinearExpr {
        for c in self.terms.values_mut() {
            *c *= rhs;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn term_merging() {
        let mut e = LinearExpr::new();
        e.add_term(v(0), 1.5);
        e.add_term(v(0), 2.5);
        e.add_term(v(1), -1.0);
        assert_eq!(e.coefficient(v(0)), 4.0);
        assert_eq!(e.coefficient(v(1)), -1.0);
        assert_eq!(e.coefficient(v(2)), 0.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn evaluate_uses_assignment() {
        let e: LinearExpr = [(v(0), 2.0), (v(2), 3.0)].into_iter().collect();
        assert_eq!(e.evaluate(&[1.0, 10.0, 4.0]), 2.0 + 12.0);
        // out-of-range variables contribute zero
        assert_eq!(e.evaluate(&[1.0]), 2.0);
    }

    #[test]
    fn add_and_scale() {
        let a = LinearExpr::term(v(0), 1.0) + LinearExpr::term(v(1), 2.0);
        let b = a.clone() * 3.0;
        assert_eq!(b.coefficient(v(0)), 3.0);
        assert_eq!(b.coefficient(v(1)), 6.0);
        let mut c = a.clone();
        c += b;
        assert_eq!(c.coefficient(v(0)), 4.0);
    }

    #[test]
    fn empty_expression_evaluates_to_zero() {
        let e = LinearExpr::new();
        assert!(e.is_empty());
        assert_eq!(e.evaluate(&[1.0, 2.0]), 0.0);
        assert!(e.is_finite());
    }

    #[test]
    fn non_finite_detected() {
        let e = LinearExpr::term(v(0), f64::NAN);
        assert!(!e.is_finite());
    }
}
