//! The problem-building API: variables, constraints, objectives, solutions.

use crate::branch_bound::{self, BranchBoundOptions};
use crate::error::LpError;
use crate::expr::{LinearExpr, VarId};
use crate::sparse::{SparseOutcome, SparseProblem};
use serde::{Deserialize, Serialize};

/// Whether a variable must take integer values in the final solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable (solved via branch-and-bound).
    Integer,
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// A decision variable: bounds, kind and objective coefficient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    /// Human-readable name used in error messages and debugging output.
    pub name: String,
    /// Integrality requirement.
    pub kind: VarKind,
    /// Lower bound (must be finite and non-negative for the simplex form used
    /// here; the paper's allocation variables are counts, so this is not a
    /// practical restriction).
    pub lower: f64,
    /// Optional upper bound.
    pub upper: Option<f64>,
    /// Coefficient of this variable in the objective.
    pub objective: f64,
}

/// A linear constraint `expr (<=|>=|==) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Human-readable name.
    pub name: String,
    /// Left-hand-side linear expression.
    pub expr: LinearExpr,
    /// Direction.
    pub sense: Sense,
    /// Right-hand-side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Returns `true` when `assignment` satisfies this constraint within
    /// tolerance `tol`.
    pub fn is_satisfied(&self, assignment: &[f64], tol: f64) -> bool {
        let lhs = self.expr.evaluate(assignment);
        match self.sense {
            Sense::Le => lhs <= self.rhs + tol,
            Sense::Ge => lhs >= self.rhs - tol,
            Sense::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Counters describing the work performed while solving a [`Problem`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored (1 for a pure LP).
    pub nodes: usize,
    /// Total simplex pivots across all LP relaxations.
    pub pivots: usize,
    /// Nodes re-entered from a parent basis without running phase 1
    /// (warm-started dual-simplex re-entries; 0 for the dense backend).
    pub phase1_skips: usize,
}

/// The result of a successful solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Optimal objective value in the problem's own direction.
    pub objective: f64,
    /// Values of all variables, indexed by [`VarId::index`].
    pub values: Vec<f64>,
    /// Work counters.
    pub stats: SolveStats,
}

impl Solution {
    /// Value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of `var` rounded to the nearest integer, useful for integer
    /// variables whose LP value carries floating-point noise.
    pub fn value_rounded(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }
}

/// A linear or mixed-integer linear program.
///
/// Build the problem with [`Problem::add_var`] and
/// [`Problem::add_constraint`], then call [`Problem::solve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    objective: Objective,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty minimization problem.
    pub fn minimize() -> Self {
        Self::new(Objective::Minimize)
    }

    /// Creates an empty maximization problem.
    pub fn maximize() -> Self {
        Self::new(Objective::Maximize)
    }

    /// Creates an empty problem with the given optimization direction.
    pub fn new(objective: Objective) -> Self {
        Self {
            objective,
            variables: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Optimization direction of the problem.
    pub fn objective_sense(&self) -> Objective {
        self.objective
    }

    /// Adds a decision variable and returns its handle.
    ///
    /// `lower` must be finite and non-negative; `upper`, when present, must be
    /// at least `lower`. Violations are reported by [`Problem::solve`] rather
    /// than here so that the builder stays infallible.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: Option<f64>,
        objective: f64,
    ) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
            objective,
        });
        id
    }

    /// Adds the linear constraint `sum coeff_j x_j  sense  rhs`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        sense: Sense,
        rhs: f64,
    ) -> &mut Self {
        let expr: LinearExpr = terms.iter().copied().collect();
        self.add_constraint_expr(name, expr, sense, rhs)
    }

    /// Adds a constraint from an already-built [`LinearExpr`].
    pub fn add_constraint_expr(
        &mut self,
        name: impl Into<String>,
        expr: LinearExpr,
        sense: Sense,
        rhs: f64,
    ) -> &mut Self {
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            sense,
            rhs,
        });
        self
    }

    /// The variables added so far, in insertion order.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints added so far, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` when `assignment` satisfies every constraint and every
    /// variable bound within tolerance `tol`.
    pub fn is_feasible(&self, assignment: &[f64], tol: f64) -> bool {
        if assignment.len() != self.variables.len() {
            return false;
        }
        for (v, &x) in self.variables.iter().zip(assignment) {
            if x < v.lower - tol {
                return false;
            }
            if let Some(up) = v.upper {
                if x > up + tol {
                    return false;
                }
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.constraints
            .iter()
            .all(|c| c.is_satisfied(assignment, tol))
    }

    /// Evaluates the objective for an assignment (in the problem's own
    /// direction, i.e. larger is better for maximization).
    pub fn objective_value(&self, assignment: &[f64]) -> f64 {
        self.variables
            .iter()
            .enumerate()
            .map(|(j, v)| v.objective * assignment.get(j).copied().unwrap_or(0.0))
            .sum()
    }

    fn validate(&self) -> Result<(), LpError> {
        for v in &self.variables {
            if !v.lower.is_finite() || !v.objective.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: format!("variable `{}`", v.name),
                });
            }
            if let Some(up) = v.upper {
                if !up.is_finite() {
                    return Err(LpError::NonFiniteInput {
                        what: format!("upper bound of `{}`", v.name),
                    });
                }
                if up < v.lower {
                    return Err(LpError::InvalidBounds {
                        name: v.name.clone(),
                    });
                }
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() || !c.expr.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: format!("constraint `{}`", c.name),
                });
            }
            for (var, _) in c.expr.iter() {
                if var.index() >= self.variables.len() {
                    return Err(LpError::UnknownVariable { index: var.index() });
                }
            }
        }
        Ok(())
    }

    /// Solves the problem with default branch-and-bound options.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`] or [`LpError::Unbounded`] when the
    /// model has no optimum, and input-validation errors for malformed models.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&BranchBoundOptions::default())
    }

    /// Solves the problem with explicit branch-and-bound options.
    ///
    /// # Errors
    ///
    /// See [`Problem::solve`]; additionally returns [`LpError::NodeLimit`]
    /// when the node budget is exhausted before the search completes.
    pub fn solve_with(&self, options: &BranchBoundOptions) -> Result<Solution, LpError> {
        self.validate()?;
        if self.variables.is_empty() {
            return Ok(Solution {
                objective: 0.0,
                values: Vec::new(),
                stats: SolveStats::default(),
            });
        }
        branch_bound::solve(self, options)
    }

    /// Solves only the LP relaxation (integrality requirements dropped),
    /// using the sparse revised simplex.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::Infeasible`] / [`LpError::Unbounded`] like
    /// [`Problem::solve`].
    pub fn solve_relaxation(&self) -> Result<Solution, LpError> {
        self.validate()?;
        match SparseProblem::from_problem(self).solve_cold(&[])? {
            SparseOutcome::Optimal(sol) => Ok(Solution {
                objective: sol.objective,
                values: sol.values,
                stats: SolveStats {
                    nodes: 1,
                    pivots: sol.pivots,
                    phase1_skips: 0,
                },
            }),
            SparseOutcome::Infeasible => Err(LpError::Infeasible),
            SparseOutcome::Unbounded => Err(LpError::Unbounded),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 3.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 2.0);
        p.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Sense::Le, 4.0);
        p.add_constraint("c2", &[(x, 1.0), (y, 3.0)], Sense::Le, 6.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 12.0).abs() < 1e-6);
        assert!((sol.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + y = 5, x >= 2 -> obj 5
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 2.0, None, 1.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Sense::Eq, 5.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!(sol.value(x) >= 2.0 - 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, Some(1.0), 1.0);
        p.add_constraint("c", &[(x, 1.0)], Sense::Ge, 10.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, 1.0)], Sense::Ge, 1.0);
        assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn invalid_bounds_detected() {
        let mut p = Problem::minimize();
        p.add_var("x", VarKind::Continuous, 5.0, Some(1.0), 1.0);
        assert!(matches!(p.solve(), Err(LpError::InvalidBounds { .. })));
    }

    #[test]
    fn non_finite_rejected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, f64::NAN);
        p.add_constraint("c", &[(x, 1.0)], Sense::Ge, 1.0);
        assert!(matches!(p.solve(), Err(LpError::NonFiniteInput { .. })));
    }

    #[test]
    fn empty_problem_solves_trivially() {
        let p = Problem::minimize();
        let sol = p.solve().unwrap();
        assert_eq!(sol.objective, 0.0);
        assert!(sol.values.is_empty());
    }

    #[test]
    fn integer_knapsack_style() {
        // max 5a + 4b s.t. 6a + 4b <= 24, a + 2b <= 6, integer -> a=4,b=0 -> 20? check:
        // 6*4=24 ok, 4 <= 6 ok, obj 20. Alternative a=3,b=1: 22 <= 24, 5 <= 6, obj 19.
        let mut p = Problem::maximize();
        let a = p.add_var("a", VarKind::Integer, 0.0, None, 5.0);
        let b = p.add_var("b", VarKind::Integer, 0.0, None, 4.0);
        p.add_constraint("c1", &[(a, 6.0), (b, 4.0)], Sense::Le, 24.0);
        p.add_constraint("c2", &[(a, 1.0), (b, 2.0)], Sense::Le, 6.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert_eq!(sol.value_rounded(a), 4);
        assert_eq!(sol.value_rounded(b), 0);
    }

    #[test]
    fn integer_solution_differs_from_relaxation() {
        // max x s.t. 2x <= 5 -> relaxation 2.5, integer 2
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Integer, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, 2.0)], Sense::Le, 5.0);
        let relaxed = p.solve_relaxation().unwrap();
        assert!((relaxed.objective - 2.5).abs() < 1e-6);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn is_feasible_checks_bounds_and_integrality() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, Some(10.0), 1.0);
        p.add_constraint("c", &[(x, 1.0)], Sense::Ge, 2.0);
        assert!(p.is_feasible(&[3.0], 1e-9));
        assert!(!p.is_feasible(&[1.0], 1e-9)); // violates constraint
        assert!(!p.is_feasible(&[3.5], 1e-9)); // fractional integer
        assert!(!p.is_feasible(&[11.0], 1e-9)); // above upper bound
        assert!(!p.is_feasible(&[], 1e-9)); // wrong arity
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x (i.e. max x) with x <= 7.5 upper bound
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, Some(7.5), -1.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 7.5).abs() < 1e-6);
    }

    #[test]
    fn unknown_variable_rejected() {
        let mut donor = Problem::minimize();
        let _a = donor.add_var("a", VarKind::Continuous, 0.0, None, 1.0);
        let foreign = VarId(5);
        let mut p = Problem::minimize();
        let _x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("bad", &[(foreign, 1.0)], Sense::Le, 1.0);
        assert!(matches!(
            p.solve(),
            Err(LpError::UnknownVariable { index: 5 })
        ));
    }

    #[test]
    fn negative_rhs_handled() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, -1.0)], Sense::Le, -3.0);
        let sol = p.solve().unwrap();
        assert!((sol.value(x) - 3.0).abs() < 1e-6);
    }
}
