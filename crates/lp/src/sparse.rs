//! Sparse revised simplex over a shared CSR/CSC problem representation.
//!
//! The dense tableau of [`crate::SimplexSolver`] rebuilds an `m × n` matrix
//! per branch-and-bound node and turns every variable bound into an extra
//! row. This module keeps the problem in **bounded-variable standard form**
//! instead:
//!
//! * one [`SparseProblem`] is built per [`Problem`] and shared, immutable, by
//!   every branch-and-bound node (CSR rows for activities, CSC columns for
//!   pricing),
//! * variable bounds — including the single-variable bounds branch-and-bound
//!   imposes — are handled natively by the simplex instead of as rows, so
//!   the basis dimension is the number of structural constraints only,
//! * the basis inverse is maintained in factorized form (dense inverse of
//!   the refactorization point plus product-form eta updates) rather than by
//!   full tableau pivots, and
//! * an optimal [`Basis`] can be handed back to the caller and used to
//!   **warm-start** the solve of a neighbouring problem (same rows, tighter
//!   bounds) through dual-simplex re-entry, skipping phase 1 entirely.
//!
//! Entering/leaving choices use Bland's smallest-index rule throughout, as
//! the dense solver does, which guarantees termination of the primal
//! iterations and keeps every run deterministic.

use crate::error::LpError;
use crate::model::{Objective, Problem, Sense};
use crate::VarId;

const TOL: f64 = 1e-9;
/// Phase-1 infeasibility threshold — identical to the dense solver's.
const PHASE1_TOL: f64 = 1e-7;
const INF: f64 = f64::INFINITY;

/// Where a column currently sits relative to the basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColState {
    /// In the basis; its value is determined by the basic solve.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
}

/// A basis of the bounded-variable simplex: which column is basic in each
/// row, plus the bound each nonbasic column rests on.
///
/// A `Basis` returned by an optimal solve can warm-start
/// [`SparseProblem::solve_warm`] on the same problem with tightened variable
/// bounds (the branch-and-bound child relation): the solver re-enters
/// through the dual simplex from this basis instead of running phase 1.
///
/// A `Basis` is a **per-solve** artifact and is deliberately not part of
/// the durable-session wire format (`docs/snapshot.md`): restored fleets
/// rebuild their warm starts from the memoized allocation inputs on the
/// next solve, so serializing the basis would pin the solver's internals
/// into the snapshot version for no resume benefit.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// Basic column per row, `basic[i]` is the column basic in row `i`.
    basic: Vec<usize>,
    /// State of every persistent column (structural then slack).
    state: Vec<ColState>,
}

impl Basis {
    /// Number of rows the basis covers.
    pub fn rows(&self) -> usize {
        self.basic.len()
    }
}

/// Statistics and result of one sparse solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSolution {
    /// Objective value in the original problem's direction.
    pub objective: f64,
    /// Values of the structural variables.
    pub values: Vec<f64>,
    /// Simplex pivots performed (basis changes, both phases).
    pub pivots: usize,
    /// Whether phase 1 ran (false for successful warm-started re-entries).
    pub used_phase1: bool,
    /// Whether the solve completed through the warm dual-simplex re-entry
    /// (false for cold solves, including cold fallbacks of a stalled warm
    /// attempt).
    pub warm_started: bool,
    /// The optimal basis, reusable for warm starts. `None` in the rare case
    /// an artificial column could not be driven out of the basis.
    pub basis: Option<Basis>,
}

/// Result of running the revised simplex.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseOutcome {
    /// An optimal basic feasible solution was found.
    Optimal(SparseSolution),
    /// The constraints and bounds admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

/// A [`Problem`] in sparse bounded-variable form, shared by every
/// branch-and-bound node: CSR rows, CSC columns, per-column bounds and
/// minimization costs. Columns are `[structural | one slack per row]`; a
/// row's sense is encoded in its slack's bounds (`<=` → `[0, ∞)`, `>=` →
/// `(-∞, 0]`, `==` → `[0, 0]`), so negative right-hand sides need no
/// normalization pass.
#[derive(Debug, Clone)]
pub struct SparseProblem {
    n_struct: usize,
    m: usize,
    /// CSR over structural entries.
    row_starts: Vec<usize>,
    row_cols: Vec<usize>,
    row_vals: Vec<f64>,
    /// CSC over structural entries.
    col_starts: Vec<usize>,
    col_rows: Vec<usize>,
    col_vals: Vec<f64>,
    rhs: Vec<f64>,
    /// Minimization-direction cost per structural column.
    cost: Vec<f64>,
    /// Original-direction objective per structural column (reporting).
    objective: Vec<f64>,
    /// Base bounds per column (structural + slack).
    lower: Vec<f64>,
    upper: Vec<f64>,
    max_iterations: usize,
}

impl SparseProblem {
    /// Builds the shared sparse representation of `problem`. The problem
    /// must satisfy the same contract as [`Problem::solve`] (finite,
    /// non-negative lower bounds); call after validation.
    pub fn from_problem(problem: &Problem) -> Self {
        let n = problem.num_vars();
        let m = problem.constraints().len();
        let maximize = problem.objective_sense() == Objective::Maximize;

        let mut row_starts = Vec::with_capacity(m + 1);
        let mut row_cols = Vec::new();
        let mut row_vals = Vec::new();
        let mut rhs = Vec::with_capacity(m);
        row_starts.push(0);
        for c in problem.constraints() {
            for (v, a) in c.expr.iter() {
                if a != 0.0 {
                    row_cols.push(v.index());
                    row_vals.push(a);
                }
            }
            row_starts.push(row_cols.len());
            rhs.push(c.rhs);
        }

        // transpose CSR → CSC
        let mut col_counts = vec![0usize; n];
        for &j in &row_cols {
            col_counts[j] += 1;
        }
        let mut col_starts = vec![0usize; n + 1];
        for j in 0..n {
            col_starts[j + 1] = col_starts[j] + col_counts[j];
        }
        let mut cursor = col_starts.clone();
        let mut col_rows = vec![0usize; row_cols.len()];
        let mut col_vals = vec![0.0f64; row_cols.len()];
        for i in 0..m {
            for k in row_starts[i]..row_starts[i + 1] {
                let j = row_cols[k];
                col_rows[cursor[j]] = i;
                col_vals[cursor[j]] = row_vals[k];
                cursor[j] += 1;
            }
        }

        let objective: Vec<f64> = problem.variables().iter().map(|v| v.objective).collect();
        let cost: Vec<f64> = objective
            .iter()
            .map(|&c| if maximize { -c } else { c })
            .collect();
        let mut lower: Vec<f64> = problem.variables().iter().map(|v| v.lower).collect();
        let mut upper: Vec<f64> = problem
            .variables()
            .iter()
            .map(|v| v.upper.unwrap_or(INF))
            .collect();
        for c in problem.constraints() {
            let (lo, up) = match c.sense {
                Sense::Le => (0.0, INF),
                Sense::Ge => (-INF, 0.0),
                Sense::Eq => (0.0, 0.0),
            };
            lower.push(lo);
            upper.push(up);
        }

        Self {
            n_struct: n,
            m,
            row_starts,
            row_cols,
            row_vals,
            col_starts,
            col_rows,
            col_vals,
            rhs,
            cost,
            objective,
            lower,
            upper,
            max_iterations: 20_000,
        }
    }

    /// Overrides the simplex iteration budget (default 20 000).
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.n_struct
    }

    /// Number of constraint rows (= basis dimension).
    pub fn num_rows(&self) -> usize {
        self.m
    }

    /// Persistent column count (structural + slack).
    fn ncols(&self) -> usize {
        self.n_struct + self.m
    }

    /// Effective per-column bounds after applying the extra single-variable
    /// bounds (`var sense rhs`), or `None` when a variable's bounds cross
    /// (immediately infeasible).
    fn effective_bounds(&self, extra: &[(VarId, Sense, f64)]) -> Option<(Vec<f64>, Vec<f64>)> {
        let mut lower = self.lower.clone();
        let mut upper = self.upper.clone();
        for &(var, sense, rhs) in extra {
            let j = var.index();
            match sense {
                Sense::Le => upper[j] = upper[j].min(rhs),
                Sense::Ge => lower[j] = lower[j].max(rhs),
                Sense::Eq => {
                    lower[j] = lower[j].max(rhs);
                    upper[j] = upper[j].min(rhs);
                }
            }
        }
        if lower.iter().zip(&upper).any(|(&l, &u)| l > u + TOL) {
            return None;
        }
        Some((lower, upper))
    }

    /// Solves the problem from scratch: slack basis, phase 1 over artificial
    /// columns when the start is infeasible, then phase 2.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] when the pivot budget is
    /// exhausted.
    pub fn solve_cold(&self, extra: &[(VarId, Sense, f64)]) -> Result<SparseOutcome, LpError> {
        let Some((lower, upper)) = self.effective_bounds(extra) else {
            return Ok(SparseOutcome::Infeasible);
        };
        if self.m == 0 {
            return Ok(self.solve_unconstrained(&lower, &upper));
        }
        Worker::cold(self, lower, upper)?.run_cold()
    }

    /// Re-enters the solve from `basis` — typically the parent node's
    /// optimal basis with `extra` containing one tightened bound — through
    /// the dual simplex, skipping phase 1. Falls back to a cold solve when
    /// the warm path stalls or the basis is numerically unusable.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] when even the cold fallback
    /// exhausts the pivot budget.
    pub fn solve_warm(
        &self,
        extra: &[(VarId, Sense, f64)],
        basis: &Basis,
    ) -> Result<SparseOutcome, LpError> {
        let Some((lower, upper)) = self.effective_bounds(extra) else {
            return Ok(SparseOutcome::Infeasible);
        };
        if self.m == 0 {
            return Ok(self.solve_unconstrained(&lower, &upper));
        }
        debug_assert_eq!(basis.basic.len(), self.m);
        debug_assert_eq!(basis.state.len(), self.ncols());
        match Worker::warm(self, lower.clone(), upper.clone(), basis) {
            Some(worker) => match worker.run_warm()? {
                Some(outcome) => Ok(outcome),
                // dual re-entry stalled: restart cold on the same bounds
                None => Worker::cold(self, lower, upper)?.run_cold(),
            },
            // singular warm basis: restart cold
            None => Worker::cold(self, lower, upper)?.run_cold(),
        }
    }

    /// Optimum of a problem with no rows: every variable sits on the bound
    /// its cost prefers.
    fn solve_unconstrained(&self, lower: &[f64], upper: &[f64]) -> SparseOutcome {
        let mut values = Vec::with_capacity(self.n_struct);
        let mut state = Vec::with_capacity(self.n_struct);
        for j in 0..self.n_struct {
            if self.cost[j] < -TOL {
                if upper[j] == INF {
                    return SparseOutcome::Unbounded;
                }
                values.push(upper[j]);
                state.push(ColState::AtUpper);
            } else {
                values.push(lower[j]);
                state.push(ColState::AtLower);
            }
        }
        for v in &mut values {
            if v.abs() < TOL {
                *v = 0.0;
            }
        }
        let objective = dot(&self.objective, &values);
        SparseOutcome::Optimal(SparseSolution {
            objective,
            values,
            pivots: 0,
            used_phase1: false,
            warm_started: false,
            basis: Some(Basis {
                basic: Vec::new(),
                state,
            }),
        })
    }

    /// Entries of persistent column `j`: CSC slice for structural columns,
    /// the unit slack entry otherwise.
    fn col_entries(&self, j: usize) -> ColEntries<'_> {
        if j < self.n_struct {
            ColEntries::Struct {
                rows: &self.col_rows[self.col_starts[j]..self.col_starts[j + 1]],
                vals: &self.col_vals[self.col_starts[j]..self.col_starts[j + 1]],
                at: 0,
            }
        } else {
            ColEntries::Unit {
                row: j - self.n_struct,
                sign: 1.0,
                done: false,
            }
        }
    }
}

/// Iterator over the `(row, value)` entries of one column.
enum ColEntries<'a> {
    Struct {
        rows: &'a [usize],
        vals: &'a [f64],
        at: usize,
    },
    Unit {
        row: usize,
        sign: f64,
        done: bool,
    },
}

impl Iterator for ColEntries<'_> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            ColEntries::Struct { rows, vals, at } => {
                let i = *at;
                if i < rows.len() {
                    *at = i + 1;
                    Some((rows[i], vals[i]))
                } else {
                    None
                }
            }
            ColEntries::Unit { row, sign, done } => {
                if *done {
                    None
                } else {
                    *done = true;
                    Some((*row, *sign))
                }
            }
        }
    }
}

/// How the primal iterations ended.
enum PrimalEnd {
    Optimal,
    Unbounded,
}

/// How the dual iterations ended.
enum DualEnd {
    Optimal,
    Infeasible,
    /// Iteration budget hit before primal feasibility — caller restarts cold.
    Stalled,
}

/// Mutable solver state: bounds, values, basis and the factorized inverse.
struct Worker<'a> {
    sp: &'a SparseProblem,
    /// Persistent columns (structural + slack).
    ncols: usize,
    /// Persistent + artificial columns.
    total: usize,
    /// Artificial k is column `ncols + k`: a single `art_signs[k]` entry in
    /// row `art_rows[k]`.
    art_rows: Vec<usize>,
    art_signs: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    x: Vec<f64>,
    state: Vec<ColState>,
    basic: Vec<usize>,
    /// Dense inverse of the basis at the last refactorization, row-major.
    binv: Vec<f64>,
    /// Product-form eta updates applied since: `(pivot row, B⁻¹·column)`.
    etas: Vec<(usize, Vec<f64>)>,
    pivots: usize,
    iters: usize,
}

impl<'a> Worker<'a> {
    /// Cold start: structural columns at their lower bound, slack basis,
    /// one artificial per row whose slack start violates the slack bounds.
    fn cold(sp: &'a SparseProblem, lower: Vec<f64>, upper: Vec<f64>) -> Result<Self, LpError> {
        let m = sp.m;
        let ncols = sp.ncols();
        let mut x = vec![0.0; ncols];
        let mut state = vec![ColState::AtLower; ncols];
        x[..sp.n_struct].copy_from_slice(&lower[..sp.n_struct]);
        // slack start: d_i = rhs_i - A_i·x
        let mut d = sp.rhs.clone();
        for (i, di) in d.iter_mut().enumerate() {
            for k in sp.row_starts[i]..sp.row_starts[i + 1] {
                *di -= sp.row_vals[k] * x[sp.row_cols[k]];
            }
        }
        let mut basic = Vec::with_capacity(m);
        let mut art_rows = Vec::new();
        let mut art_signs = Vec::new();
        let mut art_lower = Vec::new();
        let mut art_upper = Vec::new();
        let mut art_x = Vec::new();
        for (i, &di) in d.iter().enumerate() {
            let s = sp.n_struct + i;
            if di >= lower[s] - TOL && di <= upper[s] + TOL {
                // slack basic at its start value
                state[s] = ColState::Basic;
                x[s] = di;
                basic.push(s);
            } else {
                // slack rests on its nearest bound, an artificial column
                // carries the violation into the basis
                let clamped = di.clamp(lower[s], upper[s]);
                state[s] = if di < lower[s] {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                x[s] = clamped;
                let sign = if di > clamped { 1.0 } else { -1.0 };
                basic.push(ncols + art_rows.len());
                art_rows.push(i);
                art_signs.push(sign);
                art_lower.push(0.0);
                art_upper.push(INF);
                art_x.push((di - clamped) * sign);
            }
        }
        let total = ncols + art_rows.len();
        let mut lower = lower;
        let mut upper = upper;
        lower.extend(art_lower);
        upper.extend(art_upper);
        x.extend(art_x);
        state.resize(total, ColState::Basic);

        let mut worker = Self {
            sp,
            ncols,
            total,
            art_rows,
            art_signs,
            lower,
            upper,
            x,
            state,
            basic,
            binv: Vec::new(),
            etas: Vec::new(),
            pivots: 0,
            iters: 0,
        };
        if !worker.refactorize() {
            // the start basis is diagonal; singularity here means a
            // malformed problem rather than a numerical accident
            return Err(LpError::IterationLimit);
        }
        Ok(worker)
    }

    /// Warm start from a prior basis under (possibly tightened) bounds.
    /// Returns `None` when the basis matrix is singular.
    fn warm(
        sp: &'a SparseProblem,
        lower: Vec<f64>,
        upper: Vec<f64>,
        basis: &Basis,
    ) -> Option<Self> {
        let ncols = sp.ncols();
        let mut x = vec![0.0; ncols];
        for j in 0..ncols {
            match basis.state[j] {
                ColState::Basic => {}
                ColState::AtLower => x[j] = lower[j],
                ColState::AtUpper => x[j] = upper[j],
            }
        }
        let mut worker = Self {
            sp,
            ncols,
            total: ncols,
            art_rows: Vec::new(),
            art_signs: Vec::new(),
            lower,
            upper,
            x,
            state: basis.state.clone(),
            basic: basis.basic.clone(),
            binv: Vec::new(),
            etas: Vec::new(),
            pivots: 0,
            iters: 0,
        };
        if !worker.refactorize() {
            return None;
        }
        worker.compute_basics();
        Some(worker)
    }

    /// Entries of column `j`, including artificial columns.
    fn col_entries(&self, j: usize) -> ColEntries<'_> {
        if j < self.ncols {
            self.sp.col_entries(j)
        } else {
            ColEntries::Unit {
                row: self.art_rows[j - self.ncols],
                sign: self.art_signs[j - self.ncols],
                done: false,
            }
        }
    }

    /// `column_j · y`.
    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        self.col_entries(j).map(|(i, a)| a * y[i]).sum()
    }

    /// Column `j` as a dense vector.
    fn col_dense(&self, j: usize) -> Vec<f64> {
        let mut v = vec![0.0; self.sp.m];
        for (i, a) in self.col_entries(j) {
            v[i] += a;
        }
        v
    }

    /// Rebuilds the dense basis inverse from the current basic columns and
    /// clears the eta file. Returns `false` when the basis is singular.
    fn refactorize(&mut self) -> bool {
        let m = self.sp.m;
        // Gauss-Jordan with partial pivoting on [B | I]
        let mut b = vec![0.0; m * m];
        for (i, &j) in self.basic.iter().enumerate() {
            for (row, a) in self.col_entries(j) {
                b[row * m + i] += a;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            let pivot_row = (col..m)
                .max_by(|&r1, &r2| {
                    b[r1 * m + col]
                        .abs()
                        .partial_cmp(&b[r2 * m + col].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty pivot range");
            let p = b[pivot_row * m + col];
            if p.abs() < 1e-11 {
                return false;
            }
            if pivot_row != col {
                for k in 0..m {
                    b.swap(pivot_row * m + k, col * m + k);
                    inv.swap(pivot_row * m + k, col * m + k);
                }
            }
            let inv_p = 1.0 / p;
            for k in 0..m {
                b[col * m + k] *= inv_p;
                inv[col * m + k] *= inv_p;
            }
            for r in 0..m {
                if r != col {
                    let f = b[r * m + col];
                    if f != 0.0 {
                        for k in 0..m {
                            b[r * m + k] -= f * b[col * m + k];
                            inv[r * m + k] -= f * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.etas.clear();
        true
    }

    /// Recomputes the basic values from the nonbasic ones:
    /// `x_B = B⁻¹ (rhs − A_N x_N)`.
    fn compute_basics(&mut self) {
        let mut r = self.sp.rhs.clone();
        for j in 0..self.total {
            if self.state[j] != ColState::Basic && self.x[j] != 0.0 {
                for (i, a) in self.col_entries(j) {
                    r[i] -= a * self.x[j];
                }
            }
        }
        let xb = self.ftran(r);
        for (&b, &value) in self.basic.iter().zip(&xb) {
            self.x[b] = value;
        }
    }

    /// `B⁻¹ v`: dense inverse of the refactorization point, then the eta
    /// file in application order.
    fn ftran(&self, v: Vec<f64>) -> Vec<f64> {
        let m = self.sp.m;
        let mut w = vec![0.0; m];
        for (row, wi) in w.iter_mut().enumerate() {
            *wi = self.binv[row * m..(row + 1) * m]
                .iter()
                .zip(&v)
                .map(|(b, vk)| b * vk)
                .sum();
        }
        for (r, e) in &self.etas {
            let t = w[*r] / e[*r];
            w[*r] = t;
            if t != 0.0 {
                for (i, (wi, ei)) in w.iter_mut().zip(e).enumerate() {
                    if i != *r && *ei != 0.0 {
                        *wi -= ei * t;
                    }
                }
            }
        }
        w
    }

    /// `B⁻ᵀ v`: eta transposes in reverse order, then the dense inverse
    /// transposed.
    fn btran(&self, mut v: Vec<f64>) -> Vec<f64> {
        let m = self.sp.m;
        for (r, e) in self.etas.iter().rev() {
            let mut acc = v[*r];
            for (i, (vi, ei)) in v.iter().zip(e).enumerate() {
                if i != *r && *ei != 0.0 {
                    acc -= ei * vi;
                }
            }
            v[*r] = acc / e[*r];
        }
        let mut y = vec![0.0; m];
        for (i, &vi) in v.iter().enumerate() {
            if vi != 0.0 {
                for (yk, b) in y.iter_mut().zip(&self.binv[i * m..(i + 1) * m]) {
                    *yk += b * vi;
                }
            }
        }
        y
    }

    /// Replaces the basic column of row `r` with column `j` (direction
    /// vector `w = B⁻¹ A_j`), records the eta update and refactorizes when
    /// the eta file has grown past its threshold.
    fn apply_pivot(&mut self, r: usize, j: usize, w: Vec<f64>) {
        self.basic[r] = j;
        self.state[j] = ColState::Basic;
        self.etas.push((r, w));
        self.pivots += 1;
        if self.etas.len() > (2 * self.sp.m).max(20) && self.refactorize() {
            self.compute_basics();
        }
    }

    /// Bounded-variable primal simplex on cost vector `cost` (length
    /// `total`), Bland's rule for entering and leaving choices.
    fn primal(&mut self, cost: &[f64], max_iters: usize) -> Result<PrimalEnd, LpError> {
        loop {
            if self.iters >= max_iters {
                return Err(LpError::IterationLimit);
            }
            self.iters += 1;
            let cb: Vec<f64> = self.basic.iter().map(|&b| cost[b]).collect();
            let y = self.btran(cb);
            // entering: smallest-index nonbasic with an improving reduced cost
            let mut entering = None;
            for (j, &cj) in cost.iter().enumerate() {
                if self.state[j] == ColState::Basic || self.lower[j] >= self.upper[j] {
                    continue;
                }
                let d = cj - self.col_dot(j, &y);
                let improves = match self.state[j] {
                    ColState::AtLower => d < -TOL,
                    ColState::AtUpper => d > TOL,
                    ColState::Basic => false,
                };
                if improves {
                    entering = Some(j);
                    break;
                }
            }
            let Some(q) = entering else {
                return Ok(PrimalEnd::Optimal);
            };
            let dir = if self.state[q] == ColState::AtLower {
                1.0
            } else {
                -1.0
            };
            let w = self.ftran(self.col_dense(q));
            // ratio test over the basic bounds, Bland tie-break
            let mut limit = INF;
            let mut leave: Option<(usize, bool)> = None; // (row, hits lower)
            for (i, (&wi, &b)) in w.iter().zip(&self.basic).enumerate() {
                let a = dir * wi;
                let (ratio, to_lower) = if a > TOL {
                    (((self.x[b] - self.lower[b]) / a).max(0.0), true)
                } else if a < -TOL {
                    if self.upper[b] == INF {
                        continue;
                    }
                    (((self.upper[b] - self.x[b]) / -a).max(0.0), false)
                } else {
                    continue;
                };
                let tighter = match leave {
                    None => ratio < limit,
                    Some((lr, _)) => {
                        ratio < limit - TOL || ((ratio - limit).abs() <= TOL && b < self.basic[lr])
                    }
                };
                if tighter {
                    limit = ratio;
                    leave = Some((i, to_lower));
                }
            }
            let flip = self.upper[q] - self.lower[q];
            if limit == INF && flip == INF {
                return Ok(PrimalEnd::Unbounded);
            }
            if flip < limit {
                // bound flip: no basis change
                for (&b, &wi) in self.basic.iter().zip(&w) {
                    self.x[b] -= dir * flip * wi;
                }
                self.x[q] = if dir > 0.0 {
                    self.upper[q]
                } else {
                    self.lower[q]
                };
                self.state[q] = if dir > 0.0 {
                    ColState::AtUpper
                } else {
                    ColState::AtLower
                };
                continue;
            }
            let (r, to_lower) = leave.expect("finite limit implies a leaving row");
            let entering_value = self.x[q] + dir * limit;
            for (&b, &wi) in self.basic.iter().zip(&w) {
                self.x[b] -= dir * limit * wi;
            }
            let lv = self.basic[r];
            if to_lower {
                self.x[lv] = self.lower[lv];
                self.state[lv] = ColState::AtLower;
            } else {
                self.x[lv] = self.upper[lv];
                self.state[lv] = ColState::AtUpper;
            }
            self.x[q] = entering_value;
            self.apply_pivot(r, q, w);
        }
    }

    /// Bounded-variable dual simplex on cost vector `cost`: repairs primal
    /// feasibility while preserving dual feasibility. Used for warm-started
    /// re-entry after bounds tighten.
    fn dual(&mut self, cost: &[f64], max_iters: usize) -> Result<DualEnd, LpError> {
        let m = self.sp.m;
        loop {
            if self.iters >= max_iters {
                return Ok(DualEnd::Stalled);
            }
            self.iters += 1;
            // leaving: most-violated basic, smallest variable index on ties
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, below lower)
            for i in 0..m {
                let b = self.basic[i];
                let (viol, below) = if self.x[b] < self.lower[b] - TOL {
                    (self.lower[b] - self.x[b], true)
                } else if self.x[b] > self.upper[b] + TOL {
                    (self.x[b] - self.upper[b], false)
                } else {
                    continue;
                };
                let better = match leave {
                    None => true,
                    Some((lr, lv, _)) => {
                        viol > lv + TOL || ((viol - lv).abs() <= TOL && b < self.basic[lr])
                    }
                };
                if better {
                    leave = Some((i, viol, below));
                }
            }
            let Some((r, _, below)) = leave else {
                return Ok(DualEnd::Optimal);
            };
            let cb: Vec<f64> = self.basic.iter().map(|&b| cost[b]).collect();
            let y = self.btran(cb);
            let mut e_r = vec![0.0; m];
            e_r[r] = 1.0;
            let rho = self.btran(e_r);
            // entering: dual ratio test, smallest |d/α|, smallest index on ties
            let mut best: Option<(usize, f64)> = None;
            for (j, &cj) in cost.iter().enumerate() {
                if self.state[j] == ColState::Basic || self.lower[j] >= self.upper[j] {
                    continue;
                }
                let alpha = self.col_dot(j, &rho);
                let eligible = if below {
                    // leaving variable must increase to its lower bound
                    (self.state[j] == ColState::AtLower && alpha < -TOL)
                        || (self.state[j] == ColState::AtUpper && alpha > TOL)
                } else {
                    (self.state[j] == ColState::AtLower && alpha > TOL)
                        || (self.state[j] == ColState::AtUpper && alpha < -TOL)
                };
                if !eligible {
                    continue;
                }
                let d = cj - self.col_dot(j, &y);
                let ratio = (d / alpha).abs();
                let better = match best {
                    None => true,
                    Some((bj, br)) => ratio < br - TOL || ((ratio - br).abs() <= TOL && j < bj),
                };
                if better {
                    best = Some((j, ratio));
                }
            }
            let Some((q, _)) = best else {
                return Ok(DualEnd::Infeasible);
            };
            let w = self.ftran(self.col_dense(q));
            let alpha = w[r];
            if alpha.abs() <= TOL {
                // the eta-updated direction disagrees with the pricing row:
                // numerically degenerate, restart cold
                return Ok(DualEnd::Stalled);
            }
            let lv = self.basic[r];
            let target = if below {
                self.lower[lv]
            } else {
                self.upper[lv]
            };
            let delta = (self.x[lv] - target) / alpha;
            let entering_value = self.x[q] + delta;
            for (&b, &wi) in self.basic.iter().zip(&w) {
                self.x[b] -= delta * wi;
            }
            self.x[lv] = target;
            self.state[lv] = if below {
                ColState::AtLower
            } else {
                ColState::AtUpper
            };
            self.x[q] = entering_value;
            self.apply_pivot(r, q, w);
        }
    }

    /// Phase-2 cost vector over all current columns.
    fn phase2_cost(&self) -> Vec<f64> {
        let mut cost = vec![0.0; self.total];
        cost[..self.sp.n_struct].copy_from_slice(&self.sp.cost);
        cost
    }

    /// Cold solve: phase 1 when artificials exist, then phase 2.
    fn run_cold(mut self) -> Result<SparseOutcome, LpError> {
        let max_iters = self.sp.max_iterations;
        let used_phase1 = !self.art_rows.is_empty();
        if used_phase1 {
            let mut cost = vec![0.0; self.total];
            for c in cost.iter_mut().skip(self.ncols) {
                *c = 1.0;
            }
            match self.primal(&cost, max_iters)? {
                PrimalEnd::Optimal => {}
                // phase 1 is bounded below by zero; an unbounded report is
                // numerical trouble
                PrimalEnd::Unbounded => return Err(LpError::IterationLimit),
            }
            let infeasibility: f64 = self.x[self.ncols..].iter().sum();
            if infeasibility > PHASE1_TOL {
                return Ok(SparseOutcome::Infeasible);
            }
            // pin artificials to zero and drive basic ones out where possible
            for j in self.ncols..self.total {
                self.lower[j] = 0.0;
                self.upper[j] = 0.0;
                if self.state[j] != ColState::Basic {
                    self.x[j] = 0.0;
                }
            }
            self.expel_artificials();
        }
        let cost = self.phase2_cost();
        match self.primal(&cost, max_iters)? {
            PrimalEnd::Optimal => Ok(SparseOutcome::Optimal(self.extract(used_phase1))),
            PrimalEnd::Unbounded => Ok(SparseOutcome::Unbounded),
        }
    }

    /// Warm solve: dual re-entry, then a primal polish. `Ok(None)` signals
    /// the caller to restart cold — including when either warm phase runs
    /// out of iterations, so the cold path gets its own fresh budget.
    fn run_warm(mut self) -> Result<Option<SparseOutcome>, LpError> {
        let max_iters = self.sp.max_iterations;
        let cost = self.phase2_cost();
        match self.dual(&cost, max_iters)? {
            DualEnd::Optimal => {}
            DualEnd::Infeasible => return Ok(Some(SparseOutcome::Infeasible)),
            DualEnd::Stalled => return Ok(None),
        }
        // polish: repair any residual dual infeasibility (usually a no-op)
        match self.primal(&cost, max_iters) {
            Ok(PrimalEnd::Optimal) => {
                let mut sol = self.extract(false);
                sol.warm_started = true;
                Ok(Some(SparseOutcome::Optimal(sol)))
            }
            Ok(PrimalEnd::Unbounded) => Ok(Some(SparseOutcome::Unbounded)),
            Err(LpError::IterationLimit) => Ok(None),
            Err(other) => Err(other),
        }
    }

    /// Pivots basic artificial columns out of the basis where a persistent
    /// column can replace them (mirrors the dense solver's post-phase-1
    /// cleanup; rows that stay artificial are redundant and keep a
    /// zero-fixed artificial basic).
    fn expel_artificials(&mut self) {
        let m = self.sp.m;
        for r in 0..m {
            if self.basic[r] < self.ncols {
                continue;
            }
            let mut e_r = vec![0.0; m];
            e_r[r] = 1.0;
            let rho = self.btran(e_r);
            let candidate = (0..self.ncols)
                .find(|&j| self.state[j] != ColState::Basic && self.col_dot(j, &rho).abs() > TOL);
            if let Some(j) = candidate {
                let w = self.ftran(self.col_dense(j));
                let art = self.basic[r];
                // the artificial sits at zero, so the swap moves nothing
                self.x[art] = 0.0;
                self.state[art] = ColState::AtLower;
                self.state[j] = ColState::Basic;
                self.apply_pivot(r, j, w);
                // entering keeps its bound value; it is now basic at it
            }
        }
    }

    /// Builds the outcome: cleaned structural values, original-direction
    /// objective and the reusable basis.
    fn extract(self, used_phase1: bool) -> SparseSolution {
        let mut values: Vec<f64> = self.x[..self.sp.n_struct].to_vec();
        for v in &mut values {
            if v.abs() < TOL {
                *v = 0.0;
            }
        }
        let objective = dot(&self.sp.objective, &values);
        let basis = if self.basic.iter().all(|&b| b < self.ncols) {
            Some(Basis {
                basic: self.basic,
                state: self.state[..self.ncols].to_vec(),
            })
        } else {
            None
        };
        SparseSolution {
            objective,
            values,
            pivots: self.pivots,
            used_phase1,
            warm_started: false,
            basis,
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, VarKind};
    use crate::simplex::{SimplexOutcome, SimplexSolver};

    fn optimal(outcome: SparseOutcome) -> SparseSolution {
        match outcome {
            SparseOutcome::Optimal(sol) => sol,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    use crate::test_rng::XorShift;

    #[test]
    fn simple_maximization_matches_dense() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 3.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 5.0);
        p.add_constraint("c1", &[(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint("c2", &[(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint("c3", &[(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let sol = optimal(SparseProblem::from_problem(&p).solve_cold(&[]).unwrap());
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 6.0).abs() < 1e-6);
        assert!(!sol.used_phase1, "an all-<= problem needs no phase 1");
    }

    #[test]
    fn ge_constraints_run_phase_one() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 2.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 3.0);
        p.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
        p.add_constraint("c2", &[(x, 1.0)], Sense::Ge, 3.0);
        let sol = optimal(SparseProblem::from_problem(&p).solve_cold(&[]).unwrap());
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!((sol.values[0] - 10.0).abs() < 1e-6);
        assert!(sol.used_phase1);
    }

    #[test]
    fn infeasible_and_unbounded_classification() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("lo", &[(x, 1.0)], Sense::Ge, 5.0);
        p.add_constraint("hi", &[(x, 1.0)], Sense::Le, 2.0);
        assert_eq!(
            SparseProblem::from_problem(&p).solve_cold(&[]).unwrap(),
            SparseOutcome::Infeasible
        );

        let mut p = Problem::maximize();
        let _x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 0.0);
        p.add_constraint("c", &[(y, 1.0)], Sense::Le, 4.0);
        assert_eq!(
            SparseProblem::from_problem(&p).solve_cold(&[]).unwrap(),
            SparseOutcome::Unbounded
        );
    }

    #[test]
    fn negative_rhs_needs_no_normalization() {
        // x >= 3 written as -x <= -3: the dense path flips the row sign and
        // re-derives the sense (`effective_sense`); the sparse path encodes
        // the sense in the slack bounds and must agree without any flip.
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, -1.0)], Sense::Le, -3.0);
        let sol = optimal(SparseProblem::from_problem(&p).solve_cold(&[]).unwrap());
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!(sol.used_phase1, "a negative-rhs <= row starts infeasible");
    }

    #[test]
    fn negative_rhs_of_every_sense_matches_dense() {
        // one case per sense with a negative right-hand side, checked
        // against the dense solver's `effective_sense` normalization
        for (sense, rhs) in [(Sense::Le, -3.0), (Sense::Ge, -8.0), (Sense::Eq, -5.0)] {
            let mut p = Problem::minimize();
            let x = p.add_var("x", VarKind::Continuous, 0.0, Some(20.0), 1.0);
            let y = p.add_var("y", VarKind::Continuous, 0.0, Some(20.0), 2.0);
            p.add_constraint("neg", &[(x, -1.0), (y, -1.0)], sense, rhs);
            let dense = SimplexSolver::from_problem(&p, &[]).solve_dense().unwrap();
            let sparse = SparseProblem::from_problem(&p).solve_cold(&[]).unwrap();
            match (dense, sparse) {
                (SimplexOutcome::Optimal { objective: od, .. }, SparseOutcome::Optimal(sol)) => {
                    assert!(
                        (od - sol.objective).abs() < 1e-6,
                        "{sense:?}: {od} vs sparse"
                    );
                }
                (SimplexOutcome::Infeasible, SparseOutcome::Infeasible) => {}
                (SimplexOutcome::Unbounded, SparseOutcome::Unbounded) => {}
                (d, s) => panic!("{sense:?}: dense {d:?} vs sparse {s:?}"),
            }
        }
    }

    #[test]
    fn extra_bounds_fold_into_column_bounds() {
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, Some(10.0), 1.0);
        let sp = SparseProblem::from_problem(&p);
        let sol = optimal(sp.solve_cold(&[(x, Sense::Le, 3.5)]).unwrap());
        assert!((sol.objective - 3.5).abs() < 1e-6);
        // crossing bounds are infeasible without any simplex work
        assert_eq!(
            sp.solve_cold(&[(x, Sense::Ge, 4.0), (x, Sense::Le, 2.0)])
                .unwrap(),
            SparseOutcome::Infeasible
        );
    }

    #[test]
    fn warm_start_agrees_with_cold_start_after_tightening() {
        // the branch-and-bound child relation: solve, tighten one bound,
        // re-enter from the parent basis
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, Some(8.0), 1.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, Some(8.0), 3.0);
        p.add_constraint("cover", &[(x, 2.0), (y, 5.0)], Sense::Ge, 19.0);
        p.add_constraint("cc", &[(x, 1.0), (y, 1.0)], Sense::Le, 8.0);
        let sp = SparseProblem::from_problem(&p);
        let root = optimal(sp.solve_cold(&[]).unwrap());
        let basis = root.basis.clone().expect("reusable basis");
        for bounds in [
            vec![(x, Sense::Le, 3.0)],
            vec![(x, Sense::Ge, 4.0)],
            vec![(y, Sense::Le, 2.0)],
            vec![(y, Sense::Ge, 4.0), (x, Sense::Le, 6.0)],
        ] {
            let warm = sp.solve_warm(&bounds, &basis).unwrap();
            let cold = sp.solve_cold(&bounds).unwrap();
            match (warm, cold) {
                (SparseOutcome::Optimal(w), SparseOutcome::Optimal(c)) => {
                    assert!(
                        (w.objective - c.objective).abs() < 1e-6,
                        "{bounds:?}: warm {} vs cold {}",
                        w.objective,
                        c.objective
                    );
                    assert!(!w.used_phase1, "warm re-entry must skip phase 1");
                    assert!(w.warm_started, "completed through the warm path");
                }
                (SparseOutcome::Infeasible, SparseOutcome::Infeasible) => {}
                (w, c) => panic!("{bounds:?}: warm {w:?} vs cold {c:?}"),
            }
        }
    }

    #[test]
    fn warm_start_detects_child_infeasibility() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, Some(10.0), 1.0);
        p.add_constraint("lo", &[(x, 1.0)], Sense::Ge, 6.0);
        let sp = SparseProblem::from_problem(&p);
        let root = optimal(sp.solve_cold(&[]).unwrap());
        let basis = root.basis.expect("reusable basis");
        assert_eq!(
            sp.solve_warm(&[(x, Sense::Le, 5.0)], &basis).unwrap(),
            SparseOutcome::Infeasible
        );
    }

    #[test]
    fn unconstrained_problems_sit_on_their_preferred_bounds() {
        let mut p = Problem::minimize();
        let _x = p.add_var("x", VarKind::Continuous, 2.0, None, 5.0);
        let _y = p.add_var("y", VarKind::Continuous, 0.0, Some(7.5), -1.0);
        let sol = optimal(SparseProblem::from_problem(&p).solve_cold(&[]).unwrap());
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
        assert!((sol.values[1] - 7.5).abs() < 1e-9);

        let mut p = Problem::minimize();
        let _x = p.add_var("x", VarKind::Continuous, 0.0, None, -1.0);
        assert_eq!(
            SparseProblem::from_problem(&p).solve_cold(&[]).unwrap(),
            SparseOutcome::Unbounded
        );
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut p = Problem::maximize();
        let x1 = p.add_var("x1", VarKind::Continuous, 0.0, None, 10.0);
        let x2 = p.add_var("x2", VarKind::Continuous, 0.0, None, -57.0);
        let x3 = p.add_var("x3", VarKind::Continuous, 0.0, None, -9.0);
        let x4 = p.add_var("x4", VarKind::Continuous, 0.0, None, -24.0);
        p.add_constraint(
            "c1",
            &[(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            "c2",
            &[(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint("c3", &[(x1, 1.0)], Sense::Le, 1.0);
        let sol = optimal(SparseProblem::from_problem(&p).solve_cold(&[]).unwrap());
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn randomized_relaxations_agree_with_dense() {
        // 120 random LPs over mixed senses, signs and bounds: the sparse
        // cold solve must classify identically to the dense tableau and
        // match its optimal objective
        let mut rng = XorShift(0x9E3779B97F4A7C15);
        for case in 0..120 {
            let nvars = 1 + rng.below(4);
            let nrows = 1 + rng.below(4);
            let maximize = rng.below(2) == 0;
            let mut p = if maximize {
                Problem::maximize()
            } else {
                Problem::minimize()
            };
            let vars: Vec<VarId> = (0..nvars)
                .map(|i| {
                    let lower = rng.uniform(0.0, 3.0);
                    let upper = if rng.below(2) == 0 {
                        Some(lower + rng.uniform(0.0, 10.0))
                    } else {
                        None
                    };
                    p.add_var(
                        format!("x{i}"),
                        VarKind::Continuous,
                        lower,
                        upper,
                        rng.uniform(-4.0, 4.0),
                    )
                })
                .collect();
            for r in 0..nrows {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &v in &vars {
                    if rng.below(4) != 0 {
                        terms.push((v, rng.uniform(-5.0, 5.0)));
                    }
                }
                let sense = match rng.below(3) {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                p.add_constraint(format!("c{r}"), &terms, sense, rng.uniform(-20.0, 20.0));
            }
            let dense = SimplexSolver::from_problem(&p, &[]).solve_dense();
            let sparse = SparseProblem::from_problem(&p).solve_cold(&[]);
            match (dense, sparse) {
                (
                    Ok(SimplexOutcome::Optimal { objective: od, .. }),
                    Ok(SparseOutcome::Optimal(sol)),
                ) => {
                    assert!(
                        (od - sol.objective).abs() < 1e-5,
                        "case {case}: dense {od} vs sparse {}",
                        sol.objective
                    );
                }
                (Ok(SimplexOutcome::Infeasible), Ok(SparseOutcome::Infeasible)) => {}
                (Ok(SimplexOutcome::Unbounded), Ok(SparseOutcome::Unbounded)) => {}
                // iteration-limit blowups must at least agree on erroring
                (Err(_), Err(_)) => {}
                (d, s) => panic!("case {case}: dense {d:?} vs sparse {s:?}"),
            }
        }
    }

    #[test]
    fn randomized_warm_starts_agree_with_cold() {
        // random covering problems, random bound tightenings from the root
        // basis: warm re-entry must match the cold objective every time
        let mut rng = XorShift(0xD1B54A32D192ED03);
        let mut skips = 0usize;
        for case in 0..80 {
            let nvars = 2 + rng.below(4);
            let mut p = Problem::minimize();
            let vars: Vec<VarId> = (0..nvars)
                .map(|i| {
                    p.add_var(
                        format!("x{i}"),
                        VarKind::Continuous,
                        0.0,
                        Some(10.0),
                        rng.uniform(0.1, 3.0),
                    )
                })
                .collect();
            let terms: Vec<(VarId, f64)> =
                vars.iter().map(|&v| (v, rng.uniform(1.0, 8.0))).collect();
            p.add_constraint("cover", &terms, Sense::Ge, rng.uniform(5.0, 40.0));
            let count: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
            p.add_constraint("cc", &count, Sense::Le, rng.uniform(4.0, 20.0));
            let sp = SparseProblem::from_problem(&p);
            let SparseOutcome::Optimal(root) = sp.solve_cold(&[]).unwrap() else {
                continue;
            };
            let basis = root.basis.expect("reusable basis");
            for _ in 0..4 {
                let v = vars[rng.below(nvars)];
                let bound = rng.uniform(0.0, 9.0).floor();
                let bounds = if rng.below(2) == 0 {
                    vec![(v, Sense::Le, bound)]
                } else {
                    vec![(v, Sense::Ge, bound)]
                };
                let warm = sp.solve_warm(&bounds, &basis).unwrap();
                let cold = sp.solve_cold(&bounds).unwrap();
                match (warm, cold) {
                    (SparseOutcome::Optimal(w), SparseOutcome::Optimal(c)) => {
                        assert!(
                            (w.objective - c.objective).abs() < 1e-5,
                            "case {case} {bounds:?}: warm {} vs cold {}",
                            w.objective,
                            c.objective
                        );
                        if w.warm_started {
                            skips += 1;
                        }
                    }
                    (SparseOutcome::Infeasible, SparseOutcome::Infeasible) => {}
                    (w, c) => panic!("case {case} {bounds:?}: warm {w:?} vs cold {c:?}"),
                }
            }
        }
        assert!(
            skips > 50,
            "warm starts should usually skip phase 1: {skips}"
        );
    }
}
