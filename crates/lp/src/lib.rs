//! # mca-lp — linear and integer linear programming substrate
//!
//! The resource-allocation model of *Modeling Mobile Code Acceleration in the
//! Cloud* (ICDCS 2017, §IV-C) minimizes the hourly cost of the cloud instances
//! allocated to serve a predicted offloading workload, subject to per
//! acceleration-group capacity constraints and the cloud account instance cap.
//! The authors solved this with R's `lpSolveAPI`; this crate provides an
//! equivalent, dependency-free solver:
//!
//! * [`Problem`] — a small modelling API (continuous and integer variables,
//!   linear constraints, minimize/maximize objectives),
//! * a sparse **revised simplex** with a factorized basis and warm-started
//!   re-entry ([`SparseProblem`], [`Basis`]) — the default LP engine,
//! * a two-phase dense tableau simplex kept as the reference implementation
//!   ([`SimplexSolver::solve_dense`]), and
//! * **branch-and-bound** for integrality (configured by
//!   [`BranchBoundOptions`]); with the default [`LpBackend`] every child
//!   node warm-starts from its parent's optimal basis instead of solving
//!   cold.
//!
//! The allocation instances produced by the paper's model grow with the
//! instance-type catalogue (one variable per group × type); the revised
//! simplex keeps the basis at the size of the constraint system so the
//! per-node cost no longer scales with the variable count.
//!
//! # Example
//!
//! Minimize `3x + 5y` subject to `x + 2y >= 8`, `x + y <= 6`, integer `x, y`:
//!
//! ```
//! use mca_lp::{Problem, Sense, VarKind};
//!
//! # fn main() -> Result<(), mca_lp::LpError> {
//! let mut p = Problem::minimize();
//! let x = p.add_var("x", VarKind::Integer, 0.0, None, 3.0);
//! let y = p.add_var("y", VarKind::Integer, 0.0, None, 5.0);
//! p.add_constraint("cap", &[(x, 1.0), (y, 2.0)], Sense::Ge, 8.0);
//! p.add_constraint("cc", &[(x, 1.0), (y, 1.0)], Sense::Le, 6.0);
//! let sol = p.solve()?;
//! assert!((sol.objective - 20.0).abs() < 1e-6); // x = 0, y = 4
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod expr;
mod model;
mod simplex;
mod sparse;
#[cfg(test)]
pub(crate) mod test_rng;

pub use branch_bound::{BranchBoundOptions, LpBackend};
pub use error::LpError;
pub use expr::{LinearExpr, VarId};
pub use model::{Constraint, Objective, Problem, Sense, Solution, SolveStats, VarKind, Variable};
pub use simplex::{SimplexOutcome, SimplexSolver};
pub use sparse::{Basis, SparseOutcome, SparseProblem, SparseSolution};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_example_solves() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, None, 3.0);
        let y = p.add_var("y", VarKind::Integer, 0.0, None, 5.0);
        p.add_constraint("cap", &[(x, 1.0), (y, 2.0)], Sense::Ge, 8.0);
        p.add_constraint("cc", &[(x, 1.0), (y, 1.0)], Sense::Le, 6.0);
        let sol = p.solve().expect("feasible");
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!((sol.value(x) - 0.0).abs() < 1e-6);
        assert!((sol.value(y) - 4.0).abs() < 1e-6);
    }
}
