//! # mca-lp — linear and integer linear programming substrate
//!
//! The resource-allocation model of *Modeling Mobile Code Acceleration in the
//! Cloud* (ICDCS 2017, §IV-C) minimizes the hourly cost of the cloud instances
//! allocated to serve a predicted offloading workload, subject to per
//! acceleration-group capacity constraints and the cloud account instance cap.
//! The authors solved this with R's `lpSolveAPI`; this crate provides an
//! equivalent, dependency-free solver:
//!
//! * [`Problem`] — a small modelling API (continuous and integer variables,
//!   linear constraints, minimize/maximize objectives),
//! * a two-phase dense **primal simplex** for the LP relaxation
//!   ([`SimplexSolver`]), and
//! * **branch-and-bound** for integrality (configured by
//!   [`BranchBoundOptions`]).
//!
//! The allocation instances produced by the paper's model are tiny (one
//! variable per instance type, a handful of constraints), so an exact
//! branch-and-bound search is both practical and reproducible.
//!
//! # Example
//!
//! Minimize `3x + 5y` subject to `x + 2y >= 8`, `x + y <= 6`, integer `x, y`:
//!
//! ```
//! use mca_lp::{Problem, Sense, VarKind};
//!
//! # fn main() -> Result<(), mca_lp::LpError> {
//! let mut p = Problem::minimize();
//! let x = p.add_var("x", VarKind::Integer, 0.0, None, 3.0);
//! let y = p.add_var("y", VarKind::Integer, 0.0, None, 5.0);
//! p.add_constraint("cap", &[(x, 1.0), (y, 2.0)], Sense::Ge, 8.0);
//! p.add_constraint("cc", &[(x, 1.0), (y, 1.0)], Sense::Le, 6.0);
//! let sol = p.solve()?;
//! assert!((sol.objective - 20.0).abs() < 1e-6); // x = 0, y = 4
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
mod error;
mod expr;
mod model;
mod simplex;

pub use branch_bound::BranchBoundOptions;
pub use error::LpError;
pub use expr::{LinearExpr, VarId};
pub use model::{Constraint, Objective, Problem, Sense, Solution, SolveStats, VarKind, Variable};
pub use simplex::{SimplexOutcome, SimplexSolver};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readme_example_solves() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Integer, 0.0, None, 3.0);
        let y = p.add_var("y", VarKind::Integer, 0.0, None, 5.0);
        p.add_constraint("cap", &[(x, 1.0), (y, 2.0)], Sense::Ge, 8.0);
        p.add_constraint("cc", &[(x, 1.0), (y, 1.0)], Sense::Le, 6.0);
        let sol = p.solve().expect("feasible");
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!((sol.value(x) - 0.0).abs() < 1e-6);
        assert!((sol.value(y) - 4.0).abs() < 1e-6);
    }
}
