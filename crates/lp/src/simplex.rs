//! Two-phase dense primal simplex used for LP relaxations.
//!
//! The implementation follows the classic tableau method:
//!
//! 1. every variable is shifted so that its lower bound becomes zero,
//! 2. upper bounds and branch-and-bound bounds become ordinary rows,
//! 3. rows are normalized to a non-negative right-hand side and augmented
//!    with slack, surplus and artificial columns,
//! 4. phase one minimizes the sum of artificials (infeasibility certificate),
//! 5. phase two minimizes the user objective with artificials barred from
//!    entering the basis.
//!
//! Bland's anti-cycling rule is used for both the entering and leaving
//! variable choices, which guarantees termination at the price of a few more
//! pivots — irrelevant at the problem sizes produced by the resource
//! allocator (tens of columns).

use crate::error::LpError;
use crate::model::{Objective, Problem, Sense};
use crate::VarId;

const TOL: f64 = 1e-9;

/// Result of running the simplex method on an LP relaxation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexOutcome {
    /// An optimal basic feasible solution was found.
    Optimal {
        /// Objective value in the original problem's direction.
        objective: f64,
        /// Values of the structural (user) variables.
        values: Vec<f64>,
        /// Number of pivots performed across both phases.
        pivots: usize,
    },
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

#[derive(Debug, Clone, Copy)]
struct Row {
    sense: Sense,
    rhs: f64,
}

/// Dense two-phase primal simplex solver.
///
/// Construct with [`SimplexSolver::from_problem`], optionally passing extra
/// single-variable bounds (used by branch-and-bound), then call
/// [`SimplexSolver::solve`].
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    /// Objective coefficients over structural variables (original direction).
    objective: Vec<f64>,
    maximize: bool,
    rows: Vec<Row>,
    /// Row-major `rows.len() × n_struct` constraint coefficients, one flat
    /// allocation for all rows.
    coeffs: Vec<f64>,
    lowers: Vec<f64>,
    n_struct: usize,
    max_iterations: usize,
}

impl SimplexSolver {
    /// Builds a solver for the LP relaxation of `problem`, with additional
    /// single-variable bounds `extra_bounds` (each `(var, sense, rhs)` is the
    /// constraint `var sense rhs`), as imposed by branch-and-bound.
    pub fn from_problem(problem: &Problem, extra_bounds: &[(VarId, Sense, f64)]) -> Self {
        let n = problem.num_vars();
        let lowers: Vec<f64> = problem.variables().iter().map(|v| v.lower).collect();
        let objective: Vec<f64> = problem.variables().iter().map(|v| v.objective).collect();
        let maximize = problem.objective_sense() == Objective::Maximize;

        // one allocation for all rows and one for all coefficients, instead
        // of a fresh `vec![0.0; n]` per row
        let upper_bound_count = problem
            .variables()
            .iter()
            .filter(|v| v.upper.is_some())
            .count();
        let row_count = problem.constraints().len() + upper_bound_count + extra_bounds.len();
        let mut rows = Vec::with_capacity(row_count);
        let mut coeffs = vec![0.0; row_count * n];
        fn coeff_row(coeffs: &mut [f64], n: usize, row: usize) -> &mut [f64] {
            &mut coeffs[row * n..(row + 1) * n]
        }

        // user constraints, shifted by lower bounds
        for c in problem.constraints() {
            let row = coeff_row(&mut coeffs, n, rows.len());
            let mut shift = 0.0;
            for (v, a) in c.expr.iter() {
                row[v.index()] = a;
                shift += a * lowers[v.index()];
            }
            rows.push(Row {
                sense: c.sense,
                rhs: c.rhs - shift,
            });
        }
        // upper bounds as rows
        for (j, v) in problem.variables().iter().enumerate() {
            if let Some(up) = v.upper {
                coeff_row(&mut coeffs, n, rows.len())[j] = 1.0;
                rows.push(Row {
                    sense: Sense::Le,
                    rhs: up - lowers[j],
                });
            }
        }
        // branch-and-bound bounds as rows
        for &(var, sense, rhs) in extra_bounds {
            coeff_row(&mut coeffs, n, rows.len())[var.index()] = 1.0;
            rows.push(Row {
                sense,
                rhs: rhs - lowers[var.index()],
            });
        }
        debug_assert_eq!(rows.len(), row_count);

        Self {
            objective,
            maximize,
            rows,
            coeffs,
            lowers,
            n_struct: n,
            max_iterations: 20_000,
        }
    }

    /// Overrides the pivot iteration budget (default 20 000).
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Runs the two-phase simplex method.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::IterationLimit`] if the pivot budget is exhausted
    /// (which indicates numerical trouble for well-posed inputs).
    pub fn solve(&self) -> Result<SimplexOutcome, LpError> {
        self.solve_dense()
    }

    /// Runs the two-phase **dense tableau** simplex. This is the reference
    /// implementation the sparse revised simplex
    /// ([`crate::SparseProblem`]) is property-tested against; production
    /// paths use the revised solver.
    ///
    /// # Errors
    ///
    /// See [`SimplexSolver::solve`].
    pub fn solve_dense(&self) -> Result<SimplexOutcome, LpError> {
        let n = self.n_struct;
        let m = self.rows.len();
        if m == 0 {
            // No constraints: optimum is at the (shifted) origin unless a
            // negative cost direction is unbounded above.
            let min_costs: Vec<f64> = self
                .objective
                .iter()
                .map(|&c| if self.maximize { -c } else { c })
                .collect();
            if min_costs.iter().any(|&c| c < -TOL) {
                return Ok(SimplexOutcome::Unbounded);
            }
            let values = self.lowers.clone();
            let objective = dot(&self.objective, &values);
            return Ok(SimplexOutcome::Optimal {
                objective,
                values,
                pivots: 0,
            });
        }

        // Column layout: [structural | slack/surplus | artificial]
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for r in &self.rows {
            let rhs_nonneg = r.rhs >= 0.0;
            let sense = effective_sense(r.sense, rhs_nonneg);
            match sense {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }
        let ncols = n + n_slack + n_art;
        let mut tableau = vec![vec![0.0; ncols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_cursor = n;
        let mut art_cursor = n + n_slack;
        let mut artificial_cols = Vec::new();

        for (i, r) in self.rows.iter().enumerate() {
            let flip = r.rhs < 0.0;
            let sign = if flip { -1.0 } else { 1.0 };
            let coeffs = &self.coeffs[i * n..(i + 1) * n];
            for (cell, &coeff) in tableau[i].iter_mut().zip(coeffs) {
                *cell = sign * coeff;
            }
            tableau[i][ncols] = sign * r.rhs;
            let sense = effective_sense(r.sense, !flip);
            match sense {
                Sense::Le => {
                    tableau[i][slack_cursor] = 1.0;
                    basis[i] = slack_cursor;
                    slack_cursor += 1;
                }
                Sense::Ge => {
                    tableau[i][slack_cursor] = -1.0;
                    slack_cursor += 1;
                    tableau[i][art_cursor] = 1.0;
                    basis[i] = art_cursor;
                    artificial_cols.push(art_cursor);
                    art_cursor += 1;
                }
                Sense::Eq => {
                    tableau[i][art_cursor] = 1.0;
                    basis[i] = art_cursor;
                    artificial_cols.push(art_cursor);
                    art_cursor += 1;
                }
            }
        }

        let is_artificial = |col: usize| col >= n + n_slack;
        let mut pivots = 0usize;

        // ----- Phase 1: minimize sum of artificials -----
        if n_art > 0 {
            let mut obj_row = vec![0.0; ncols + 1];
            for &c in &artificial_cols {
                obj_row[c] = 1.0;
            }
            // price out basic artificials
            for i in 0..m {
                if is_artificial(basis[i]) {
                    for j in 0..=ncols {
                        obj_row[j] -= tableau[i][j];
                    }
                }
            }
            pivots += self.iterate(&mut tableau, &mut obj_row, &mut basis, ncols, |_| true)?;
            let phase1_value = -obj_row[ncols];
            if phase1_value > 1e-7 {
                return Ok(SimplexOutcome::Infeasible);
            }
            // Drive artificials out of the basis where possible so that they
            // can never re-enter with a positive value during phase 2.
            for i in 0..m {
                if is_artificial(basis[i]) {
                    if let Some(j) = (0..n + n_slack).find(|&j| tableau[i][j].abs() > TOL) {
                        pivot(&mut tableau, &mut basis, i, j, ncols);
                        pivots += 1;
                    }
                }
            }
        }

        // ----- Phase 2: minimize the user objective -----
        let min_costs: Vec<f64> = self
            .objective
            .iter()
            .map(|&c| if self.maximize { -c } else { c })
            .collect();
        let mut obj_row = vec![0.0; ncols + 1];
        obj_row[..n].copy_from_slice(&min_costs);
        for i in 0..m {
            let b = basis[i];
            let cb = if b < n { min_costs[b] } else { 0.0 };
            if cb != 0.0 {
                for j in 0..=ncols {
                    obj_row[j] -= cb * tableau[i][j];
                }
            }
        }
        let allowed = |col: usize| !is_artificial(col);
        match self.iterate_checked(&mut tableau, &mut obj_row, &mut basis, ncols, allowed) {
            Ok(p) => pivots += p,
            Err(IterateError::Unbounded) => return Ok(SimplexOutcome::Unbounded),
            Err(IterateError::IterationLimit) => return Err(LpError::IterationLimit),
        }

        // Extract structural values (shift lower bounds back in).
        let mut values = vec![0.0; n];
        for i in 0..m {
            if basis[i] < n {
                values[basis[i]] = tableau[i][ncols];
            }
        }
        for (j, v) in values.iter_mut().enumerate() {
            *v += self.lowers[j];
            if v.abs() < TOL {
                *v = 0.0;
            }
        }
        let objective = dot(&self.objective, &values);
        Ok(SimplexOutcome::Optimal {
            objective,
            values,
            pivots,
        })
    }

    fn iterate(
        &self,
        tableau: &mut [Vec<f64>],
        obj_row: &mut [f64],
        basis: &mut [usize],
        ncols: usize,
        allowed: impl Fn(usize) -> bool,
    ) -> Result<usize, LpError> {
        match self.iterate_checked(tableau, obj_row, basis, ncols, allowed) {
            Ok(p) => Ok(p),
            // Phase 1 can never be unbounded (objective bounded below by 0);
            // map it to an iteration-limit style failure defensively.
            Err(IterateError::Unbounded) => Err(LpError::IterationLimit),
            Err(IterateError::IterationLimit) => Err(LpError::IterationLimit),
        }
    }

    fn iterate_checked(
        &self,
        tableau: &mut [Vec<f64>],
        obj_row: &mut [f64],
        basis: &mut [usize],
        ncols: usize,
        allowed: impl Fn(usize) -> bool,
    ) -> Result<usize, IterateError> {
        let m = tableau.len();
        for pivots in 0..self.max_iterations {
            // Bland's rule: smallest index with negative reduced cost.
            let entering = (0..ncols).find(|&j| allowed(j) && obj_row[j] < -TOL);
            let Some(col) = entering else {
                return Ok(pivots);
            };
            // Ratio test with Bland tie-breaking on the basis index.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..m {
                let a = tableau[i][col];
                if a > TOL {
                    let ratio = tableau[i][ncols] / a;
                    match best {
                        None => best = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - TOL
                                || ((ratio - br).abs() <= TOL && basis[i] < basis[bi])
                            {
                                best = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(IterateError::Unbounded);
            };
            pivot_with_obj(tableau, obj_row, basis, row, col, ncols);
        }
        Err(IterateError::IterationLimit)
    }
}

enum IterateError {
    Unbounded,
    IterationLimit,
}

fn effective_sense(sense: Sense, rhs_nonneg: bool) -> Sense {
    if rhs_nonneg {
        sense
    } else {
        match sense {
            Sense::Le => Sense::Ge,
            Sense::Ge => Sense::Le,
            Sense::Eq => Sense::Eq,
        }
    }
}

fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, ncols: usize) {
    let p = tableau[row][col];
    for cell in tableau[row].iter_mut().take(ncols + 1) {
        *cell /= p;
    }
    let (above, rest) = tableau.split_at_mut(row);
    let (pivot_row, below) = rest.split_first_mut().expect("pivot row exists");
    for other in above.iter_mut().chain(below.iter_mut()) {
        let factor = other[col];
        if factor.abs() > 0.0 {
            for (cell, &pivot_cell) in other.iter_mut().zip(pivot_row.iter()).take(ncols + 1) {
                *cell -= factor * pivot_cell;
            }
        }
    }
    basis[row] = col;
}

fn pivot_with_obj(
    tableau: &mut [Vec<f64>],
    obj_row: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    ncols: usize,
) {
    pivot(tableau, basis, row, col, ncols);
    let factor = obj_row[col];
    if factor.abs() > 0.0 {
        for (cell, &pivot_cell) in obj_row.iter_mut().zip(tableau[row].iter()).take(ncols + 1) {
            *cell -= factor * pivot_cell;
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, VarKind};

    fn optimal(outcome: SimplexOutcome) -> (f64, Vec<f64>) {
        match outcome {
            SimplexOutcome::Optimal {
                objective, values, ..
            } => (objective, values),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2, 6)
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 3.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 5.0);
        p.add_constraint("c1", &[(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint("c2", &[(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint("c3", &[(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let (obj, vals) = optimal(SimplexSolver::from_problem(&p, &[]).solve().unwrap());
        assert!((obj - 36.0).abs() < 1e-6);
        assert!((vals[0] - 2.0).abs() < 1e-6);
        assert!((vals[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // min 2x + 3y s.t. x + y >= 10, x >= 3 -> (10, 0)? check: x+y>=10, x>=3.
        // cost 2x+3y minimized by taking all x: x=10,y=0 -> 20.
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 2.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 3.0);
        p.add_constraint("c1", &[(x, 1.0), (y, 1.0)], Sense::Ge, 10.0);
        p.add_constraint("c2", &[(x, 1.0)], Sense::Ge, 3.0);
        let (obj, vals) = optimal(SimplexSolver::from_problem(&p, &[]).solve().unwrap());
        assert!((obj - 20.0).abs() < 1e-6);
        assert!((vals[0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_system() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("lo", &[(x, 1.0)], Sense::Ge, 5.0);
        p.add_constraint("hi", &[(x, 1.0)], Sense::Le, 2.0);
        assert_eq!(
            SimplexSolver::from_problem(&p, &[]).solve().unwrap(),
            SimplexOutcome::Infeasible
        );
    }

    #[test]
    fn unbounded_maximization() {
        let mut p = Problem::maximize();
        let _x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        let y = p.add_var("y", VarKind::Continuous, 0.0, None, 0.0);
        p.add_constraint("c", &[(y, 1.0)], Sense::Le, 4.0);
        // x does not appear in any constraint -> unbounded above
        assert_eq!(
            SimplexSolver::from_problem(&p, &[]).solve().unwrap(),
            SimplexOutcome::Unbounded
        );
    }

    #[test]
    fn no_constraints_origin_optimum() {
        let mut p = Problem::minimize();
        let _x = p.add_var("x", VarKind::Continuous, 2.0, None, 5.0);
        let (obj, vals) = optimal(SimplexSolver::from_problem(&p, &[]).solve().unwrap());
        assert!((vals[0] - 2.0).abs() < 1e-9);
        assert!((obj - 10.0).abs() < 1e-9);
    }

    #[test]
    fn no_constraints_unbounded_min() {
        let mut p = Problem::minimize();
        let _x = p.add_var("x", VarKind::Continuous, 0.0, None, -1.0);
        assert_eq!(
            SimplexSolver::from_problem(&p, &[]).solve().unwrap(),
            SimplexOutcome::Unbounded
        );
    }

    #[test]
    fn equality_and_lower_bound_shift() {
        // min x + 4y s.t. x + y = 8, lower bounds x>=1, y>=2 -> x=6, y=2, obj 14
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 1.0, None, 1.0);
        let y = p.add_var("y", VarKind::Continuous, 2.0, None, 4.0);
        p.add_constraint("sum", &[(x, 1.0), (y, 1.0)], Sense::Eq, 8.0);
        let (obj, vals) = optimal(SimplexSolver::from_problem(&p, &[]).solve().unwrap());
        assert!((obj - 14.0).abs() < 1e-6, "obj={obj}");
        assert!((vals[0] - 6.0).abs() < 1e-6);
        assert!((vals[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn extra_bounds_constrain_solution() {
        // max x s.t. x <= 10, extra bound x <= 3.5
        let mut p = Problem::maximize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, Some(10.0), 1.0);
        let solver = SimplexSolver::from_problem(&p, &[(x, Sense::Le, 3.5)]);
        let (obj, _) = optimal(solver.solve().unwrap());
        assert!((obj - 3.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP; Bland's rule must terminate.
        let mut p = Problem::maximize();
        let x1 = p.add_var("x1", VarKind::Continuous, 0.0, None, 10.0);
        let x2 = p.add_var("x2", VarKind::Continuous, 0.0, None, -57.0);
        let x3 = p.add_var("x3", VarKind::Continuous, 0.0, None, -9.0);
        let x4 = p.add_var("x4", VarKind::Continuous, 0.0, None, -24.0);
        p.add_constraint(
            "c1",
            &[(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            "c2",
            &[(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint("c3", &[(x1, 1.0)], Sense::Le, 1.0);
        let (obj, _) = optimal(SimplexSolver::from_problem(&p, &[]).solve().unwrap());
        assert!((obj - 1.0).abs() < 1e-6);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x >= 3 written as -x <= -3
        let mut p = Problem::minimize();
        let x = p.add_var("x", VarKind::Continuous, 0.0, None, 1.0);
        p.add_constraint("c", &[(x, -1.0)], Sense::Le, -3.0);
        let (obj, _) = optimal(SimplexSolver::from_problem(&p, &[]).solve().unwrap());
        assert!((obj - 3.0).abs() < 1e-6);
    }
}
