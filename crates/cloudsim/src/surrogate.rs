//! The Dalvik-x86 surrogate model (§V).
//!
//! The paper builds a stripped-down Dalvik-x86 AMI (no Applications /
//! Application Framework layers, no Zygote, no GUI manager) that is ≈40 %
//! smaller than an Android-x86 surrogate, boots the compiler through an
//! executable wrapper, preloads the available APKs and spawns one `dalvikvm`
//! process per offloading request (each APK can be instantiated on several
//! ports). This module models those mechanics: storage footprint, APK
//! registry, per-request worker processes with ports, and the per-request
//! spawn overhead that feeds the server model.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Storage footprint of a full Android-x86 surrogate image, MiB.
pub const ANDROID_X86_IMAGE_MIB: f64 = 1_800.0;
/// Relative size reduction the custom Dalvik-x86 build achieves (§V: ≈40 %).
pub const DALVIK_X86_SIZE_REDUCTION: f64 = 0.40;

/// An application package registered with the surrogate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApkPackage {
    /// Identifier used by offload requests.
    pub apk_id: u32,
    /// Human-readable package name.
    pub name: String,
    /// Size of the APK in KiB (affects push time at boot).
    pub size_kib: u32,
}

/// Errors reported by the surrogate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurrogateError {
    /// A request referenced an APK that was never pushed to the surrogate.
    UnknownApk {
        /// The requested APK id.
        apk_id: u32,
    },
    /// All worker slots are busy.
    NoFreePort,
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurrogateError::UnknownApk { apk_id } => write!(f, "unknown apk id {apk_id}"),
            SurrogateError::NoFreePort => write!(f, "no free worker port available"),
        }
    }
}

impl std::error::Error for SurrogateError {}

/// A running `dalvikvm` worker process serving one offloading request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerProcess {
    /// Operating-system process id (monotonically increasing in the model).
    pub pid: u32,
    /// TCP port the worker listens on.
    pub port: u16,
    /// APK the worker is executing.
    pub apk_id: u32,
}

/// The Dalvik-x86 surrogate running on one cloud instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DalvikSurrogate {
    apks: HashMap<u32, ApkPackage>,
    workers: HashMap<u32, WorkerProcess>,
    next_pid: u32,
    base_port: u16,
    max_workers: usize,
    /// Per-request process spawn overhead in milliseconds (feeds the server
    /// model's `per_request_overhead_ms`).
    pub spawn_overhead_ms: f64,
}

impl DalvikSurrogate {
    /// Boots a surrogate with a worker-slot budget (one slot per outstanding
    /// request the instance is willing to hold).
    pub fn boot(max_workers: usize) -> Self {
        Self {
            apks: HashMap::new(),
            workers: HashMap::new(),
            next_pid: 1,
            base_port: 42_000,
            max_workers,
            spawn_overhead_ms: 18.0,
        }
    }

    /// Storage footprint of the stripped Dalvik-x86 image, MiB (≈40 % smaller
    /// than Android-x86, §V).
    pub fn image_size_mib() -> f64 {
        ANDROID_X86_IMAGE_MIB * (1.0 - DALVIK_X86_SIZE_REDUCTION)
    }

    /// Pushes an APK into the surrogate (done for every APK found in the OS
    /// folder when the server initiates).
    pub fn push_apk(&mut self, apk: ApkPackage) {
        self.apks.insert(apk.apk_id, apk);
    }

    /// Registered APKs.
    pub fn apks(&self) -> impl Iterator<Item = &ApkPackage> {
        self.apks.values()
    }

    /// Number of running worker processes.
    pub fn active_workers(&self) -> usize {
        self.workers.len()
    }

    /// Spawns a `dalvikvm` worker for a request against `apk_id`.
    ///
    /// # Errors
    ///
    /// Returns [`SurrogateError::UnknownApk`] if the APK was never pushed and
    /// [`SurrogateError::NoFreePort`] when every worker slot is busy.
    pub fn spawn_worker(&mut self, apk_id: u32) -> Result<WorkerProcess, SurrogateError> {
        if !self.apks.contains_key(&apk_id) {
            return Err(SurrogateError::UnknownApk { apk_id });
        }
        if self.workers.len() >= self.max_workers {
            return Err(SurrogateError::NoFreePort);
        }
        // find the lowest free port offset
        let used: std::collections::HashSet<u16> = self.workers.values().map(|w| w.port).collect();
        let port = (0..self.max_workers as u16)
            .map(|off| self.base_port + off)
            .find(|p| !used.contains(p))
            .expect("a free port exists because workers < max_workers");
        let pid = self.next_pid;
        self.next_pid += 1;
        let worker = WorkerProcess { pid, port, apk_id };
        self.workers.insert(pid, worker);
        Ok(worker)
    }

    /// Terminates the worker with the given pid (used to troubleshoot a
    /// problematic request without restarting the system, §V). Returns `true`
    /// if a worker was terminated.
    pub fn kill_worker(&mut self, pid: u32) -> bool {
        self.workers.remove(&pid).is_some()
    }

    /// Time to push all registered APKs into the VM at boot, ms (about 1 ms
    /// per 100 KiB).
    pub fn boot_push_time_ms(&self) -> f64 {
        self.apks
            .values()
            .map(|a| f64::from(a.size_kib) / 100.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apk(id: u32) -> ApkPackage {
        ApkPackage {
            apk_id: id,
            name: format!("app{id}"),
            size_kib: 2_000,
        }
    }

    #[test]
    fn image_is_forty_percent_smaller() {
        assert!((DalvikSurrogate::image_size_mib() - 1_080.0).abs() < 1e-9);
    }

    #[test]
    fn spawn_requires_registered_apk() {
        let mut s = DalvikSurrogate::boot(4);
        assert_eq!(
            s.spawn_worker(7),
            Err(SurrogateError::UnknownApk { apk_id: 7 })
        );
        s.push_apk(apk(7));
        let w = s.spawn_worker(7).unwrap();
        assert_eq!(w.apk_id, 7);
        assert_eq!(s.active_workers(), 1);
    }

    #[test]
    fn one_process_per_request_with_distinct_ports_and_pids() {
        let mut s = DalvikSurrogate::boot(8);
        s.push_apk(apk(1));
        let workers: Vec<_> = (0..8).map(|_| s.spawn_worker(1).unwrap()).collect();
        let pids: std::collections::HashSet<_> = workers.iter().map(|w| w.pid).collect();
        let ports: std::collections::HashSet<_> = workers.iter().map(|w| w.port).collect();
        assert_eq!(pids.len(), 8);
        assert_eq!(ports.len(), 8, "each APK instance listens on its own port");
        assert_eq!(s.spawn_worker(1), Err(SurrogateError::NoFreePort));
    }

    #[test]
    fn killing_a_worker_frees_its_slot_and_port() {
        let mut s = DalvikSurrogate::boot(2);
        s.push_apk(apk(1));
        let a = s.spawn_worker(1).unwrap();
        let _b = s.spawn_worker(1).unwrap();
        assert!(s.kill_worker(a.pid));
        assert!(!s.kill_worker(a.pid), "double kill reports false");
        let c = s.spawn_worker(1).unwrap();
        assert_eq!(c.port, a.port, "freed port is reused");
        assert_ne!(c.pid, a.pid, "pids are never reused");
    }

    #[test]
    fn boot_push_time_scales_with_apk_sizes() {
        let mut s = DalvikSurrogate::boot(2);
        assert_eq!(s.boot_push_time_ms(), 0.0);
        s.push_apk(apk(1));
        s.push_apk(apk(2));
        assert!((s.boot_push_time_ms() - 40.0).abs() < 1e-9);
        assert_eq!(s.apks().count(), 2);
    }
}
