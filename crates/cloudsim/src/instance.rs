//! The EC2-like instance catalogue used by the paper's testbed.
//!
//! Prices are the published 2016/2017 on-demand prices for the EU (Ireland)
//! region — the region the paper deploys in — rounded to the cent. Per-core
//! speed factors are calibrated so that the single-task acceleration ratios of
//! Fig. 5 hold: a level-2 instance executes a task ≈1.25× faster than a
//! level-1 instance, a level-3 instance ≈1.73× faster than level 1 (and
//! ≈1.36× faster than level 2). The c4.8xlarge added in §VI-B sits above all
//! of them (level 4).

use mca_snapshot::{Cursor, Restore, Snapshot, SnapshotError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Instance types used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum InstanceType {
    /// t2.nano — 1 vCPU, 0.5 GiB (anomalously strong, see Fig. 6).
    T2Nano,
    /// t2.micro — 1 vCPU, 1 GiB, free-tier eligible (anomalously weak).
    T2Micro,
    /// t2.small — 1 vCPU, 2 GiB.
    T2Small,
    /// t2.medium — 2 vCPU, 4 GiB.
    T2Medium,
    /// t2.large — 2 vCPU, 8 GiB.
    T2Large,
    /// m4.4xlarge — 16 vCPU, 64 GiB.
    M4_4XLarge,
    /// m4.10xlarge — 40 vCPU, 160 GiB.
    M4_10XLarge,
    /// c4.8xlarge — 36 vCPU, 60 GiB, compute optimized (level 4 in §VI-B).
    C4_8XLarge,
}

impl Snapshot for InstanceType {
    fn encode(&self, out: &mut Vec<u8>) {
        self.wire_tag().encode(out);
    }
}

impl Restore for InstanceType {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, SnapshotError> {
        let tag = u8::decode(cur)?;
        InstanceType::ALL
            .get(tag as usize)
            .copied()
            .ok_or(SnapshotError::Malformed {
                context: "instance type tag",
            })
    }
}

impl InstanceType {
    /// Every instance type the paper benchmarks, in catalogue order.
    pub const ALL: [InstanceType; 8] = [
        InstanceType::T2Nano,
        InstanceType::T2Micro,
        InstanceType::T2Small,
        InstanceType::T2Medium,
        InstanceType::T2Large,
        InstanceType::M4_4XLarge,
        InstanceType::M4_10XLarge,
        InstanceType::C4_8XLarge,
    ];

    /// The six general-purpose instances of the Fig. 4 characterization.
    pub const FIG4_SET: [InstanceType; 6] = [
        InstanceType::T2Nano,
        InstanceType::T2Micro,
        InstanceType::T2Small,
        InstanceType::T2Medium,
        InstanceType::T2Large,
        InstanceType::M4_10XLarge,
    ];

    /// Stable wire tag: the position in [`InstanceType::ALL`] (catalogue
    /// order, which new types must extend at the end).
    fn wire_tag(self) -> u8 {
        Self::ALL
            .iter()
            .position(|t| *t == self)
            .expect("every instance type is in the catalogue") as u8
    }

    /// The API name of the instance type (e.g. `"t2.nano"`).
    pub fn api_name(self) -> &'static str {
        match self {
            InstanceType::T2Nano => "t2.nano",
            InstanceType::T2Micro => "t2.micro",
            InstanceType::T2Small => "t2.small",
            InstanceType::T2Medium => "t2.medium",
            InstanceType::T2Large => "t2.large",
            InstanceType::M4_4XLarge => "m4.4xlarge",
            InstanceType::M4_10XLarge => "m4.10xlarge",
            InstanceType::C4_8XLarge => "c4.8xlarge",
        }
    }

    /// Full specification of the instance type.
    pub fn spec(self) -> InstanceSpec {
        match self {
            InstanceType::T2Nano => InstanceSpec {
                instance_type: self,
                vcpus: 1,
                memory_gib: 0.5,
                cost_per_hour: 0.0063,
                per_core_speed: 1.02,
                burstable: true,
                contention_factor: 1.0,
            },
            InstanceType::T2Micro => InstanceSpec {
                instance_type: self,
                vcpus: 1,
                memory_gib: 1.0,
                cost_per_hour: 0.0126,
                // Free-tier eligible and heavily multiplexed: despite larger
                // nominal resources it performs worse than t2.nano under load
                // (the Fig. 6 anomaly).
                per_core_speed: 0.78,
                burstable: true,
                contention_factor: 0.80,
            },
            InstanceType::T2Small => InstanceSpec {
                instance_type: self,
                vcpus: 1,
                memory_gib: 2.0,
                cost_per_hour: 0.025,
                per_core_speed: 1.0,
                burstable: true,
                contention_factor: 1.0,
            },
            InstanceType::T2Medium => InstanceSpec {
                instance_type: self,
                vcpus: 2,
                memory_gib: 4.0,
                cost_per_hour: 0.05,
                per_core_speed: 1.25,
                burstable: true,
                contention_factor: 1.0,
            },
            InstanceType::T2Large => InstanceSpec {
                instance_type: self,
                vcpus: 2,
                memory_gib: 8.0,
                cost_per_hour: 0.101,
                per_core_speed: 1.25,
                burstable: true,
                contention_factor: 1.0,
            },
            InstanceType::M4_4XLarge => InstanceSpec {
                instance_type: self,
                vcpus: 16,
                memory_gib: 64.0,
                cost_per_hour: 0.95,
                per_core_speed: 1.73,
                burstable: false,
                contention_factor: 1.0,
            },
            InstanceType::M4_10XLarge => InstanceSpec {
                instance_type: self,
                vcpus: 40,
                memory_gib: 160.0,
                cost_per_hour: 2.377,
                per_core_speed: 1.73,
                burstable: false,
                contention_factor: 1.0,
            },
            InstanceType::C4_8XLarge => InstanceSpec {
                instance_type: self,
                vcpus: 36,
                memory_gib: 60.0,
                cost_per_hour: 1.906,
                per_core_speed: 2.08,
                burstable: false,
                contention_factor: 1.0,
            },
        }
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.api_name())
    }
}

/// Static specification of an instance type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// The instance type this specification describes.
    pub instance_type: InstanceType,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Memory in GiB.
    pub memory_gib: f64,
    /// On-demand price per hour (EU Ireland, USD).
    pub cost_per_hour: f64,
    /// Single-core execution speed relative to the level-1 reference core.
    pub per_core_speed: f64,
    /// Whether the instance uses the t2 CPU-credit (burst) mechanism.
    pub burstable: bool,
    /// Multiplicative factor (< 1 for contended free-tier hardware) applied
    /// on top of the per-core speed under sustained load.
    pub contention_factor: f64,
}

impl InstanceSpec {
    /// Effective sustained per-core speed including the contention factor.
    pub fn sustained_core_speed(&self) -> f64 {
        self.per_core_speed * self.contention_factor
    }

    /// Aggregate sustained throughput of the instance in work units per
    /// millisecond (all cores).
    pub fn aggregate_throughput(&self) -> f64 {
        self.sustained_core_speed() * f64::from(self.vcpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_contains_all_paper_instances() {
        assert_eq!(InstanceType::ALL.len(), 8);
        assert_eq!(InstanceType::FIG4_SET.len(), 6);
        for t in InstanceType::ALL {
            let spec = t.spec();
            assert!(spec.vcpus >= 1);
            assert!(spec.cost_per_hour > 0.0);
            assert!(spec.per_core_speed > 0.0);
            assert_eq!(spec.instance_type, t);
        }
    }

    #[test]
    fn bigger_instances_cost_more() {
        let order = [
            InstanceType::T2Nano,
            InstanceType::T2Micro,
            InstanceType::T2Small,
            InstanceType::T2Medium,
            InstanceType::T2Large,
            InstanceType::M4_4XLarge,
            InstanceType::C4_8XLarge,
            InstanceType::M4_10XLarge,
        ];
        let costs: Vec<f64> = order.iter().map(|t| t.spec().cost_per_hour).collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
    }

    #[test]
    fn fig5_acceleration_ratios_hold() {
        // level 1 = t2.small (reference), level 2 = t2.large, level 3 = m4.*
        let l1 = InstanceType::T2Small.spec().per_core_speed;
        let l2 = InstanceType::T2Large.spec().per_core_speed;
        let l3 = InstanceType::M4_10XLarge.spec().per_core_speed;
        assert!((l2 / l1 - 1.25).abs() < 0.01, "level2/level1 = {}", l2 / l1);
        assert!((l3 / l1 - 1.73).abs() < 0.01, "level3/level1 = {}", l3 / l1);
        assert!((l3 / l2 - 1.36).abs() < 0.05, "level3/level2 = {}", l3 / l2);
    }

    #[test]
    fn nano_outperforms_micro_under_sustained_load() {
        // The Fig. 6 anomaly: nominal resources say micro >= nano, but the
        // sustained speed says otherwise.
        let nano = InstanceType::T2Nano.spec();
        let micro = InstanceType::T2Micro.spec();
        assert!(micro.memory_gib > nano.memory_gib);
        assert!(micro.cost_per_hour > nano.cost_per_hour);
        assert!(nano.sustained_core_speed() > micro.sustained_core_speed());
    }

    #[test]
    fn c4_is_fastest_per_core() {
        let c4 = InstanceType::C4_8XLarge.spec().per_core_speed;
        for t in InstanceType::ALL {
            if t != InstanceType::C4_8XLarge {
                assert!(c4 > t.spec().per_core_speed);
            }
        }
    }

    #[test]
    fn aggregate_throughput_reflects_core_count() {
        let m4 = InstanceType::M4_10XLarge.spec();
        assert!((m4.aggregate_throughput() - 40.0 * 1.73).abs() < 1e-9);
        let nano = InstanceType::T2Nano.spec();
        assert!(m4.aggregate_throughput() > 30.0 * nano.aggregate_throughput());
    }

    #[test]
    fn api_names_match_amazon_catalogue() {
        assert_eq!(InstanceType::T2Nano.to_string(), "t2.nano");
        assert_eq!(InstanceType::M4_10XLarge.to_string(), "m4.10xlarge");
        assert_eq!(InstanceType::C4_8XLarge.api_name(), "c4.8xlarge");
    }
}
