//! # mca-cloudsim — cloud substrate simulator
//!
//! The paper's evaluation runs on Amazon EC2 general-purpose instances
//! (t2.nano … t2.large, m4.4xlarge, m4.10xlarge, plus a c4.8xlarge added in
//! §VI-B) carrying a custom Dalvik-x86 surrogate. None of that infrastructure
//! is available to a reproduction, so this crate simulates it:
//!
//! * [`instance`] — the EC2-like instance catalogue: vCPUs, memory, hourly
//!   price and per-core execution speed for every instance type the paper
//!   uses. Per-core speed is expressed relative to the level-1 reference core
//!   of the task work model, which is how the Fig. 5 acceleration ratios
//!   (≈1.25×, ≈1.36×, ≈1.73×) are encoded.
//! * [`credits`] — the CPU-credit (burst) mechanism of t2 instances plus the
//!   free-tier contention factor that reproduces the t2.nano / t2.micro
//!   anomaly of Fig. 6.
//! * [`server`] — a processor-sharing server model: the execution time of a
//!   request grows with the number of concurrently served requests, flattening
//!   for larger instances (Fig. 4), and an event-driven open-loop simulation
//!   that reproduces the saturation knee and request drops of Fig. 8b/8c.
//! * [`surrogate`] — the Dalvik-x86 surrogate model (per-request `dalvikvm`
//!   process, APK registry, reduced storage footprint).
//! * [`billing`] and [`pool`] — per-hour billing and the instance pool with
//!   the 20-instances-per-account cap (`CC` in the allocation model).
//! * [`datacenter`] — the simulated substrate *under* the billing stage:
//!   finite-capacity hosts, deterministic placement policies (first/best/
//!   worst fit), an SLA model scoring actual arrivals against forecast
//!   capacity, and a linear-interpolation power model metered per host per
//!   slot.
//! * [`events`] — the discrete-event machinery shared by the simulations.
//! * [`benchmark`] — the concurrent-mode characterization harness of §VI-A
//!   that stresses each instance with 1–100 concurrent users and classifies
//!   instances into acceleration levels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod billing;
pub mod credits;
pub mod datacenter;
pub mod events;
pub mod instance;
pub mod pool;
pub mod server;
pub mod surrogate;

pub use benchmark::{
    AccelerationLevel, CharacterizationPoint, InstanceBenchmark, LevelClassification,
};
pub use billing::BillingMeter;
pub use credits::CpuCreditModel;
pub use datacenter::{
    BestFit, Datacenter, DatacenterConfig, FirstFit, GroupDemand, Host, PlacedInstance,
    PlacementError, PlacementKind, PlacementPolicy, PowerModel, SlaAssessment, SlaModel, WorstFit,
};
pub use events::{EventQueue, SimTime};
pub use instance::{InstanceSpec, InstanceType};
pub use pool::{InstancePool, PoolError, RunningInstance};
pub use server::{ClosedLoopResult, OpenLoopResult, Server, ServerConfig};
pub use surrogate::{ApkPackage, DalvikSurrogate};
